//! Durability properties of the persistent decomposition store:
//! encode/decode fuzz, torn-tail truncation recovery, bit-flip
//! corruption rejection, and compaction preserving live state — the
//! store side of the "a stale or corrupt store degrades to a cold
//! compute with identical answers" contract (the service side lives in
//! `softhw-service`'s integration tests).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softhw_core::shw;
use softhw_core::td::TreeDecomposition;
use softhw_hypergraph::{named, ArenaSnapshot, BagArena, Hypergraph};
use softhw_store::record::{scan_record, ScanOutcome};
use softhw_store::{
    schema_key, ClassKey, FrameRef, HitAnswer, PutAnswer, Store, StoreRecord, StoredAnswer,
    StoredTd,
};
use std::path::PathBuf;

/// A unique temp path per test; removed on drop.
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(name: &str) -> TempStore {
        let path = std::env::temp_dir().join(format!(
            "softhw-store-{}-{name}-{:?}.store",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        TempStore { path }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Frames a decomposition exactly like the wire's `TdFrame::from_td`:
/// preorder nodes, bags interned into a fresh arena in first-visit
/// order.
fn frame_of(td: &TreeDecomposition, universe: usize) -> (ArenaSnapshot, Vec<(Option<u32>, u32)>) {
    let order = td.preorder();
    let mut new_id = vec![u32::MAX; td.num_nodes()];
    for (i, &u) in order.iter().enumerate() {
        new_id[u] = i as u32;
    }
    let mut arena = BagArena::new(universe);
    let nodes = order
        .iter()
        .map(|&u| {
            let bag = arena.intern(td.bag(u));
            (td.parent(u).map(|p| new_id[p]), bag.0)
        })
        .collect();
    (arena.snapshot(), nodes)
}

/// Puts the exact-shw result of `h` and returns what was framed.
fn put_shw(store: &mut Store, h: &Hypergraph) -> (usize, ArenaSnapshot, Vec<(Option<u32>, u32)>) {
    let (w, td) = shw::shw(h);
    let (snapshot, nodes) = frame_of(&td, h.num_vertices());
    store
        .put(
            h,
            ClassKey::Shw,
            &[],
            PutAnswer::Width {
                width: w,
                frame: FrameRef {
                    universe: h.num_vertices(),
                    snapshot: &snapshot,
                    nodes: &nodes,
                },
            },
        )
        .expect("put");
    (w, snapshot, nodes)
}

fn expect_width(
    store: &mut Store,
    h: &Hypergraph,
) -> (usize, ArenaSnapshot, Vec<(Option<u32>, u32)>) {
    let (hash, digest) = schema_key(h);
    match store.get(hash, digest, &ClassKey::Shw).expect("hit").answer {
        HitAnswer::Width { width, frame } => (width, frame.snapshot, frame.nodes),
        other => panic!("unexpected answer {other:?}"),
    }
}

#[test]
fn puts_survive_reopen_byte_identical() {
    let tmp = TempStore::new("reopen");
    let graphs = [named::h2(), named::cycle(6), named::grid(3, 3)];
    let mut framed = Vec::new();
    {
        let mut store = Store::open(&tmp.path).expect("open fresh");
        for h in &graphs {
            framed.push(put_shw(&mut store, h));
            // A negative decision and a decision with echo fields ride
            // along, exercising all answer shapes.
            store
                .put(h, ClassKey::ShwLeq(0), &[], PutAnswer::No)
                .expect("put no");
        }
        store.sync().expect("sync");
    }
    let mut store = Store::open(&tmp.path).expect("reopen");
    assert_eq!(store.stats().recovered_bytes, 0);
    assert_eq!(store.stats().schemas, graphs.len());
    for (h, (w, snapshot, nodes)) in graphs.iter().zip(&framed) {
        let (rw, rsnap, rnodes) = expect_width(&mut store, h);
        // Byte-identical to what was framed before the restart.
        assert_eq!((&rw, &rsnap, &rnodes), (w, snapshot, nodes));
        let (hash, digest) = schema_key(h);
        match store.get(hash, digest, &ClassKey::ShwLeq(0)) {
            Some(hit) => assert!(matches!(hit.answer, HitAnswer::No)),
            None => panic!("negative decision lost"),
        }
        // The witness re-validates against the schema.
        let td = TreeDecomposition::from_bag_frame(h.num_vertices(), &rsnap, &rnodes).unwrap();
        assert_eq!(td.validate(h), Ok(()));
        // And against the *rebuilt* schema (what a warm start parses).
        let rebuilt = store.schema_hypergraph(hash, digest).expect("rebuild");
        assert_eq!(schema_key(&rebuilt), (hash, digest));
        assert_eq!(td.validate(&rebuilt), Ok(()));
    }
    assert!(store.verify().is_empty(), "{:?}", store.verify());
}

#[test]
fn shared_dictionary_dedups_across_records() {
    let tmp = TempStore::new("dedup");
    let h = named::h2();
    let mut store = Store::open(&tmp.path).expect("open");
    let (_, snapshot, _) = put_shw(&mut store, &h);
    let bags_after_first = store.stats().dict_bags;
    assert_eq!(bags_after_first, snapshot.len());
    let before_bytes = store.stats().bytes;
    // Re-putting the same witness under another key adds a Result
    // record but not a single dictionary bag.
    let (w, td) = shw::shw(&h);
    let (snap2, nodes2) = frame_of(&td, h.num_vertices());
    store
        .put(
            &h,
            ClassKey::ShwLeq(w as u64),
            &[],
            PutAnswer::Yes(FrameRef {
                universe: h.num_vertices(),
                snapshot: &snap2,
                nodes: &nodes2,
            }),
        )
        .expect("put");
    assert_eq!(store.stats().dict_bags, bags_after_first);
    // The second record is cheap: no schema, no bags, just the node
    // table and framing.
    assert!(store.stats().bytes - before_bytes < before_bytes);
}

#[test]
fn record_roundtrip_fuzz() {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    for case in 0..500 {
        let hash = rng.next_u64();
        let digest = rng.next_u64();
        let record = match rng.gen_range(0..3u32) {
            0 => {
                let nv = rng.gen_range(1..200usize);
                let wpb = nv.div_ceil(64).max(1);
                let ne = rng.gen_range(0..20usize);
                StoreRecord::Schema {
                    hash,
                    digest,
                    num_vertices: nv as u64,
                    edges: (0..ne)
                        .map(|_| (0..wpb).map(|_| rng.next_u64()).collect())
                        .collect(),
                }
            }
            1 => {
                let nv = rng.gen_range(1..200usize);
                let wpb = nv.div_ceil(64).max(1);
                let nb = rng.gen_range(0..20usize);
                StoreRecord::Bags {
                    hash,
                    digest,
                    universe: nv as u64,
                    bags: (0..nb)
                        .map(|_| (0..wpb).map(|_| rng.next_u64()).collect())
                        .collect(),
                }
            }
            _ => {
                let key = match rng.gen_range(0..7u32) {
                    0 => ClassKey::Shw,
                    1 => ClassKey::ShwLeq(rng.gen_range(0..100u64)),
                    2 => ClassKey::Hw,
                    3 => ClassKey::HwLeq(rng.gen_range(0..100u64)),
                    4 => ClassKey::BestTrivial(rng.gen_range(0..100u64)),
                    5 => ClassKey::BestConCov(rng.gen_range(0..100u64)),
                    _ => ClassKey::BestShallow {
                        d: rng.gen_range(-50..50i64),
                        k: rng.gen_range(0..100u64),
                    },
                };
                fn random_td(rng: &mut SmallRng) -> StoredTd {
                    StoredTd {
                        nodes: (0..rng.gen_range(1..30usize))
                            .map(|i| {
                                let parent = if i == 0 {
                                    None
                                } else {
                                    Some(rng.gen_range(0..i as u32))
                                };
                                (parent, rng.gen_range(0..1000u32))
                            })
                            .collect(),
                    }
                }
                let answer = match rng.gen_range(0..3u32) {
                    0 => StoredAnswer::No,
                    1 => StoredAnswer::Yes(random_td(&mut rng)),
                    _ => StoredAnswer::Width {
                        width: rng.gen_range(1..50u64),
                        td: random_td(&mut rng),
                    },
                };
                let nfields = rng.gen_range(0..4usize);
                let fields = (0..nfields)
                    .map(|i| (format!("k{i}"), format!("value-{}", rng.next_u64())))
                    .collect();
                StoreRecord::Result {
                    hash,
                    digest,
                    result: softhw_store::ResultRecord {
                        key,
                        fields,
                        answer,
                    },
                }
            }
        };
        let body = record.encode_body();
        assert_eq!(
            StoreRecord::decode_body(&body).as_ref(),
            Some(&record),
            "case {case}"
        );
        let framed = record.frame();
        match scan_record(&framed, 0) {
            ScanOutcome::Record(back, next) => {
                assert_eq!(back, record, "case {case}");
                assert_eq!(next, framed.len());
            }
            other => panic!("case {case}: {other:?}"),
        }
    }
}

#[test]
fn torn_tail_truncates_to_last_valid_record() {
    let tmp = TempStore::new("torn");
    let graphs = [named::h2(), named::cycle(5)];
    {
        let mut store = Store::open(&tmp.path).expect("open");
        for h in &graphs {
            put_shw(&mut store, h);
        }
        store.sync().expect("sync");
    }
    let full = std::fs::read(&tmp.path).expect("read back");
    // Cut the file mid-record at several depths: reopen must never
    // panic, must drop only the torn suffix, and must stay usable.
    for cut in [full.len() - 1, full.len() - 9, full.len() / 2, 9] {
        std::fs::write(&tmp.path, &full[..cut]).expect("truncate");
        let mut store = Store::open(&tmp.path).expect("recovering open");
        assert!(store.stats().recovered_bytes > 0, "cut {cut}");
        assert!(store.verify().is_empty(), "cut {cut}: {:?}", store.verify());
        // The file was physically truncated to the valid prefix, and a
        // fresh put + reopen works on top of it.
        let disk = std::fs::read(&tmp.path).unwrap();
        assert!(disk.len() <= cut);
        put_shw(&mut store, &named::cycle(6));
        store.sync().expect("sync");
        drop(store);
        let mut store = Store::open(&tmp.path).expect("reopen after repair");
        assert_eq!(store.stats().recovered_bytes, 0, "cut {cut}");
        let (w, _, _) = expect_width(&mut store, &named::cycle(6));
        assert_eq!(w, shw::shw(&named::cycle(6)).0);
    }
    // A file with garbage where the magic should be resets to empty.
    std::fs::write(&tmp.path, b"not a store at all").unwrap();
    let store = Store::open(&tmp.path).expect("open over garbage");
    assert_eq!(store.stats().schemas, 0);
    assert!(store.stats().recovered_bytes > 0);
}

#[test]
fn bit_flips_are_rejected_never_trusted() {
    let tmp = TempStore::new("flip");
    let graphs = [named::h2(), named::cycle(6), named::grid(3, 3)];
    {
        let mut store = Store::open(&tmp.path).expect("open");
        for h in &graphs {
            put_shw(&mut store, h);
        }
        store.sync().expect("sync");
    }
    let full = std::fs::read(&tmp.path).expect("read back");
    let mut rng = SmallRng::seed_from_u64(42);
    for trial in 0..60 {
        let byte = rng.gen_range(8..full.len()); // past the magic
        let bit = rng.gen_range(0..8u32);
        let mut corrupt = full.clone();
        corrupt[byte] ^= 1 << bit;
        std::fs::write(&tmp.path, &corrupt).expect("write corrupt");
        // Open must not panic; every record it keeps must verify; and
        // any result it still serves must carry a witness that
        // validates against its schema — corruption is *rejected*, the
        // service recomputes, answers stay identical.
        let mut store = Store::open(&tmp.path).expect("open corrupt");
        assert!(
            store.stats().recovered_bytes > 0,
            "trial {trial}: flip at byte {byte} went undetected"
        );
        assert!(store.verify().is_empty(), "trial {trial}");
        for h in &graphs {
            let (hash, digest) = schema_key(h);
            if let Some(hit) = store.get(hash, digest, &ClassKey::Shw) {
                let HitAnswer::Width { width, frame } = hit.answer else {
                    panic!("trial {trial}: wrong answer shape")
                };
                let td = frame.to_td().expect("kept witness decodes");
                assert_eq!(td.validate(h), Ok(()), "trial {trial}");
                assert_eq!(width, shw::shw(h).0, "trial {trial}");
            }
        }
    }
}

#[test]
fn compaction_drops_superseded_results_and_preserves_live_state() {
    let tmp = TempStore::new("compact");
    let h = named::h2();
    let mut store = Store::open(&tmp.path).expect("open");
    // Many supersessions of the same key bloat the log.
    for _ in 0..20 {
        put_shw(&mut store, &h);
    }
    put_shw(&mut store, &named::cycle(6));
    store
        .put(&h, ClassKey::HwLeq(1), &[], PutAnswer::No)
        .expect("put");
    store.sync().expect("sync");
    let live_before: Vec<_> = {
        let (hash, digest) = schema_key(&h);
        store.results_for(hash, digest)
    };
    let (before, after) = store.compact().expect("compact");
    assert!(
        after < before,
        "compaction must shrink: {before} -> {after}"
    );
    assert!(store.verify().is_empty(), "{:?}", store.verify());
    // Live results survive with identical materialised frames (ids are
    // remapped on disk, but the dense first-occurrence framing is
    // canonical, so the frames compare equal).
    let (hash, digest) = schema_key(&h);
    let live_after = store.results_for(hash, digest);
    assert_eq!(live_before.len(), live_after.len());
    for ((k1, hit1), (k2, hit2)) in live_before.iter().zip(&live_after) {
        assert_eq!(k1, k2);
        match (&hit1.answer, &hit2.answer) {
            (HitAnswer::No, HitAnswer::No) => {}
            (HitAnswer::Yes(f1), HitAnswer::Yes(f2)) => assert_eq!(f1, f2),
            (
                HitAnswer::Width {
                    width: w1,
                    frame: f1,
                },
                HitAnswer::Width {
                    width: w2,
                    frame: f2,
                },
            ) => {
                assert_eq!(w1, w2);
                assert_eq!(f1, f2);
            }
            other => panic!("answer shape changed: {other:?}"),
        }
    }
    // And the compacted file reopens clean.
    drop(store);
    let mut store = Store::open(&tmp.path).expect("reopen");
    assert_eq!(store.stats().recovered_bytes, 0);
    assert_eq!(store.stats().schemas, 2);
    let (w, _, _) = expect_width(&mut store, &h);
    assert_eq!(w, shw::shw(&h).0);
}

#[test]
fn digest_guards_against_hash_collisions() {
    let tmp = TempStore::new("digest");
    let h = named::h2();
    let mut store = Store::open(&tmp.path).expect("open");
    put_shw(&mut store, &h);
    let (hash, digest) = schema_key(&h);
    // A colliding hash with a different digest must miss, not serve the
    // wrong schema's witness.
    assert!(store.get(hash, digest ^ 1, &ClassKey::Shw).is_none());
    assert!(store.get(hash, digest, &ClassKey::Shw).is_some());
    let s = store.stats();
    assert_eq!((s.hits, s.misses), (1, 1));
}
