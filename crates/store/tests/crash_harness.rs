//! Crash/fault-injection harness for the write-behind persistence
//! pipeline: drive a randomized put/sync workload into the store, kill
//! it at a randomized point — an injected storage fault (short write,
//! EIO, disk-full, failed fsync) or a simulated process kill, plus
//! random loss of the never-synced tail (what a machine crash does to
//! the page cache) — then restart and assert that recovery is clean:
//!
//! - `verify()` reports no problems;
//! - every **acknowledged** write (a `put` that succeeded and was
//!   covered by a successful `sync`) is present and materialises
//!   byte-identically to what was framed before the crash;
//! - recovery is idempotent: a second open recovers zero bytes and
//!   leaves the file byte-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softhw_core::shw;
use softhw_hypergraph::{named, ArenaSnapshot, BagArena, Hypergraph};
use softhw_store::{
    schema_key, ClassKey, FaultInjector, FaultKind, FaultPlan, FrameRef, HitAnswer, PutAnswer,
    Store,
};
use std::path::PathBuf;

/// A unique temp path per test; removed on drop.
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(name: &str) -> TempStore {
        let path = std::env::temp_dir().join(format!(
            "softhw-crash-{}-{name}-{:?}.store",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        TempStore { path }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Frames a decomposition exactly like the wire's `TdFrame::from_td`.
fn frame_of(
    td: &softhw_core::td::TreeDecomposition,
    universe: usize,
) -> (ArenaSnapshot, Vec<(Option<u32>, u32)>) {
    let order = td.preorder();
    let mut new_id = vec![u32::MAX; td.num_nodes()];
    for (i, &u) in order.iter().enumerate() {
        new_id[u] = i as u32;
    }
    let mut arena = BagArena::new(universe);
    let nodes = order
        .iter()
        .map(|&u| {
            let bag = arena.intern(td.bag(u));
            (td.parent(u).map(|p| new_id[p]), bag.0)
        })
        .collect();
    (arena.snapshot(), nodes)
}

/// One schema with its solved witness, framed once up front so every
/// trial puts (and later expects) the exact same bytes.
struct PoolEntry {
    h: Hypergraph,
    width: usize,
    snapshot: ArenaSnapshot,
    nodes: Vec<(Option<u32>, u32)>,
}

fn build_pool() -> Vec<PoolEntry> {
    let mut graphs = vec![named::h2(), named::grid(2, 2), named::grid(2, 3)];
    graphs.push(named::grid(2, 4));
    graphs.push(named::grid(3, 3));
    for n in 3..=8 {
        graphs.push(named::cycle(n));
    }
    graphs
        .into_iter()
        .map(|h| {
            let (width, td) = shw::shw(&h);
            let (snapshot, nodes) = frame_of(&td, h.num_vertices());
            PoolEntry {
                h,
                width,
                snapshot,
                nodes,
            }
        })
        .collect()
}

/// The workload: three puts per schema — the exact width, a positive
/// decision, a negative decision — covering every answer shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepKind {
    Width,
    Yes,
    No,
}

#[derive(Clone, Copy, Debug)]
struct Step {
    pool: usize,
    kind: StepKind,
}

fn build_steps(pool_len: usize) -> Vec<Step> {
    let mut steps = Vec::with_capacity(pool_len * 3);
    for pool in 0..pool_len {
        for kind in [StepKind::Width, StepKind::Yes, StepKind::No] {
            steps.push(Step { pool, kind });
        }
    }
    steps
}

fn do_put(store: &mut Store, pool: &[PoolEntry], step: Step) -> std::io::Result<()> {
    let e = &pool[step.pool];
    let frame = FrameRef {
        universe: e.h.num_vertices(),
        snapshot: &e.snapshot,
        nodes: &e.nodes,
    };
    let (key, answer) = match step.kind {
        StepKind::Width => (
            ClassKey::Shw,
            PutAnswer::Width {
                width: e.width,
                frame,
            },
        ),
        StepKind::Yes => (ClassKey::ShwLeq(e.width as u64), PutAnswer::Yes(frame)),
        StepKind::No => (ClassKey::ShwLeq(0), PutAnswer::No),
    };
    store.put(&e.h, key, &[], answer)
}

/// Asserts the acked step is present and byte-identical to what was
/// framed before the crash.
fn check_step(store: &mut Store, pool: &[PoolEntry], step: Step, trial: usize) {
    let e = &pool[step.pool];
    let (hash, digest) = schema_key(&e.h);
    let key = match step.kind {
        StepKind::Width => ClassKey::Shw,
        StepKind::Yes => ClassKey::ShwLeq(e.width as u64),
        StepKind::No => ClassKey::ShwLeq(0),
    };
    let hit = store
        .get(hash, digest, &key)
        .unwrap_or_else(|| panic!("trial {trial}: acked write {step:?} lost"));
    match (step.kind, hit.answer) {
        (StepKind::No, HitAnswer::No) => {}
        (StepKind::Yes, HitAnswer::Yes(frame)) => {
            assert_eq!(frame.snapshot, e.snapshot, "trial {trial} {step:?}");
            assert_eq!(frame.nodes, e.nodes, "trial {trial} {step:?}");
        }
        (StepKind::Width, HitAnswer::Width { width, frame }) => {
            assert_eq!(width, e.width, "trial {trial} {step:?}");
            assert_eq!(frame.snapshot, e.snapshot, "trial {trial} {step:?}");
            assert_eq!(frame.nodes, e.nodes, "trial {trial} {step:?}");
        }
        (_, other) => panic!("trial {trial} {step:?}: answer shape changed: {other:?}"),
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

#[test]
fn randomized_kill_points_recover_clean_with_every_acked_write() {
    let pool = build_pool();
    let base_steps = build_steps(pool.len());
    let tmp = TempStore::new("killpoints");

    // Dry run: learn how large a full clean run gets, so fault offsets
    // can be drawn across the whole file.
    let total_bytes = {
        let mut store = Store::open(&tmp.path).expect("dry open");
        for &step in &base_steps {
            do_put(&mut store, &pool, step).expect("dry put");
        }
        store.sync().expect("dry sync");
        store.stats().bytes
    };
    assert!(total_bytes > 64);

    let mut rng = SmallRng::seed_from_u64(0xC4A5_11ED);
    const TRIALS: usize = 220;
    let mut faults_fired = 0u64;
    for trial in 0..TRIALS {
        let _ = std::fs::remove_file(&tmp.path);
        let mut steps = base_steps.clone();
        shuffle(&mut steps, &mut rng);

        // The randomized kill point: an armed storage fault at a random
        // byte offset, and/or a hard process kill after a random number
        // of steps (sometimes past the end: the run completes and only
        // the fault, if any, interrupts it).
        let injector = FaultInjector::new();
        let kind = match rng.gen_range(0..5u32) {
            0 => Some(FaultKind::ShortWrite),
            1 => Some(FaultKind::Eio),
            2 => Some(FaultKind::DiskFull),
            3 => Some(FaultKind::FsyncFail),
            _ => None, // pure process-kill trial
        };
        if let Some(kind) = kind {
            injector.arm(FaultPlan {
                at_byte: rng.gen_range(8..total_bytes),
                kind,
            });
        }
        let kill_after = rng.gen_range(1..steps.len() + 8);
        let sync_every = rng.gen_range(1..6usize);

        let mut store = Store::open_with_faults(&tmp.path, injector.clone()).expect("faulted open");
        let mut acked: Vec<Step> = Vec::new();
        let mut pending: Vec<Step> = Vec::new();
        let mut synced_bytes = store.stats().bytes;
        let mut crashed = false;
        for (si, &step) in steps.iter().enumerate() {
            if si >= kill_after {
                crashed = true;
                break;
            }
            match do_put(&mut store, &pool, step) {
                Ok(()) => pending.push(step),
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
            if (si + 1) % sync_every == 0 {
                match store.sync() {
                    Ok(()) => {
                        acked.append(&mut pending);
                        synced_bytes = store.stats().bytes;
                    }
                    Err(_) => {
                        crashed = true;
                        break;
                    }
                }
            }
        }
        if !crashed && store.sync().is_ok() {
            acked.append(&mut pending);
            synced_bytes = store.stats().bytes;
        }
        faults_fired += injector.triggered();
        drop(store);

        // Machine-crash model: anything past the last successful sync
        // may vanish — cut the file at a random point in that window.
        let disk = std::fs::read(&tmp.path).expect("read after crash");
        if (disk.len() as u64) > synced_bytes {
            let cut = rng.gen_range(synced_bytes..=disk.len() as u64) as usize;
            std::fs::write(&tmp.path, &disk[..cut]).expect("drop unsynced tail");
        }

        // Restart: recovery must be clean and keep every acked write.
        let mut store = Store::open(&tmp.path).expect("recovering open");
        let problems = store.verify();
        assert!(problems.is_empty(), "trial {trial}: {problems:?}");
        for &step in &acked {
            check_step(&mut store, &pool, step, trial);
        }
        drop(store);

        // Recovery already truncated the damage: a second open finds a
        // fully valid log and changes nothing — replay is idempotent
        // and the file byte-identical.
        let after_recovery = std::fs::read(&tmp.path).expect("read recovered");
        let store = Store::open(&tmp.path).expect("idempotent reopen");
        assert_eq!(
            store.stats().recovered_bytes,
            0,
            "trial {trial}: recovery left damage behind"
        );
        drop(store);
        let after_second = std::fs::read(&tmp.path).expect("read after reopen");
        assert_eq!(
            after_recovery, after_second,
            "trial {trial}: reopen changed the file"
        );
    }
    // The harness is only meaningful if the faults actually fire.
    assert!(
        faults_fired >= TRIALS as u64 / 4,
        "only {faults_fired} injected faults fired across {TRIALS} trials"
    );
}

/// Each fault kind, aimed at a precise offset, produces exactly the
/// damage it advertises — and recovery handles each.
#[test]
fn each_fault_kind_fires_and_recovers() {
    let pool = build_pool();
    for kind in [
        FaultKind::ShortWrite,
        FaultKind::Eio,
        FaultKind::DiskFull,
        FaultKind::FsyncFail,
    ] {
        let tmp = TempStore::new(&format!("{kind:?}"));
        let injector = FaultInjector::new();
        let mut store = Store::open_with_faults(&tmp.path, injector.clone()).expect("faulted open");
        do_put(
            &mut store,
            &pool,
            Step {
                pool: 0,
                kind: StepKind::Width,
            },
        )
        .expect("clean put");
        store.sync().expect("clean sync");
        let synced = store.stats().bytes;
        // Arm mid-way through the *next* record.
        injector.arm(FaultPlan {
            at_byte: synced + 10,
            kind,
        });
        let second = Step {
            pool: 1,
            kind: StepKind::Width,
        };
        let put = do_put(&mut store, &pool, second);
        let sync = store.sync();
        match kind {
            FaultKind::ShortWrite | FaultKind::Eio | FaultKind::DiskFull => {
                assert!(put.is_err(), "{kind:?}: put must fail");
            }
            FaultKind::FsyncFail => {
                assert!(put.is_ok(), "{kind:?}: writes pass, the fsync fails");
                assert!(sync.is_err(), "{kind:?}: sync must fail");
            }
        }
        assert_eq!(injector.triggered(), 1, "{kind:?}");
        drop(store);
        let disk_len = std::fs::read(&tmp.path).expect("read").len() as u64;
        match kind {
            // Exactly the armed prefix of the failed record persisted.
            FaultKind::ShortWrite | FaultKind::DiskFull => assert_eq!(disk_len, synced + 10),
            // Nothing of the failed record persisted.
            FaultKind::Eio => assert_eq!(disk_len, synced),
            // The record persisted; only durability was refused.
            FaultKind::FsyncFail => assert!(disk_len > synced),
        }
        let mut store = Store::open(&tmp.path).expect("recovering open");
        assert!(store.verify().is_empty(), "{kind:?}");
        check_step(
            &mut store,
            &pool,
            Step {
                pool: 0,
                kind: StepKind::Width,
            },
            0,
        );
        // The torn kinds dropped the partial record on reopen.
        if matches!(kind, FaultKind::ShortWrite | FaultKind::DiskFull) {
            assert_eq!(store.stats().recovered_bytes, 10, "{kind:?}");
        }
    }
}
