//! Fault injection for the store's append/sync path.
//!
//! The log is an append-only file, so every interesting storage failure
//! is expressible as "something went wrong at byte offset N": a write
//! that persisted only a prefix (torn tail), a write the kernel
//! rejected outright, a disk that filled mid-record, or an fsync that
//! failed after the write "succeeded". A [`FaultInjector`] is armed
//! with one such [`FaultPlan`] and handed to
//! [`Store::open_with_faults`](crate::Store::open_with_faults); the
//! store consults it on every log append and every
//! [`sync`](crate::Store::sync).
//!
//! Faults are **one-shot**: a plan triggers once, then disarms, so a
//! test can arm a fault, drive the workload into it, and then reopen a
//! clean handle to check what recovery does with the damage. Injection
//! is deliberately scoped to appends and syncs — open-time replay runs
//! un-faulted, because recovery is exactly the code under test.

use std::io;
use std::sync::{Arc, Mutex, PoisonError};

/// What goes wrong when the armed offset is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The write persists only the bytes *before* the armed offset,
    /// then fails — the classic torn tail a crash mid-append leaves.
    ShortWrite,
    /// The write fails wholesale; nothing of it reaches the file.
    Eio,
    /// Writes succeed, but the next [`Store::sync`](crate::Store::sync)
    /// fails — the data may or may not survive a crash, and the caller
    /// must not acknowledge it.
    FsyncFail,
    /// Like [`FaultKind::ShortWrite`] but reported as `ENOSPC`: the
    /// disk filled mid-record.
    DiskFull,
}

/// A one-shot fault armed at an absolute log byte offset.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Absolute log offset (bytes from the start of the file, magic
    /// included) at which the fault fires. A write fully below the
    /// offset passes; the write that would cross or reach it triggers.
    /// Ignored by [`FaultKind::FsyncFail`], which fires on the next
    /// sync regardless.
    pub at_byte: u64,
    /// The failure mode.
    pub kind: FaultKind,
}

#[derive(Default)]
struct FaultState {
    armed: Option<FaultPlan>,
    triggered: u64,
}

/// A cheaply clonable handle that injects storage faults into every
/// [`Store`](crate::Store) opened with it. See the module docs.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Mutex<FaultState>>,
}

/// The store's side of the protocol: what to do with one append.
pub(crate) enum WriteDecision {
    /// No fault: perform the full write.
    Full,
    /// Persist exactly this prefix of the buffer, then report the
    /// error.
    Partial(usize, io::Error),
    /// Persist nothing; report the error.
    Fail(io::Error),
}

impl FaultInjector {
    /// A fresh injector with nothing armed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arms `plan`, replacing any previously armed fault.
    pub fn arm(&self, plan: FaultPlan) {
        self.lock().armed = Some(plan);
    }

    /// Clears the armed fault, if any.
    pub fn disarm(&self) {
        self.lock().armed = None;
    }

    /// How many faults have fired over the injector's lifetime.
    pub fn triggered(&self) -> u64 {
        self.lock().triggered
    }

    /// Consulted before a log append of `len` bytes at absolute file
    /// offset `offset`.
    pub(crate) fn on_write(&self, offset: u64, len: usize) -> WriteDecision {
        let mut st = self.lock();
        let Some(plan) = st.armed else {
            return WriteDecision::Full;
        };
        let end = offset + len as u64;
        let crosses = plan.at_byte < end;
        match plan.kind {
            FaultKind::ShortWrite if crosses => {
                st.armed = None;
                st.triggered += 1;
                let keep = plan.at_byte.saturating_sub(offset) as usize;
                WriteDecision::Partial(keep.min(len), io::Error::other("injected short write"))
            }
            FaultKind::Eio if crosses => {
                st.armed = None;
                st.triggered += 1;
                WriteDecision::Fail(io::Error::other("injected EIO"))
            }
            FaultKind::DiskFull if crosses => {
                st.armed = None;
                st.triggered += 1;
                let keep = plan.at_byte.saturating_sub(offset) as usize;
                WriteDecision::Partial(
                    keep.min(len),
                    io::Error::new(io::ErrorKind::StorageFull, "injected disk full"),
                )
            }
            _ => WriteDecision::Full,
        }
    }

    /// Consulted by [`Store::sync`](crate::Store::sync) before the real
    /// fsync.
    pub(crate) fn on_sync(&self) -> io::Result<()> {
        let mut st = self.lock();
        if let Some(plan) = st.armed {
            if plan.kind == FaultKind::FsyncFail {
                st.armed = None;
                st.triggered += 1;
                return Err(io::Error::other("injected fsync failure"));
            }
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
