//! # softhw-store
//!
//! The persistent decomposition store: a disk-backed, compact binary
//! result cache that survives service restarts.
//!
//! The paper's premise is that a decomposition is computed once and
//! reused across many query evaluations; exact width computation is
//! expensive enough that the witness is the most valuable artefact the
//! service produces. Before this crate, every `softhw-serve` restart
//! threw that state away. The store keeps, per structurally distinct
//! schema, the canonical hypergraph (for rebuilds and collision
//! rejection), a **shared bag dictionary** (every distinct witness bag
//! stored once per schema), and the set of `(request class → answer)`
//! results with witnesses framed exactly like the wire's `TdFrame` —
//! so a restart can answer a repeated request byte-identically without
//! touching a solver.
//!
//! - [`record`]: the versioned, crc64-checksummed, varint-packed record
//!   format (`Schema` / `Bags` / `Result`).
//! - [`store`]: the append-only log + in-memory index
//!   ([`Store::open`]/[`Store::get`]/[`Store::put`]/[`Store::compact`]),
//!   with torn-tail recovery that truncates to the last valid record.
//!
//! Trust model: records are integrity-checked (framing, crc64, semantic
//! validation at replay), and every witness served out of the store is
//! **re-validated against its schema by the consumer** before anything
//! reaches a client — a corrupt or stale store degrades to a cold
//! recompute with byte-identical answers, never to a wrong answer or a
//! panic.

#![warn(missing_docs)]

pub mod fault;
pub mod record;
pub mod store;

pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use record::{crc64, ClassKey, ResultRecord, StoreRecord, StoredAnswer, StoredTd};
pub use store::{
    schema_digest, schema_key, FrameOwned, FrameRef, HitAnswer, PutAnswer, SchemaSummary, Store,
    StoreHit, StoreStats,
};
