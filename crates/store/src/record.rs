//! The store's record format: versioned, checksummed, varint-packed.
//!
//! A store file is a magic header followed by framed records:
//!
//! ```text
//! file   := magic(8 = "SHWSTOR1") record*
//! record := len:u32le body crc:u64le          crc64-ECMA over body
//! body   := type:u8 payload
//! ```
//!
//! Three record types build up one schema's state:
//!
//! - **Schema** (`0x01`): structural hash, canonical digest, vertex
//!   count, and the canonical (sorted) edge bitsets — enough to rebuild
//!   a structurally identical hypergraph for warm starts and witness
//!   re-validation, and to reject hash collisions.
//! - **Bags** (`0x02`): a delta of bag words appended to the schema's
//!   shared **bag dictionary**. Every record of one schema references
//!   bags by dictionary id, so a bag shared by many witnesses is stored
//!   once per schema, not once per record.
//! - **Result** (`0x03`): a `(request class, answer)` pair — the width
//!   or yes/no decision, echo fields, and the witness as a dense
//!   `(parent, bag-id)` node table over dictionary ids.
//!
//! All integers are LEB128 varints (via [`softhw_hypergraph::pack`]);
//! bag and edge words are varint-packed too, so sparse high words cost
//! one byte. Decoders are total: corrupt bytes yield `None`, never a
//! panic and never unbounded allocation — length fields are checked
//! against the bytes actually present before anything is reserved.

use softhw_hypergraph::pack::{get_varint, get_zigzag, put_varint, put_zigzag};
use std::sync::OnceLock;

/// The store file's magic header (8 bytes, includes the format version).
pub const MAGIC: &[u8; 8] = b"SHWSTOR1";

/// Hard ceiling on one record's body length: a corrupt length field
/// must not trigger a giant read or allocation.
pub const MAX_RECORD_BYTES: usize = 1 << 28;

const MAX_VERTICES: u64 = 1 << 24;
const MAX_EDGES: u64 = 1 << 24;
const MAX_FIELDS: u64 = 1 << 10;
const MAX_STRING: u64 = 1 << 20;

/// CRC-64/ECMA (reflected, poly 0xC96C5795D7870F42) over `bytes`.
/// Strong enough that any localised corruption — the bit flips and torn
/// writes the recovery tests inject — is detected with near certainty.
pub fn crc64(bytes: &[u8]) -> u64 {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xC96C_5795_D787_0F42
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ b as u64) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The request-class component of a result key: which question the
/// stored answer responds to. Together with the schema's structural
/// hash and digest this keys the exact result cache.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ClassKey {
    /// Exact `shw` with witness.
    Shw,
    /// `shw ≤ k` decision.
    ShwLeq(u64),
    /// Exact `hw` with witness.
    Hw,
    /// `hw ≤ k` decision.
    HwLeq(u64),
    /// `BEST trivial k`.
    BestTrivial(u64),
    /// `BEST concov k`.
    BestConCov(u64),
    /// `BEST shallow:<d> k`.
    BestShallow {
        /// The shallowness depth.
        d: i64,
        /// The width bound.
        k: u64,
    },
}

impl ClassKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            ClassKey::Shw => out.push(1),
            ClassKey::ShwLeq(k) => {
                out.push(2);
                put_varint(out, k);
            }
            ClassKey::Hw => out.push(3),
            ClassKey::HwLeq(k) => {
                out.push(4);
                put_varint(out, k);
            }
            ClassKey::BestTrivial(k) => {
                out.push(5);
                put_varint(out, k);
            }
            ClassKey::BestConCov(k) => {
                out.push(6);
                put_varint(out, k);
            }
            ClassKey::BestShallow { d, k } => {
                out.push(7);
                put_zigzag(out, d);
                put_varint(out, k);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<ClassKey> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            1 => ClassKey::Shw,
            2 => ClassKey::ShwLeq(get_varint(buf, pos)?),
            3 => ClassKey::Hw,
            4 => ClassKey::HwLeq(get_varint(buf, pos)?),
            5 => ClassKey::BestTrivial(get_varint(buf, pos)?),
            6 => ClassKey::BestConCov(get_varint(buf, pos)?),
            7 => {
                let d = get_zigzag(buf, pos)?;
                let k = get_varint(buf, pos)?;
                ClassKey::BestShallow { d, k }
            }
            _ => return None,
        })
    }
}

/// A stored witness tree: `(parent, bag)` per node in preorder, bags
/// referencing the schema's shared dictionary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredTd {
    /// `(parent index, dictionary bag id)` per node; node 0 is the root
    /// with no parent.
    pub nodes: Vec<(Option<u32>, u32)>,
}

/// A stored answer: what the service would respond, minus the framing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoredAnswer {
    /// Decision answered "no" (no witness).
    No,
    /// Decision answered "yes" with a witness.
    Yes(StoredTd),
    /// Exact width with its witness.
    Width {
        /// The computed width.
        width: u64,
        /// The witness decomposition.
        td: StoredTd,
    },
}

/// One stored result: the class asked about, echo fields (e.g. `eval`,
/// `cost` of a `BEST` response), and the answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultRecord {
    /// Which question this answers.
    pub key: ClassKey,
    /// Extra response fields, in emission order.
    pub fields: Vec<(String, String)>,
    /// The stored answer.
    pub answer: StoredAnswer,
}

/// One log record (see the module docs for the framing and the roles).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreRecord {
    /// Registers a schema: canonical structure for rebuild + collision
    /// rejection.
    Schema {
        /// Structural hash (the index key).
        hash: u64,
        /// Second, independently mixed digest of the canonical form.
        digest: u64,
        /// `|V(H)|`.
        num_vertices: u64,
        /// Canonical (sorted) edge bitsets, `words_per_set` words each.
        edges: Vec<Vec<u64>>,
    },
    /// Appends bags to a schema's shared dictionary.
    Bags {
        /// Structural hash of the owning schema.
        hash: u64,
        /// Digest of the owning schema.
        digest: u64,
        /// The vertex universe (must match the schema's).
        universe: u64,
        /// The appended bag words, `words_per_set` words each.
        bags: Vec<Vec<u64>>,
    },
    /// Stores (or supersedes) one result of a schema.
    Result {
        /// Structural hash of the owning schema.
        hash: u64,
        /// Digest of the owning schema.
        digest: u64,
        /// The result payload.
        result: ResultRecord,
    },
}

/// Words per packed set over a `universe`-element domain (the
/// [`softhw_hypergraph::BagArena`] convention).
pub fn words_per_set(universe: usize) -> usize {
    universe.div_ceil(64).max(1)
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = get_varint(buf, pos)?;
    if len > MAX_STRING {
        return None;
    }
    let len = len as usize;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Unpacks `count` sets of `wpb` varint words each, bounding allocation
/// by the bytes actually present.
fn get_word_sets(buf: &[u8], pos: &mut usize, count: u64, wpb: usize) -> Option<Vec<Vec<u64>>> {
    let total = (count as usize).checked_mul(wpb)?;
    // Every packed word is at least one byte.
    if total > buf.len().saturating_sub(*pos) {
        return None;
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let mut words = Vec::with_capacity(wpb);
        for _ in 0..wpb {
            words.push(get_varint(buf, pos)?);
        }
        out.push(words);
    }
    Some(out)
}

fn put_td(out: &mut Vec<u8>, td: &StoredTd) {
    put_varint(out, td.nodes.len() as u64);
    for &(parent, bag) in &td.nodes {
        put_varint(out, parent.map_or(0, |p| p as u64 + 1));
        put_varint(out, bag as u64);
    }
}

fn get_td(buf: &[u8], pos: &mut usize) -> Option<StoredTd> {
    let n = get_varint(buf, pos)?;
    // Two varints of at least one byte each per node.
    if (n as usize).checked_mul(2)? > buf.len().saturating_sub(*pos) {
        return None;
    }
    let mut nodes = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let parent = get_varint(buf, pos)?;
        let parent = if parent == 0 {
            None
        } else {
            Some(u32::try_from(parent - 1).ok()?)
        };
        let bag = u32::try_from(get_varint(buf, pos)?).ok()?;
        nodes.push((parent, bag));
    }
    Some(StoredTd { nodes })
}

impl StoreRecord {
    /// Encodes the record body (type byte + payload; no framing).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StoreRecord::Schema {
                hash,
                digest,
                num_vertices,
                edges,
            } => {
                out.push(1);
                out.extend_from_slice(&hash.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
                put_varint(&mut out, *num_vertices);
                put_varint(&mut out, edges.len() as u64);
                for e in edges {
                    for &w in e {
                        put_varint(&mut out, w);
                    }
                }
            }
            StoreRecord::Bags {
                hash,
                digest,
                universe,
                bags,
            } => {
                out.push(2);
                out.extend_from_slice(&hash.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
                put_varint(&mut out, *universe);
                put_varint(&mut out, bags.len() as u64);
                for b in bags {
                    for &w in b {
                        put_varint(&mut out, w);
                    }
                }
            }
            StoreRecord::Result {
                hash,
                digest,
                result,
            } => {
                out.push(3);
                out.extend_from_slice(&hash.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
                result.key.encode(&mut out);
                put_varint(&mut out, result.fields.len() as u64);
                for (k, v) in &result.fields {
                    put_string(&mut out, k);
                    put_string(&mut out, v);
                }
                match &result.answer {
                    StoredAnswer::No => out.push(0),
                    StoredAnswer::Yes(td) => {
                        out.push(1);
                        put_td(&mut out, td);
                    }
                    StoredAnswer::Width { width, td } => {
                        out.push(2);
                        put_varint(&mut out, *width);
                        put_td(&mut out, td);
                    }
                }
            }
        }
        out
    }

    /// Decodes a record body. `None` on any malformed shape — unknown
    /// type, truncation, oversized counts, trailing garbage.
    pub fn decode_body(body: &[u8]) -> Option<StoreRecord> {
        let ty = *body.first()?;
        let mut pos = 1usize;
        let hash = u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let digest = u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let record = match ty {
            1 => {
                let num_vertices = get_varint(body, &mut pos)?;
                if num_vertices == 0 || num_vertices > MAX_VERTICES {
                    return None;
                }
                let ne = get_varint(body, &mut pos)?;
                if ne > MAX_EDGES {
                    return None;
                }
                let wpb = words_per_set(num_vertices as usize);
                let edges = get_word_sets(body, &mut pos, ne, wpb)?;
                StoreRecord::Schema {
                    hash,
                    digest,
                    num_vertices,
                    edges,
                }
            }
            2 => {
                let universe = get_varint(body, &mut pos)?;
                if universe == 0 || universe > MAX_VERTICES {
                    return None;
                }
                let count = get_varint(body, &mut pos)?;
                let wpb = words_per_set(universe as usize);
                let bags = get_word_sets(body, &mut pos, count, wpb)?;
                StoreRecord::Bags {
                    hash,
                    digest,
                    universe,
                    bags,
                }
            }
            3 => {
                let key = ClassKey::decode(body, &mut pos)?;
                let nfields = get_varint(body, &mut pos)?;
                if nfields > MAX_FIELDS {
                    return None;
                }
                let mut fields = Vec::with_capacity(nfields as usize);
                for _ in 0..nfields {
                    let k = get_string(body, &mut pos)?;
                    let v = get_string(body, &mut pos)?;
                    fields.push((k, v));
                }
                let tag = *body.get(pos)?;
                pos += 1;
                let answer = match tag {
                    0 => StoredAnswer::No,
                    1 => StoredAnswer::Yes(get_td(body, &mut pos)?),
                    2 => {
                        let width = get_varint(body, &mut pos)?;
                        StoredAnswer::Width {
                            width,
                            td: get_td(body, &mut pos)?,
                        }
                    }
                    _ => return None,
                };
                StoreRecord::Result {
                    hash,
                    digest,
                    result: ResultRecord {
                        key,
                        fields,
                        answer,
                    },
                }
            }
            _ => return None,
        };
        // Trailing bytes mean the body was not what its length claimed:
        // reject rather than silently ignore.
        if pos != body.len() {
            return None;
        }
        Some(record)
    }

    /// Frames the record for the log: `len || body || crc64(body)`.
    pub fn frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        debug_assert!(body.len() <= MAX_RECORD_BYTES);
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc64(&body).to_le_bytes());
        out
    }

    /// The owning schema's `(hash, digest)`.
    pub fn schema_key(&self) -> (u64, u64) {
        match *self {
            StoreRecord::Schema { hash, digest, .. }
            | StoreRecord::Bags { hash, digest, .. }
            | StoreRecord::Result { hash, digest, .. } => (hash, digest),
        }
    }
}

/// Outcome of scanning one record out of the log bytes.
#[derive(Debug)]
pub enum ScanOutcome {
    /// A valid record; `next` is the offset just past it.
    Record(StoreRecord, usize),
    /// Clean end of log (no bytes past `pos`).
    End,
    /// Torn tail or corruption at `pos`: everything from here on is
    /// untrusted and must be truncated away.
    Corrupt,
}

/// Scans the record starting at `pos` (which must be past the magic).
pub fn scan_record(bytes: &[u8], pos: usize) -> ScanOutcome {
    if pos == bytes.len() {
        return ScanOutcome::End;
    }
    let Some(len_bytes) = bytes.get(pos..pos + 4) else {
        return ScanOutcome::Corrupt; // torn length field
    };
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if len > MAX_RECORD_BYTES {
        return ScanOutcome::Corrupt;
    }
    let body_start = pos + 4;
    let Some(body) = bytes.get(body_start..body_start + len) else {
        return ScanOutcome::Corrupt; // torn body
    };
    let crc_start = body_start + len;
    let Some(crc_bytes) = bytes.get(crc_start..crc_start + 8) else {
        return ScanOutcome::Corrupt; // torn checksum
    };
    let crc = u64::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc != crc64(body) {
        return ScanOutcome::Corrupt;
    }
    match StoreRecord::decode_body(body) {
        Some(record) => ScanOutcome::Record(record, crc_start + 8),
        None => ScanOutcome::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ ("123456789") = 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_ne!(crc64(b"123456789"), crc64(b"123456788"));
    }

    #[test]
    fn bodies_roundtrip() {
        let records = vec![
            StoreRecord::Schema {
                hash: 0xdead_beef,
                digest: 42,
                num_vertices: 70,
                edges: vec![vec![0b11, 0], vec![1 << 63, 0b1]],
            },
            StoreRecord::Bags {
                hash: 1,
                digest: 2,
                universe: 10,
                bags: vec![vec![0b101], vec![0b11]],
            },
            StoreRecord::Result {
                hash: 9,
                digest: 8,
                result: ResultRecord {
                    key: ClassKey::BestShallow { d: -3, k: 2 },
                    fields: vec![("eval".into(), "shallow:-3".into())],
                    answer: StoredAnswer::Yes(StoredTd {
                        nodes: vec![(None, 0), (Some(0), 1), (Some(0), 0)],
                    }),
                },
            },
            StoreRecord::Result {
                hash: 9,
                digest: 8,
                result: ResultRecord {
                    key: ClassKey::Shw,
                    fields: vec![],
                    answer: StoredAnswer::Width {
                        width: 2,
                        td: StoredTd {
                            nodes: vec![(None, 5)],
                        },
                    },
                },
            },
            StoreRecord::Result {
                hash: 9,
                digest: 8,
                result: ResultRecord {
                    key: ClassKey::ShwLeq(1),
                    fields: vec![],
                    answer: StoredAnswer::No,
                },
            },
        ];
        for r in &records {
            let body = r.encode_body();
            assert_eq!(StoreRecord::decode_body(&body).as_ref(), Some(r));
            // Truncation at every cut point is rejected.
            for cut in 0..body.len() {
                assert_eq!(StoreRecord::decode_body(&body[..cut]), None, "cut {cut}");
            }
            // Trailing garbage is rejected.
            let mut padded = body.clone();
            padded.push(0);
            assert_eq!(StoreRecord::decode_body(&padded), None);
        }
    }

    #[test]
    fn framed_records_scan_and_reject_flips() {
        let r = StoreRecord::Bags {
            hash: 7,
            digest: 7,
            universe: 100,
            bags: vec![vec![u64::MAX, 0b1111], vec![0, 1]],
        };
        let framed = r.frame();
        match scan_record(&framed, 0) {
            ScanOutcome::Record(back, next) => {
                assert_eq!(back, r);
                assert_eq!(next, framed.len());
            }
            other => panic!("{other:?}"),
        }
        // Any single bit flip anywhere in the frame is caught (length,
        // body, or checksum corruption all scan as Corrupt — or, for
        // length-field flips that still frame validly, fail the crc).
        for byte in 0..framed.len() {
            let mut bad = framed.clone();
            bad[byte] ^= 0x10;
            match scan_record(&bad, 0) {
                ScanOutcome::Corrupt => {}
                other => panic!("flip at {byte} not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        // A Bags record claiming 2^40 bags over a short buffer must be
        // rejected before reserving anything.
        let mut body = vec![2u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        put_varint(&mut body, 64); // universe
        put_varint(&mut body, 1 << 40); // bag count
        assert_eq!(StoreRecord::decode_body(&body), None);
    }
}
