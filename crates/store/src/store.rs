//! The disk-backed store: an append-only record log with an in-memory
//! index, torn-tail recovery, and log compaction.
//!
//! [`Store::open`] replays the log into per-schema state (canonical
//! structure, shared bag dictionary, live results). Replay stops at the
//! first frame that fails its length, checksum, or semantic validation
//! and **truncates the file back to the last valid record** — a torn
//! tail from a crash mid-append costs the unflushed suffix, never the
//! prefix, and a corrupted record is rejected (recomputed by the
//! service), never trusted.
//!
//! [`Store::put`] appends: on a schema's first sight a `Schema` record,
//! then a `Bags` delta for witness bags the schema's dictionary has not
//! seen (bag dedup across records of one schema), then the `Result`.
//! Writes go straight to the file descriptor; durability is the
//! caller's [`Store::sync`] (the service batches fsyncs on its
//! write-behind channel). [`Store::compact`] rewrites the log dropping
//! superseded results and orphaned dictionary bags, atomically via a
//! temp file + rename.

use crate::fault::{FaultInjector, WriteDecision};
use crate::record::{
    crc64, scan_record, words_per_set, ClassKey, ResultRecord, ScanOutcome, StoreRecord,
    StoredAnswer, StoredTd, MAGIC,
};
use softhw_core::td::TreeDecomposition;
use softhw_hypergraph::cache::canonical_form;
use softhw_hypergraph::fxhash::hash_u64_iter;
use softhw_hypergraph::{ArenaSnapshot, BagArena, BagId, FxHashMap, Hypergraph, HypergraphBuilder};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Structural hash + independent digest of a hypergraph's canonical
/// form. The pair keys the store: the hash routes, the digest (different
/// mixing over the same canonical words) rejects hash collisions without
/// storing the full canonical form in every record.
pub fn schema_key(h: &Hypergraph) -> (u64, u64) {
    let canon = canonical_form(h);
    (
        softhw_hypergraph::fxhash::hash_u64s(&canon),
        schema_digest(&canon),
    )
}

/// The digest half of [`schema_key`], over a precomputed canonical form.
pub fn schema_digest(canon: &[u64]) -> u64 {
    hash_u64_iter(std::iter::once(0x9e37_79b9_7f4a_7c15).chain(canon.iter().copied()))
}

/// Counters and sizes of a [`Store`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Structurally distinct schemas tracked.
    pub schemas: usize,
    /// Live results across all schemas.
    pub results: usize,
    /// Dictionary bags across all schemas.
    pub dict_bags: usize,
    /// Valid log bytes on disk.
    pub bytes: u64,
    /// `get` probes served.
    pub gets: u64,
    /// `get` probes that found a result.
    pub hits: u64,
    /// `get` probes that found nothing.
    pub misses: u64,
    /// Results persisted this session.
    pub puts: u64,
    /// Bytes dropped by open-time recovery (torn tail / corruption).
    pub recovered_bytes: u64,
}

/// Per-schema summary row (`inspect` / `top` / warm-start ordering).
#[derive(Clone, Debug)]
pub struct SchemaSummary {
    /// Structural hash.
    pub hash: u64,
    /// Canonical digest.
    pub digest: u64,
    /// `|V(H)|`.
    pub num_vertices: usize,
    /// `|E(H)|`.
    pub num_edges: usize,
    /// Bags in the shared dictionary.
    pub dict_bags: usize,
    /// Live results.
    pub results: usize,
    /// Heat: live results plus this session's hits — the warm-start
    /// ordering key.
    pub heat: u64,
}

/// A witness rebuilt from the store, in the exact flat framing the wire
/// protocol uses: a deduplicated [`ArenaSnapshot`] (bag ids dense in
/// first-occurrence order over the node table) plus `(parent, bag-id)`
/// nodes in preorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameOwned {
    /// The vertex universe.
    pub universe: usize,
    /// Every distinct bag once, id order.
    pub snapshot: ArenaSnapshot,
    /// `(parent index, bag id)` per node, preorder.
    pub nodes: Vec<(Option<u32>, u32)>,
}

impl FrameOwned {
    /// Reconstructs the decomposition (shared
    /// [`TreeDecomposition::from_bag_frame`] decode path, total on
    /// corrupt frames).
    pub fn to_td(&self) -> Result<TreeDecomposition, softhw_core::FrameError> {
        TreeDecomposition::from_bag_frame(self.universe, &self.snapshot, &self.nodes)
    }
}

/// A borrowed witness frame handed to [`Store::put`] (the service's
/// `TdFrame`, decomposed into its parts so the store does not depend on
/// the wire crate).
#[derive(Clone, Copy)]
pub struct FrameRef<'a> {
    /// The vertex universe.
    pub universe: usize,
    /// Deduplicated bag words.
    pub snapshot: &'a ArenaSnapshot,
    /// `(parent index, bag id)` per node, preorder.
    pub nodes: &'a [(Option<u32>, u32)],
}

/// The answer being persisted by [`Store::put`].
#[derive(Clone, Copy)]
pub enum PutAnswer<'a> {
    /// A "no" decision.
    No,
    /// A "yes" decision with its witness.
    Yes(FrameRef<'a>),
    /// An exact width with its witness.
    Width {
        /// The computed width.
        width: usize,
        /// The witness decomposition.
        frame: FrameRef<'a>,
    },
}

/// A result retrieved from the store.
#[derive(Clone, Debug)]
pub struct StoreHit {
    /// Echo fields of the stored response.
    pub fields: Vec<(String, String)>,
    /// The stored answer with materialised witness frames.
    pub answer: HitAnswer,
}

/// The answer half of a [`StoreHit`].
#[derive(Clone, Debug)]
pub enum HitAnswer {
    /// A "no" decision.
    No,
    /// A "yes" decision with its witness.
    Yes(FrameOwned),
    /// An exact width with its witness.
    Width {
        /// The stored width.
        width: usize,
        /// The witness decomposition.
        frame: FrameOwned,
    },
}

struct SchemaEntry {
    digest: u64,
    num_vertices: usize,
    /// Canonical (sorted) edge words.
    edges: Vec<Vec<u64>>,
    /// The shared bag dictionary; ids are record-referenced.
    dict: BagArena,
    results: FxHashMap<ClassKey, ResultRecord>,
    /// Session get-hits (heat = this + live results).
    session_hits: u64,
}

impl SchemaEntry {
    fn heat(&self) -> u64 {
        self.results.len() as u64 + self.session_hits
    }
}

/// The disk-backed decomposition store. See the module docs.
pub struct Store {
    path: PathBuf,
    file: File,
    /// hash → entries (hash-colliding schemas share a bucket, split by
    /// digest).
    index: FxHashMap<u64, Vec<SchemaEntry>>,
    bytes: u64,
    gets: u64,
    hits: u64,
    misses: u64,
    puts: u64,
    recovered_bytes: u64,
    /// Test-only storage fault injection; `None` in production.
    faults: Option<FaultInjector>,
}

impl Store {
    /// Opens (or creates) the store at `path`, replaying the log with
    /// torn-tail recovery: the file is truncated back to the last valid
    /// record, and `recovered_bytes` in [`Store::stats`] reports what
    /// was dropped. A file that does not even carry the magic header is
    /// treated as wholly corrupt and reset to an empty store.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        // Exclusive advisory lock for the lifetime of this handle: a
        // second opener (another server, or `softhw-store compact`
        // against a live server) would race appends or rename the log
        // out from under us — refuse loudly instead. On filesystems
        // without lock support the lock is best-effort: proceed
        // unlocked rather than refuse to run at all.
        match file.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!("store {} is locked by another process", path.display()),
                ));
            }
            Err(std::fs::TryLockError::Error(_)) => {}
        }
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut store = Store {
            path,
            file,
            index: FxHashMap::default(),
            bytes: MAGIC.len() as u64,
            gets: 0,
            hits: 0,
            misses: 0,
            puts: 0,
            recovered_bytes: 0,
            faults: None,
        };
        if bytes.is_empty() {
            store.file.write_all(MAGIC)?;
            store.file.sync_data()?;
            return Ok(store);
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            // Unrecognisable header: nothing in the file can be trusted.
            store.recovered_bytes = bytes.len() as u64;
            store.file.set_len(0)?;
            store.file.seek(SeekFrom::Start(0))?;
            store.file.write_all(MAGIC)?;
            store.file.sync_data()?;
            return Ok(store);
        }
        let mut pos = MAGIC.len();
        let mut last_good = pos;
        loop {
            match scan_record(&bytes, pos) {
                ScanOutcome::End => break,
                ScanOutcome::Record(record, next) => {
                    if store.apply(record).is_err() {
                        // Checksum-valid but semantically inconsistent
                        // (e.g. a result referencing dictionary bags
                        // that were never appended): reject it and
                        // everything after it.
                        break;
                    }
                    pos = next;
                    last_good = next;
                }
                ScanOutcome::Corrupt => break,
            }
        }
        if last_good < bytes.len() {
            store.recovered_bytes = (bytes.len() - last_good) as u64;
            store.file.set_len(last_good as u64)?;
            store.file.sync_data()?;
        }
        store.file.seek(SeekFrom::Start(last_good as u64))?;
        store.bytes = last_good as u64;
        Ok(store)
    }

    /// Like [`Store::open`], but with storage fault injection on the
    /// append/sync path (see [`crate::fault`]). Open-time replay and
    /// recovery run un-faulted — recovery is the code a fault-injection
    /// test wants to exercise *afterwards*, on a clean reopen.
    pub fn open_with_faults(path: impl AsRef<Path>, faults: FaultInjector) -> io::Result<Store> {
        let mut store = Store::open(path)?;
        store.faults = Some(faults);
        Ok(store)
    }

    /// The path this store is backed by.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current counters and sizes.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            schemas: self.index.values().map(Vec::len).sum(),
            results: self.index.values().flatten().map(|e| e.results.len()).sum(),
            dict_bags: self.index.values().flatten().map(|e| e.dict.len()).sum(),
            bytes: self.bytes,
            gets: self.gets,
            hits: self.hits,
            misses: self.misses,
            puts: self.puts,
            recovered_bytes: self.recovered_bytes,
        }
    }

    /// Applies a replayed record to the index. `Err` marks the record
    /// semantically inconsistent with the state built so far.
    fn apply(&mut self, record: StoreRecord) -> Result<(), &'static str> {
        let (hash, digest) = record.schema_key();
        match record {
            StoreRecord::Schema {
                num_vertices,
                edges,
                ..
            } => {
                let bucket = self.index.entry(hash).or_default();
                if let Some(existing) = bucket.iter().find(|e| e.digest == digest) {
                    // Idempotent re-registration (e.g. a crash between a
                    // Schema append and its first Result) must describe
                    // the same structure.
                    if existing.num_vertices != num_vertices as usize || existing.edges != edges {
                        return Err("schema re-registered with different structure");
                    }
                    return Ok(());
                }
                bucket.push(SchemaEntry {
                    digest,
                    num_vertices: num_vertices as usize,
                    edges,
                    dict: BagArena::new(num_vertices as usize),
                    results: FxHashMap::default(),
                    session_hits: 0,
                });
                Ok(())
            }
            StoreRecord::Bags { universe, bags, .. } => {
                let entry = Self::entry_mut(&mut self.index, hash, digest)
                    .ok_or("bags for unregistered schema")?;
                if universe as usize != entry.num_vertices {
                    return Err("bags universe disagrees with schema");
                }
                let wpb = words_per_set(entry.num_vertices);
                // The writer only appends bags the dictionary has not
                // seen; a duplicate here (within the record or against
                // the dictionary) would shift every later id, so it is
                // corruption. Check before mutating.
                for (i, b) in bags.iter().enumerate() {
                    if b.len() != wpb {
                        return Err("bag with wrong word count");
                    }
                    if entry.dict.lookup_words(b).is_some()
                        || bags[..i].iter().any(|prev| prev == b)
                    {
                        return Err("duplicate dictionary bag");
                    }
                }
                for b in &bags {
                    entry.dict.intern_words(b);
                }
                Ok(())
            }
            StoreRecord::Result { result, .. } => {
                let entry = Self::entry_mut(&mut self.index, hash, digest)
                    .ok_or("result for unregistered schema")?;
                let dict_len = entry.dict.len() as u64;
                let check_td = |td: &StoredTd| -> Result<(), &'static str> {
                    if td.nodes.iter().any(|&(_, bag)| bag as u64 >= dict_len) {
                        return Err("witness references unknown dictionary bag");
                    }
                    Ok(())
                };
                match &result.answer {
                    StoredAnswer::No => {}
                    StoredAnswer::Yes(td) | StoredAnswer::Width { td, .. } => check_td(td)?,
                }
                entry.results.insert(result.key, result);
                Ok(())
            }
        }
    }

    fn entry_mut(
        index: &mut FxHashMap<u64, Vec<SchemaEntry>>,
        hash: u64,
        digest: u64,
    ) -> Option<&mut SchemaEntry> {
        index
            .get_mut(&hash)?
            .iter_mut()
            .find(|e| e.digest == digest)
    }

    fn entry(&self, hash: u64, digest: u64) -> Option<&SchemaEntry> {
        self.index.get(&hash)?.iter().find(|e| e.digest == digest)
    }

    fn append(&mut self, record: &StoreRecord) -> io::Result<()> {
        let framed = record.frame();
        self.write_log(&framed)?;
        self.bytes += framed.len() as u64;
        Ok(())
    }

    /// One log write, routed through the fault injector when present.
    /// On an injected partial write the persisted prefix stays on disk
    /// (that is the point — it is the torn tail recovery must clean up)
    /// but `self.bytes` is *not* advanced, so the in-memory view keeps
    /// describing only the valid prefix.
    fn write_log(&mut self, framed: &[u8]) -> io::Result<()> {
        if let Some(faults) = &self.faults {
            match faults.on_write(self.bytes, framed.len()) {
                WriteDecision::Full => {}
                WriteDecision::Partial(keep, err) => {
                    self.file.write_all(&framed[..keep])?;
                    return Err(err);
                }
                WriteDecision::Fail(err) => return Err(err),
            }
        }
        self.file.write_all(framed)
    }

    /// Persists one result of schema `h`. Appends, in order: a `Schema`
    /// record on first sight, a `Bags` delta for witness bags new to
    /// the schema's dictionary, and the `Result` (which supersedes any
    /// earlier result under the same class key). Durability requires a
    /// later [`Store::sync`].
    pub fn put(
        &mut self,
        h: &Hypergraph,
        key: ClassKey,
        fields: &[(String, String)],
        answer: PutAnswer<'_>,
    ) -> io::Result<()> {
        let (hash, digest) = schema_key(h);
        if self.entry(hash, digest).is_none() {
            let mut edges: Vec<Vec<u64>> = h.edges().iter().map(|e| e.blocks().to_vec()).collect();
            edges.sort_unstable();
            let record = StoreRecord::Schema {
                hash,
                digest,
                num_vertices: h.num_vertices() as u64,
                edges,
            };
            self.apply(record.clone())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            self.append(&record)?;
        }
        // Intern the witness's bags into the shared dictionary, logging
        // only the delta, and translate the node table to dictionary
        // ids.
        let translate = |this: &mut Store, frame: FrameRef<'_>| -> io::Result<StoredTd> {
            if frame.universe != h.num_vertices() || frame.snapshot.universe != frame.universe {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "witness universe disagrees with schema",
                ));
            }
            let entry = Self::entry_mut(&mut this.index, hash, digest).expect("registered above");
            let mut new_bags: Vec<Vec<u64>> = Vec::new();
            let mut dict_of_local: Vec<u32> = Vec::with_capacity(frame.snapshot.len());
            for i in 0..frame.snapshot.len() {
                let words = frame.snapshot.words(i);
                let id = match entry.dict.lookup_words(words) {
                    Some(id) => id,
                    None => {
                        new_bags.push(words.to_vec());
                        entry.dict.intern_words(words)
                    }
                };
                dict_of_local.push(id.0);
            }
            let mut nodes = Vec::with_capacity(frame.nodes.len());
            for &(parent, bag) in frame.nodes {
                let dict_id = *dict_of_local.get(bag as usize).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "witness bag id out of range")
                })?;
                nodes.push((parent, dict_id));
            }
            if !new_bags.is_empty() {
                this.append(&StoreRecord::Bags {
                    hash,
                    digest,
                    universe: h.num_vertices() as u64,
                    bags: new_bags,
                })?;
            }
            Ok(StoredTd { nodes })
        };
        let answer = match answer {
            PutAnswer::No => StoredAnswer::No,
            PutAnswer::Yes(frame) => StoredAnswer::Yes(translate(self, frame)?),
            PutAnswer::Width { width, frame } => StoredAnswer::Width {
                width: width as u64,
                td: translate(self, frame)?,
            },
        };
        let result = ResultRecord {
            key,
            fields: fields.to_vec(),
            answer,
        };
        let record = StoreRecord::Result {
            hash,
            digest,
            result: result.clone(),
        };
        self.append(&record)?;
        Self::entry_mut(&mut self.index, hash, digest)
            .expect("registered above")
            .results
            .insert(key, result);
        self.puts += 1;
        Ok(())
    }

    /// Looks up the stored result for `(hash, digest, key)`,
    /// materialising witness frames against the schema's dictionary.
    /// Pure index probe — no disk I/O.
    pub fn get(&mut self, hash: u64, digest: u64, key: &ClassKey) -> Option<StoreHit> {
        self.gets += 1;
        let entry = match Self::entry_mut(&mut self.index, hash, digest) {
            Some(e) => e,
            None => {
                self.misses += 1;
                return None;
            }
        };
        let Some(result) = entry.results.get(key) else {
            self.misses += 1;
            return None;
        };
        let universe = entry.num_vertices;
        let frame = |td: &StoredTd| Self::materialise(&entry.dict, universe, td);
        let answer = match &result.answer {
            StoredAnswer::No => HitAnswer::No,
            StoredAnswer::Yes(td) => HitAnswer::Yes(frame(td)),
            StoredAnswer::Width { width, td } => HitAnswer::Width {
                width: *width as usize,
                frame: frame(td),
            },
        };
        let hit = StoreHit {
            fields: result.fields.clone(),
            answer,
        };
        entry.session_hits += 1;
        self.hits += 1;
        Some(hit)
    }

    /// Rebuilds a dense-id witness frame from dictionary-id nodes: local
    /// ids are assigned in first-occurrence order over the node table,
    /// which is exactly the order the wire's `TdFrame::from_td` interns
    /// preorder bags — so a frame that went through the store compares
    /// byte-identical to one framed fresh.
    fn materialise(dict: &BagArena, universe: usize, td: &StoredTd) -> FrameOwned {
        let mut local_of_dict: FxHashMap<u32, u32> = FxHashMap::default();
        let mut storage: Vec<u64> = Vec::new();
        let mut nodes = Vec::with_capacity(td.nodes.len());
        for &(parent, dict_id) in &td.nodes {
            let next = local_of_dict.len() as u32;
            let local = *local_of_dict.entry(dict_id).or_insert_with(|| {
                storage.extend_from_slice(dict.words(BagId(dict_id)));
                next
            });
            nodes.push((parent, local));
        }
        FrameOwned {
            universe,
            snapshot: ArenaSnapshot { universe, storage },
            nodes,
        }
    }

    /// Flushes and fsyncs the log. The write-behind persister calls
    /// this between batches; nothing is durable before it returns.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if let Some(faults) = &self.faults {
            faults.on_sync()?;
        }
        self.file.sync_data()
    }

    /// A second handle onto the log for durability syncs: appends
    /// happen under the store lock (fast syscalls), but a caller can
    /// `sync_data()` this clone *without* holding the lock, keeping the
    /// slow disk flush off the request path entirely.
    pub fn sync_handle(&self) -> io::Result<File> {
        self.file.try_clone()
    }

    /// Summaries of every schema, hottest first (ties broken by hash for
    /// a stable order). The warm-start preload order.
    pub fn schemas(&self) -> Vec<SchemaSummary> {
        let mut out: Vec<SchemaSummary> = self
            .index
            .iter()
            .flat_map(|(&hash, bucket)| {
                bucket.iter().map(move |e| SchemaSummary {
                    hash,
                    digest: e.digest,
                    num_vertices: e.num_vertices,
                    num_edges: e.edges.len(),
                    dict_bags: e.dict.len(),
                    results: e.results.len(),
                    heat: e.heat(),
                })
            })
            .collect();
        out.sort_by(|a, b| b.heat.cmp(&a.heat).then(a.hash.cmp(&b.hash)));
        out
    }

    /// The hottest `n` schemas as `(hash, digest)` pairs.
    pub fn hottest(&self, n: usize) -> Vec<(u64, u64)> {
        self.schemas()
            .into_iter()
            .take(n)
            .map(|s| (s.hash, s.digest))
            .collect()
    }

    /// Rebuilds a structurally identical hypergraph for a stored schema
    /// (synthetic `v<i>`/`e<j>` names; the structural hash and digest of
    /// the rebuilt hypergraph equal the stored ones, which
    /// [`Store::verify`] checks).
    pub fn schema_hypergraph(&self, hash: u64, digest: u64) -> Option<Hypergraph> {
        let entry = self.entry(hash, digest)?;
        let mut b = HypergraphBuilder::new();
        for v in 0..entry.num_vertices {
            b.vertex(&format!("v{v}"));
        }
        for (j, words) in entry.edges.iter().enumerate() {
            let ids: Vec<usize> = softhw_hypergraph::arena::words_iter(words).collect();
            if ids.iter().any(|&v| v >= entry.num_vertices) {
                return None; // corrupt edge survived somehow: refuse
            }
            b.edge_ids(&format!("e{j}"), &ids);
        }
        Some(b.build_allow_isolated())
    }

    /// Every stored result of a schema, key-sorted, witnesses
    /// materialised — the warm-start feed.
    pub fn results_for(&self, hash: u64, digest: u64) -> Vec<(ClassKey, StoreHit)> {
        let Some(entry) = self.entry(hash, digest) else {
            return Vec::new();
        };
        let mut out: Vec<(ClassKey, StoreHit)> = entry
            .results
            .values()
            .map(|r| {
                let frame = |td: &StoredTd| Self::materialise(&entry.dict, entry.num_vertices, td);
                let answer = match &r.answer {
                    StoredAnswer::No => HitAnswer::No,
                    StoredAnswer::Yes(td) => HitAnswer::Yes(frame(td)),
                    StoredAnswer::Width { width, td } => HitAnswer::Width {
                        width: *width as usize,
                        frame: frame(td),
                    },
                };
                (
                    r.key,
                    StoreHit {
                        fields: r.fields.clone(),
                        answer,
                    },
                )
            })
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Full offline verification: every schema rebuilds to its stored
    /// hash/digest, and every stored witness decodes into a valid tree
    /// decomposition of its schema. Returns human-readable problem
    /// descriptions (empty = clean).
    pub fn verify(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for s in self.schemas() {
            let Some(h) = self.schema_hypergraph(s.hash, s.digest) else {
                problems.push(format!("schema {:016x}: cannot rebuild hypergraph", s.hash));
                continue;
            };
            let (rh, rd) = schema_key(&h);
            if (rh, rd) != (s.hash, s.digest) {
                problems.push(format!(
                    "schema {:016x}: rebuilt hash/digest disagree ({rh:016x}/{rd:016x})",
                    s.hash
                ));
                continue;
            }
            for (key, hit) in self.results_for(s.hash, s.digest) {
                let frame = match &hit.answer {
                    HitAnswer::No => continue,
                    HitAnswer::Yes(f) => f,
                    HitAnswer::Width { frame, .. } => frame,
                };
                match frame.to_td() {
                    Ok(td) => {
                        if let Err(e) = td.validate(&h) {
                            problems.push(format!(
                                "schema {:016x} {key:?}: witness invalid: {e}",
                                s.hash
                            ));
                        }
                    }
                    Err(e) => problems.push(format!(
                        "schema {:016x} {key:?}: witness frame corrupt: {e}",
                        s.hash
                    )),
                }
            }
        }
        problems
    }

    /// Rewrites the log keeping only live state: one `Schema` record per
    /// schema, one `Bags` record holding exactly the dictionary bags
    /// still referenced by a live result (orphans from superseded
    /// results are dropped, ids remapped), and the live `Result`
    /// records. Atomic: written to a temp file, fsynced, renamed over
    /// the log. Returns `(bytes_before, bytes_after)`.
    pub fn compact(&mut self) -> io::Result<(u64, u64)> {
        let before = self.bytes;
        let tmp_path = {
            let mut p = self.path.clone().into_os_string();
            p.push(".compact");
            PathBuf::from(p)
        };
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        let mut written = MAGIC.len() as u64;
        let mut hashes: Vec<u64> = self.index.keys().copied().collect();
        hashes.sort_unstable();
        for hash in hashes {
            let bucket = &self.index[&hash];
            let mut order: Vec<usize> = (0..bucket.len()).collect();
            order.sort_by_key(|&i| bucket[i].digest);
            for i in order {
                let entry = &bucket[i];
                let mut records: Vec<StoreRecord> = Vec::new();
                records.push(StoreRecord::Schema {
                    hash,
                    digest: entry.digest,
                    num_vertices: entry.num_vertices as u64,
                    edges: entry.edges.clone(),
                });
                // Gather referenced dictionary bags in a deterministic
                // order (key-sorted results, node order within each) and
                // remap them to fresh dense ids.
                let mut keys: Vec<ClassKey> = entry.results.keys().copied().collect();
                keys.sort_unstable();
                let mut new_of_old: FxHashMap<u32, u32> = FxHashMap::default();
                let mut kept_bags: Vec<Vec<u64>> = Vec::new();
                let mut remapped: Vec<ResultRecord> = Vec::new();
                for key in keys {
                    let r = &entry.results[&key];
                    let mut remap_td = |td: &StoredTd| StoredTd {
                        nodes: td
                            .nodes
                            .iter()
                            .map(|&(parent, old)| {
                                let next = new_of_old.len() as u32;
                                let new = *new_of_old.entry(old).or_insert_with(|| {
                                    kept_bags.push(entry.dict.words(BagId(old)).to_vec());
                                    next
                                });
                                (parent, new)
                            })
                            .collect(),
                    };
                    let answer = match &r.answer {
                        StoredAnswer::No => StoredAnswer::No,
                        StoredAnswer::Yes(td) => StoredAnswer::Yes(remap_td(td)),
                        StoredAnswer::Width { width, td } => StoredAnswer::Width {
                            width: *width,
                            td: remap_td(td),
                        },
                    };
                    remapped.push(ResultRecord {
                        key,
                        fields: r.fields.clone(),
                        answer,
                    });
                }
                if !kept_bags.is_empty() {
                    records.push(StoreRecord::Bags {
                        hash,
                        digest: entry.digest,
                        universe: entry.num_vertices as u64,
                        bags: kept_bags,
                    });
                }
                for result in remapped {
                    records.push(StoreRecord::Result {
                        hash,
                        digest: entry.digest,
                        result,
                    });
                }
                for record in &records {
                    let framed = record.frame();
                    tmp.write_all(&framed)?;
                    written += framed.len() as u64;
                }
            }
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen on the compacted file and rebuild the index (ids were
        // remapped), carrying the session counters over.
        let reopened = Store::open(&self.path)?;
        let (gets, hits, misses, puts, recovered) = (
            self.gets,
            self.hits,
            self.misses,
            self.puts,
            self.recovered_bytes,
        );
        *self = reopened;
        self.gets = gets;
        self.hits = hits;
        self.misses = misses;
        self.puts = puts;
        self.recovered_bytes = recovered;
        debug_assert_eq!(self.bytes, written);
        Ok((before, written))
    }
}

/// Consistency helper for tests and `softhw-store verify`: the crc of
/// the whole live file (read back from disk), to detect writer bugs
/// that in-memory state would mask.
pub fn file_crc(path: impl AsRef<Path>) -> io::Result<u64> {
    let bytes = std::fs::read(path)?;
    Ok(crc64(&bytes))
}
