//! Observability primitives for the softhw solve pipeline: a
//! thread-local span/trace layer, fixed log2-bucket histograms with
//! lock-free atomic counters, a slow-query ring buffer, and the
//! Prometheus-style text exposition the service's `METRICS` verb emits.
//!
//! Std-only and registry-free (like `softhw-lint`): nothing here spawns
//! threads, allocates globals beyond one `AtomicBool`, or takes locks on
//! a hot path.
//!
//! # Spans and traces
//!
//! A *trace* is the per-request recording context. The service begins a
//! trace on the worker thread that executes a request
//! ([`begin_trace`]), the instrumented long paths in
//! `softhw-hypergraph` / `softhw-core` / `softhw-service` open cheap
//! RAII [`Span`] guards ([`span`]), and the service closes the trace
//! ([`end_trace`]) to get the recorded tree back. Everything is
//! thread-local: a request is executed start to finish on one worker
//! thread, so no synchronisation is needed, and two servers in one
//! process (the twin-server tests) cannot observe each other.
//!
//! When the process-wide gate is off ([`set_enabled`]) or no trace is
//! active on the current thread — which is the situation on *every*
//! solver call made outside a traced request — [`span`] is one relaxed
//! atomic load plus one thread-local flag read and returns a disarmed
//! guard: no clock is read, nothing allocates. That is the
//! "compiled-out-to-near-zero" contract the hot paths rely on.
//!
//! # Histograms
//!
//! [`Histogram`] is 32 log2 buckets of `AtomicU64` plus a count and a
//! sum. `observe` is two relaxed fetch-adds and one `fetch_add` on the
//! bucket — safe from any number of threads, no lock, no loss.
//! Bucket `i` holds values whose bit length is `i` (so bucket 0 is
//! exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, …); the top
//! bucket saturates. [`Histogram::snapshot`] reads a consistent-enough
//! view for exposition (counters only ever grow).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Canonical stage names used across the workspace, so instrumented
/// crates, the metrics exposition, the README glossary, and the lint
/// sync rule all agree on one spelling.
pub mod stage {
    /// Hypergraph simplification (`softhw_hypergraph::reduce`).
    pub const REDUCE: &str = "reduce";
    /// `BlockIndex` construction (arena, incidence, component tables).
    pub const INDEX_BUILD: &str = "index_build";
    /// `CtdInstance` build (block derivation + dependency tables).
    pub const INSTANCE_BUILD: &str = "instance_build";
    /// Incremental `CtdInstance` extension to a larger width.
    pub const INSTANCE_EXTEND: &str = "instance_extend";
    /// Satisfaction worklist (Algorithm 1 DP, cold or incremental).
    pub const SATISFY: &str = "satisfy";
    /// λ-set enumeration / candidate bag generation.
    pub const ENUMERATE: &str = "enumerate";
    /// Result-cache probe in the service stripe.
    pub const RESULT_CACHE: &str = "result_cache";
    /// Disk-store probe (including witness re-validation on a hit).
    pub const STORE_PROBE: &str = "store_probe";
    /// Solver dispatch under the stripe lock (everything between cache
    /// miss and answer).
    pub const SOLVE: &str = "solve";
    /// Time a job spent queued between the event loop and a worker.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Time a completed response dwelt in the per-connection reorder
    /// buffer before it could be flushed in order.
    pub const REORDER_DWELL: &str = "reorder_dwell";

    /// Every stage name, in the order histograms and the exposition
    /// report them.
    pub const ALL: &[&str] = &[
        REDUCE,
        INDEX_BUILD,
        INSTANCE_BUILD,
        INSTANCE_EXTEND,
        SATISFY,
        ENUMERATE,
        RESULT_CACHE,
        STORE_PROBE,
        SOLVE,
        QUEUE_WAIT,
        REORDER_DWELL,
    ];

    /// Index of `name` in [`ALL`], if it is a known stage.
    pub fn index_of(name: &str) -> Option<usize> {
        ALL.iter().position(|s| *s == name)
    }
}

/// Process-wide observability gate. On by default; `--no-obs` (or any
/// embedder) flips it off to make every [`span`] a disarmed no-op.
static GATE: AtomicBool = AtomicBool::new(true);

/// Enables or disables span recording process-wide.
pub fn set_enabled(on: bool) {
    GATE.store(on, Ordering::Relaxed);
}

/// True iff the process-wide gate is on.
pub fn enabled() -> bool {
    GATE.load(Ordering::Relaxed)
}

/// One recorded span: a named stage with its depth in the span stack
/// and its start offset / duration in microseconds relative to the
/// trace start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (one of [`stage::ALL`] for pipeline stages).
    pub stage: &'static str,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
    /// Microseconds from trace start to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// A finished trace: the request's trace id, total duration, and every
/// span recorded on this thread while it was active.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Trace id minted by the caller (the event loop).
    pub trace_id: u64,
    /// Microseconds from [`begin_trace`] to [`end_trace`].
    pub total_us: u64,
    /// Recorded spans in open order.
    pub records: Vec<SpanRecord>,
}

struct TraceBuf {
    trace_id: u64,
    start: Instant,
    records: Vec<SpanRecord>,
    /// Indices into `records` of currently open spans.
    stack: Vec<usize>,
}

thread_local! {
    static ACTIVE: std::cell::RefCell<Option<TraceBuf>> =
        const { std::cell::RefCell::new(None) };
    /// Mirror of `ACTIVE.is_some()` readable without a `RefCell` borrow
    /// — the disarmed-span fast path.
    static TRACING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Begins a trace on the current thread (replacing any stale one left
/// behind by a panicking request). No-op when the gate is off.
pub fn begin_trace(trace_id: u64) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(TraceBuf {
            trace_id,
            start: Instant::now(),
            records: Vec::new(),
            stack: Vec::new(),
        });
    });
    TRACING.with(|t| t.set(true));
}

/// True iff a trace is active on the current thread.
pub fn trace_active() -> bool {
    TRACING.with(|t| t.get())
}

/// Ends the current thread's trace and returns what it recorded, or
/// `None` if no trace was active.
pub fn end_trace() -> Option<Trace> {
    TRACING.with(|t| t.set(false));
    let buf = ACTIVE.with(|a| a.borrow_mut().take())?;
    Some(Trace {
        trace_id: buf.trace_id,
        total_us: buf.start.elapsed().as_micros() as u64,
        records: buf.records,
    })
}

/// RAII guard for one pipeline stage. Construct via [`span`]; the
/// elapsed time is recorded into the active trace when it drops.
pub struct Span {
    /// Index of the open record, or `usize::MAX` when disarmed.
    slot: usize,
}

/// Opens a span for `stage_name` on the active trace. When the gate is
/// off or no trace is active this is a flag read and returns a disarmed
/// guard whose drop does nothing.
#[inline]
pub fn span(stage_name: &'static str) -> Span {
    if !enabled() || !TRACING.with(|t| t.get()) {
        return Span { slot: usize::MAX };
    }
    let slot = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(buf) => {
                let idx = buf.records.len();
                let depth = buf.stack.len() as u16;
                let start_us = buf.start.elapsed().as_micros() as u64;
                buf.records.push(SpanRecord {
                    stage: stage_name,
                    depth,
                    start_us,
                    dur_us: 0,
                });
                buf.stack.push(idx);
                idx
            }
            None => usize::MAX,
        }
    });
    Span { slot }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.slot == usize::MAX {
            return;
        }
        let slot = self.slot;
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if let Some(buf) = a.as_mut() {
                // Pop our own frame (and, defensively, any deeper
                // frames a panic unwound past without dropping).
                while let Some(open) = buf.stack.pop() {
                    if open <= slot {
                        break;
                    }
                }
                if let Some(rec) = buf.records.get_mut(slot) {
                    let now_us = buf.start.elapsed().as_micros() as u64;
                    rec.dur_us = now_us.saturating_sub(rec.start_us);
                }
            }
        });
    }
}

/// Number of log2 buckets in a [`Histogram`].
pub const BUCKETS: usize = 32;

/// A fixed log2-bucket histogram over `u64` values with lock-free
/// atomic counters. Bucket `i` counts values of bit length `i`
/// (bucket 0 counts exactly `0`); the top bucket saturates.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of value `v`: its bit length, clamped to the top
/// bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`None` for the saturating top
/// bucket).
pub fn bucket_upper(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free; safe from any number of threads.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every recorded value of `other` into `self` (bucket-wise).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters (counters only grow, so the
    /// snapshot is internally consistent up to in-flight increments).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Plain-data copy of a [`Histogram`]'s counters.
#[derive(Clone, Debug, Default)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of values recorded.
    pub sum: u64,
}

impl HistSnapshot {
    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket where the cumulative count crosses `q · count`
    /// (the sum for the saturating top bucket). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return Some(bucket_upper(i).unwrap_or(self.sum));
            }
        }
        Some(self.sum)
    }
}

/// Appends a `# TYPE … counter` header plus one sample line for a
/// label-less counter.
pub fn expose_counter(out: &mut Vec<String>, name: &str, value: u64) {
    out.push(format!("# TYPE {name} counter"));
    out.push(format!("{name} {value}"));
}

/// Appends one gauge sample (with `# TYPE … gauge` header).
pub fn expose_gauge(out: &mut Vec<String>, name: &str, value: u64) {
    out.push(format!("# TYPE {name} gauge"));
    out.push(format!("{name} {value}"));
}

/// Appends the cumulative-bucket exposition of one histogram series.
/// `labels` is either empty or a `key="value"` list without braces;
/// `emit_type` controls the shared `# TYPE` header (emit it once per
/// metric name, not once per label set). Zero-count tail buckets below
/// the last occupied one are skipped; `+Inf`, `_sum`, and `_count` are
/// always present.
pub fn expose_histogram(out: &mut Vec<String>, name: &str, labels: &str, snap: &HistSnapshot, emit_type: bool) {
    if emit_type {
        out.push(format!("# TYPE {name} histogram"));
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let last = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .unwrap_or(0)
        .min(BUCKETS - 2);
    let mut cum = 0u64;
    for i in 0..=last {
        cum += snap.buckets[i];
        // The top bucket has no finite bound; `last` is clamped below it.
        let le = bucket_upper(i).unwrap_or(u64::MAX);
        out.push(format!("{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}"));
    }
    out.push(format!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", snap.count));
    let lb = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push(format!("{name}_sum{lb} {}", snap.sum));
    out.push(format!("{name}_count{lb} {}", snap.count));
}

/// One slow-query record: the request's trace, class, and span tree.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Trace id (as minted by the event loop).
    pub trace_id: u64,
    /// Request class name (`SHW`, `BATCH`, …).
    pub class: String,
    /// Total request duration in microseconds.
    pub total_us: u64,
    /// The span tree, in open order.
    pub records: Vec<SpanRecord>,
}

impl SlowEntry {
    /// Renders this entry as indented text lines: one header line and
    /// one line per span, indented by nesting depth.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(1 + self.records.len());
        out.push(format!(
            "slow trace={:016x} class={} total_us={} spans={}",
            self.trace_id,
            self.class,
            self.total_us,
            self.records.len()
        ));
        for r in &self.records {
            out.push(format!(
                "{}{} dur_us={} start_us={}",
                "  ".repeat(r.depth as usize + 1),
                r.stage,
                r.dur_us,
                r.start_us
            ));
        }
        out
    }
}

/// Bounded ring of the most recent slow queries (oldest evicted first).
pub struct SlowRing {
    cap: usize,
    entries: VecDeque<SlowEntry>,
    /// Total slow queries ever recorded (not bounded by `cap`).
    recorded: u64,
}

impl SlowRing {
    /// An empty ring keeping at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        SlowRing {
            cap: cap.max(1),
            entries: VecDeque::new(),
            recorded: 0,
        }
    }

    /// Records one slow query, evicting the oldest entry when full.
    pub fn push(&mut self, entry: SlowEntry) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        self.recorded = self.recorded.saturating_add(1);
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &SlowEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total slow queries ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Renders every retained entry, oldest first.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.entries {
            out.extend(e.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        // Every bucket's inclusive upper bound maps into that bucket and
        // the next value maps out of it.
        for i in 1..BUCKETS - 1 {
            let hi = bucket_upper(i).expect("finite bucket");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
        }
        assert_eq!(bucket_upper(BUCKETS - 1), None);
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(1u64 << 62);
        h.observe((1u64 << 30) - 1); // last finite bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX.wrapping_add(1 << 62).wrapping_add((1 << 30) - 1));
    }

    #[test]
    fn concurrent_increments_are_lossless_and_merge_adds() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per = 10_000u64;
        let mut joins = Vec::new();
        for t in 0..threads {
            let h = std::sync::Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                for i in 0..per {
                    h.observe(t as u64 * per + i);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads as u64 * per);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);

        let other = Histogram::new();
        other.observe(5);
        other.observe(500);
        other.merge(&h);
        assert_eq!(other.count(), s.count + 2);
        assert_eq!(other.sum(), s.sum + 505);
    }

    #[test]
    fn spans_record_into_the_active_trace_only() {
        // No trace: disarmed, nothing recorded.
        drop(span(stage::REDUCE));
        assert!(end_trace().is_none());

        begin_trace(42);
        {
            let _outer = span(stage::SOLVE);
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span(stage::SATISFY);
        }
        let t = end_trace().expect("trace active");
        assert_eq!(t.trace_id, 42);
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0].stage, stage::SOLVE);
        assert_eq!(t.records[0].depth, 0);
        assert_eq!(t.records[1].stage, stage::SATISFY);
        assert_eq!(t.records[1].depth, 1);
        assert!(t.records[0].dur_us >= t.records[1].dur_us);
        assert!(t.total_us >= t.records[0].dur_us);
    }

    #[test]
    fn disabled_gate_disarms_spans_and_traces() {
        set_enabled(false);
        begin_trace(7);
        drop(span(stage::REDUCE));
        assert!(end_trace().is_none());
        set_enabled(true);
    }

    #[test]
    fn slow_ring_bounds_and_renders() {
        let mut ring = SlowRing::new(2);
        assert!(ring.is_empty());
        for i in 0..3u64 {
            ring.push(SlowEntry {
                trace_id: i,
                class: "SHW".to_string(),
                total_us: 10 * i,
                records: vec![SpanRecord {
                    stage: stage::REDUCE,
                    depth: 0,
                    start_us: 0,
                    dur_us: 1,
                }],
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 3);
        let lines = ring.render();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("trace=0000000000000001"), "{}", lines[0]);
        assert!(lines[1].trim_start().starts_with("reduce"), "{}", lines[1]);
    }

    #[test]
    fn exposition_is_cumulative_and_parseable() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 9] {
            h.observe(v);
        }
        let mut out = Vec::new();
        expose_histogram(&mut out, "softhw_test_us", "class=\"SHW\"", &h.snapshot(), true);
        assert_eq!(out[0], "# TYPE softhw_test_us histogram");
        assert!(out.contains(&"softhw_test_us_bucket{class=\"SHW\",le=\"0\"} 1".to_string()));
        assert!(out.contains(&"softhw_test_us_bucket{class=\"SHW\",le=\"1\"} 2".to_string()));
        assert!(out.contains(&"softhw_test_us_bucket{class=\"SHW\",le=\"3\"} 4".to_string()));
        assert!(out.contains(&"softhw_test_us_bucket{class=\"SHW\",le=\"+Inf\"} 5".to_string()));
        assert!(out.contains(&"softhw_test_us_sum{class=\"SHW\"} 15".to_string()));
        assert!(out.contains(&"softhw_test_us_count{class=\"SHW\"} 5".to_string()));
        // Cumulative counts never decrease.
        let mut prev = 0u64;
        for line in &out {
            if let Some(rest) = line.strip_suffix(|c: char| c.is_ascii_digit()) {
                let _ = rest;
            }
            if line.contains("_bucket{") {
                let v: u64 = line
                    .rsplit(' ')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("sample value");
                assert!(v >= prev, "non-cumulative: {line}");
                prev = v;
            }
        }
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(3);
        }
        h.observe(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(3));
        assert_eq!(s.quantile(1.0), Some(1023));
        assert_eq!(HistSnapshot::default().quantile(0.5), None);
    }
}
