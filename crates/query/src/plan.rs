//! From decomposition to execution: materialise atom relations, assign
//! atoms and covers to decomposition nodes, build the Yannakakis join
//! tree, and run it (Appendix C.1's rewriting pipeline, executed against
//! the in-memory engine instead of rendered SQL — see
//! [`crate::rewrite`] for the textual rendering).

use crate::cq::ConjunctiveQuery;
use softhw_core::td::TreeDecomposition;
use softhw_engine::relation::{Relation, VarId};
use softhw_engine::yannakakis::{EvalStats, JoinTree};
use softhw_engine::Database;
use softhw_hypergraph::{BitSet, Hypergraph};

/// Materialises each atom as a [`Relation`] over its variables, applying
/// constant filters and intra-atom equalities (two columns bound to the
/// same variable).
pub fn atom_relations(cq: &ConjunctiveQuery, db: &Database) -> Vec<Relation> {
    cq.atoms
        .iter()
        .map(|atom| {
            let table = db.table(&atom.table).expect("bound against this catalog");
            // Group columns by variable: first column represents; the rest
            // impose equality.
            let mut rep_cols: Vec<usize> = Vec::new();
            let mut rep_vars: Vec<VarId> = Vec::new();
            let mut extra_eq: Vec<(usize, usize)> = Vec::new(); // (col, rep col)
            for (i, &v) in atom.vars.iter().enumerate() {
                match rep_vars.iter().position(|&rv| rv == v) {
                    Some(j) => extra_eq.push((atom.cols[i], rep_cols[j])),
                    None => {
                        rep_cols.push(atom.cols[i]);
                        rep_vars.push(v);
                    }
                }
            }
            let mut rel = if extra_eq.is_empty() {
                table.as_relation(&rep_cols, &rep_vars)
            } else {
                // materialise with the equality filter applied
                let all_cols: Vec<usize> = (0..table.columns.len()).collect();
                let tmp_vars: Vec<VarId> = (0..table.columns.len() as u32).collect();
                let full = table.as_relation(&all_cols, &tmp_vars);
                let mut out = Relation::new(rep_vars.clone());
                let mut buf = Vec::with_capacity(rep_cols.len());
                for r in full.rows() {
                    if extra_eq.iter().all(|&(a, b)| r[a] == r[b]) {
                        buf.clear();
                        buf.extend(rep_cols.iter().map(|&c| r[c]));
                        out.push_row(&buf);
                    }
                }
                out
            };
            for &(v, value) in &cq.filters {
                if rel.position(v).is_some() {
                    rel = rel.select_eq(v, value);
                }
            }
            rel
        })
        .collect()
}

/// The per-node structure of a decomposition plan.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// Bag variables.
    pub bag_vars: Vec<VarId>,
    /// Atom indices joined at this node: a (preferably connected) cover of
    /// the bag plus every atom assigned here for predicate enforcement.
    pub atoms: Vec<usize>,
}

/// A decomposition-guided query plan: one [`PlanNode`] per decomposition
/// node, tree shape mirrored from the decomposition.
#[derive(Clone, Debug)]
pub struct DecompPlan {
    /// Plan nodes, indexed like the decomposition's nodes.
    pub nodes: Vec<PlanNode>,
    /// Children lists (same shape as the decomposition).
    pub children: Vec<Vec<usize>>,
    /// Root index.
    pub root: usize,
}

/// Errors raised during planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A bag has no edge cover among the query's atoms (cannot happen for
    /// candidate bags of `Soft_{H,k}`; indicates a foreign decomposition).
    NoCover {
        /// Offending decomposition node.
        node: usize,
    },
    /// An atom's variables fit in no bag — the decomposition is not a
    /// tree decomposition of this query's hypergraph.
    AtomNotCovered {
        /// Offending atom index.
        atom: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoCover { node } => write!(f, "no atom cover for bag of node {node}"),
            PlanError::AtomNotCovered { atom } => {
                write!(f, "atom {atom} is contained in no bag")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Builds the plan for a decomposition: per node, a cover of the bag
/// (connected when one exists with at most `k = |cover|` atoms, plain
/// otherwise) plus the enforcement assignment of every atom to one node
/// whose bag contains it.
pub fn build_plan(
    cq: &ConjunctiveQuery,
    h: &Hypergraph,
    td: &TreeDecomposition,
) -> Result<DecompPlan, PlanError> {
    let n = td.num_nodes();
    let mut nodes = Vec::with_capacity(n);
    for u in 0..n {
        let bag = td.bag(u);
        // Prefer connected covers of increasing size, then plain covers.
        let cover = (1..=h.num_edges())
            .find_map(|k| softhw_core::cover::find_connected_cover(h, bag, k))
            .or_else(|| softhw_core::cover::find_cover(h, bag, h.num_edges()))
            .ok_or(PlanError::NoCover { node: u })?;
        nodes.push(PlanNode {
            bag_vars: bag.iter().map(|v| v as VarId).collect(),
            atoms: cover,
        });
    }
    // Predicate enforcement: every atom joins at some node containing it.
    for (ai, _) in cq.atoms.iter().enumerate() {
        let vars = cq.atom_vars(ai);
        if nodes.iter().any(|n| n.atoms.contains(&ai)) {
            continue;
        }
        let host = (0..n)
            .find(|&u| vars.iter().all(|&v| td.bag(u).contains(v as usize)))
            .ok_or(PlanError::AtomNotCovered { atom: ai })?;
        nodes[host].atoms.push(ai);
    }
    Ok(DecompPlan {
        nodes,
        children: (0..n).map(|u| td.children(u).to_vec()).collect(),
        root: td.root(),
    })
}

/// Result of executing a decomposition plan.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// The aggregate value (`None` on an empty result).
    pub value: Option<u64>,
    /// Logical work counters (bag materialisation + Yannakakis phases).
    pub stats: EvalStats,
    /// The true bag sizes `|J_u|` (after projection to the bag).
    pub bag_sizes: Vec<u64>,
}

/// Materialises the bags and runs Yannakakis for the query's aggregate.
pub fn execute(cq: &ConjunctiveQuery, atoms: &[Relation], plan: &DecompPlan) -> ExecResult {
    execute_with_cap(cq, atoms, plan, u64::MAX).expect("uncapped execution cannot abort")
}

/// Like [`execute`] but aborts (returning `None`) once the total tuples
/// materialised exceed `cap` — the harness's analogue of a query timeout
/// for deliberately bad decompositions (Cartesian-product bags).
pub fn execute_with_cap(
    cq: &ConjunctiveQuery,
    atoms: &[Relation],
    plan: &DecompPlan,
    cap: u64,
) -> Option<ExecResult> {
    let mut stats = EvalStats::default();
    let mut bag_rels: Vec<Relation> = Vec::with_capacity(plan.nodes.len());
    for node in &plan.nodes {
        let mut acc: Option<Relation> = None;
        for &ai in &node.atoms {
            acc = Some(match acc {
                None => atoms[ai].clone(),
                Some(r) => {
                    let j = r.natural_join(&atoms[ai]);
                    stats.tuples_materialised += j.len() as u64;
                    if stats.tuples_materialised > cap {
                        return None;
                    }
                    j
                }
            });
        }
        let joined = acc.expect("covers are non-empty");
        // Project to the bag variables (π_{B_u} of Eq. (5)); keep only
        // vars actually present (bag vars not in any cover atom cannot
        // occur — covers span the bag by construction).
        let keep: Vec<VarId> = node
            .bag_vars
            .iter()
            .copied()
            .filter(|&v| joined.position(v).is_some())
            .collect();
        bag_rels.push(joined.project(&keep).distinct());
    }
    let bag_sizes: Vec<u64> = bag_rels.iter().map(|r| r.len() as u64).collect();
    // Assemble the join tree in decomposition shape.
    let mut order = vec![plan.root];
    let mut i = 0;
    while i < order.len() {
        let u = order[i];
        order.extend(plan.children[u].iter().copied());
        i += 1;
    }
    let mut jt = JoinTree::leaf(bag_rels[plan.root].clone());
    let mut jt_id = vec![usize::MAX; plan.nodes.len()];
    jt_id[plan.root] = 0;
    for &u in &order[1..] {
        let parent = (0..plan.nodes.len())
            .find(|&p| plan.children[p].contains(&u))
            .expect("tree shape");
        let id = jt.add_child(jt_id[parent], bag_rels[u].clone());
        jt_id[u] = id;
    }
    jt.full_reduce(&mut stats);
    let value = match cq.agg {
        crate::ast::Agg::Min => jt.min_after_reduce(cq.agg_var),
        crate::ast::Agg::Max => jt.max_after_reduce(cq.agg_var),
        crate::ast::Agg::Count => {
            let c = jt.count_join();
            Some(u64::try_from(c).unwrap_or(u64::MAX))
        }
    };
    Some(ExecResult {
        value,
        stats,
        bag_sizes,
    })
}

/// End-to-end convenience: bag sizes for a decomposition without running
/// the Yannakakis phases (used by the actual-cardinality cost function).
pub fn bag_size(
    cq: &ConjunctiveQuery,
    atoms: &[Relation],
    h: &Hypergraph,
    bag: &BitSet,
) -> Option<u64> {
    let cover = (1..=h.num_edges())
        .find_map(|k| softhw_core::cover::find_connected_cover(h, bag, k))
        .or_else(|| softhw_core::cover::find_cover(h, bag, h.num_edges()))?;
    let mut assigned = cover.clone();
    for (ai, _) in cq.atoms.iter().enumerate() {
        if !assigned.contains(&ai) && cq.atom_vars(ai).iter().all(|&v| bag.contains(v as usize)) {
            assigned.push(ai);
        }
    }
    let mut acc: Option<Relation> = None;
    for &ai in &assigned {
        acc = Some(match acc {
            None => atoms[ai].clone(),
            Some(r) => r.natural_join(&atoms[ai]),
        });
    }
    let joined = acc?;
    let keep: Vec<VarId> = bag
        .iter()
        .map(|v| v as VarId)
        .filter(|&v| joined.position(v).is_some())
        .collect();
    Some(joined.project(&keep).distinct().len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::bind;
    use crate::parser::parse_sql;
    use softhw_core::soft::soft_bags;
    use softhw_engine::Table;

    fn path_db() -> Database {
        let mut db = Database::new();
        let mut r = Table::new("r", &["a", "b"], None);
        r.push_row(&[1, 10]);
        r.push_row(&[2, 20]);
        r.push_row(&[3, 30]);
        let mut s = Table::new("s", &["b", "c"], None);
        s.push_row(&[10, 100]);
        s.push_row(&[20, 200]);
        let mut t = Table::new("t", &["c", "d"], None);
        t.push_row(&[100, 7]);
        t.push_row(&[200, 8]);
        db.add_table(r);
        db.add_table(s);
        db.add_table(t);
        db
    }

    #[test]
    fn end_to_end_path_query() {
        let db = path_db();
        let q = parse_sql("SELECT MIN(r.a) FROM r, s, t WHERE r.b = s.b AND s.c = t.c").unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (w, td) = softhw_core::shw::shw(&h);
        assert_eq!(w, 1, "path query is acyclic");
        let plan = build_plan(&cq, &h, &td).unwrap();
        let atoms = atom_relations(&cq, &db);
        let res = execute(&cq, &atoms, &plan);
        assert_eq!(res.value, Some(1));
    }

    #[test]
    fn execution_matches_baseline() {
        let db = path_db();
        let q = parse_sql("SELECT MAX(t.d) FROM r, s, t WHERE r.b = s.b AND s.c = t.c").unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        // decomposition path
        let bags = soft_bags(&h, 2);
        let td = softhw_core::candidate_td(&h, &bags).unwrap();
        let plan = build_plan(&cq, &h, &td).unwrap();
        let res = execute(&cq, &atoms, &plan);
        // baseline path
        let (bm, _) = softhw_engine::baseline::baseline_min(&atoms, cq.agg_var, u64::MAX).unwrap();
        // MAX via baseline: reuse run_baseline
        let base = softhw_engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .unwrap()
            .answer;
        assert_eq!(res.value, base.max_of(cq.agg_var));
        assert!(bm.is_some());
    }

    #[test]
    fn filters_applied() {
        let db = path_db();
        let q = parse_sql("SELECT MIN(r.a) FROM r, s, t WHERE r.b = s.b AND s.c = t.c AND t.d = 8")
            .unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (_, td) = softhw_core::shw::shw(&h);
        let plan = build_plan(&cq, &h, &td).unwrap();
        let atoms = atom_relations(&cq, &db);
        let res = execute(&cq, &atoms, &plan);
        assert_eq!(res.value, Some(2));
    }

    #[test]
    fn bag_size_counts_projected_join() {
        let db = path_db();
        let q = parse_sql("SELECT MIN(r.a) FROM r, s WHERE r.b = s.b").unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let bag = h.all_vertices();
        let sz = bag_size(&cq, &atoms, &h, &bag).unwrap();
        assert_eq!(sz, 2); // two joining pairs
    }

    #[test]
    fn count_aggregate() {
        let db = path_db();
        let q = parse_sql("SELECT COUNT(r.a) FROM r, s WHERE r.b = s.b").unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (_, td) = softhw_core::shw::shw(&h);
        let plan = build_plan(&cq, &h, &td).unwrap();
        let atoms = atom_relations(&cq, &db);
        let res = execute(&cq, &atoms, &plan);
        assert_eq!(res.value, Some(2));
    }
}
