//! AST for the SQL subset covering the paper's six benchmark queries
//! (Appendix D.2): single-block aggregate selects over comma-separated or
//! `JOIN ... ON` table lists with conjunctive equality predicates.

/// Aggregate function in the select list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agg {
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `COUNT(col)` (distinct participating values after reduction)
    Count,
}

/// A possibly-qualified column reference `alias.column` or `column`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QualifiedColumn {
    /// The alias qualifier, if present.
    pub qualifier: Option<String>,
    /// The column name.
    pub column: String,
}

/// One `FROM` item: a base table with an alias (defaults to the table
/// name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// Base table name.
    pub table: String,
    /// Alias used in column references.
    pub alias: String,
}

/// Right-hand side of an equality condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CondRhs {
    /// Another column (an equi-join predicate).
    Column(QualifiedColumn),
    /// A constant (a selection predicate).
    Const(u64),
}

/// An equality condition `lhs = rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condition {
    /// Left-hand column.
    pub lhs: QualifiedColumn,
    /// Right-hand column or constant.
    pub rhs: CondRhs,
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// The aggregate.
    pub agg: Agg,
    /// The aggregated column.
    pub agg_column: QualifiedColumn,
    /// All referenced tables.
    pub from: Vec<TableRef>,
    /// The conjunction of equality conditions (`WHERE` and `ON` merged —
    /// inner joins only).
    pub conditions: Vec<Condition>,
}
