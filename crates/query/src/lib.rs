//! # softhw-query
//!
//! The SQL-subset frontend of the experimental pipeline (Appendix C.1):
//! parse the paper's benchmark queries, bind them against a catalog into
//! conjunctive queries, extract the query hypergraph, turn candidate tree
//! decompositions into executable Yannakakis plans, and expose the two
//! cost functions (DBMS-estimate C.2.1 and actual-cardinality C.2.2) as
//! `TdEvaluator`s for Algorithm 2.

#![warn(missing_docs)]

pub mod ast;
pub mod cost_adapters;
pub mod cq;
pub mod parser;
pub mod plan;
pub mod rewrite;

pub use ast::{Agg, Query};
pub use cost_adapters::{CostContext, DbmsEstimateCost, TrueCardCost};
pub use cq::{ast_hypergraph, bind, BindError, ConjunctiveQuery};
pub use parser::{parse_sql, SqlError};
pub use plan::{atom_relations, build_plan, execute, DecompPlan, ExecResult};
