//! The paper's two cost functions as [`TdEvaluator`]s over candidate tree
//! decompositions, so Algorithm 2 and the enumeration machinery can rank
//! decompositions by estimated (C.2.1) or actual-cardinality (C.2.2)
//! cost. Both cache per-bag quantities keyed on interned [`BagId`]s.

use crate::cq::ConjunctiveQuery;
use softhw_core::ctd_opt::TdEvaluator;
use softhw_engine::relation::Relation;
use softhw_engine::{estimate, truecost};
use softhw_hypergraph::{BagArena, BagId, BitSet, FxHashMap, Hypergraph};
use std::cell::RefCell;

/// Shared context for the cost adapters: the bound query, its atom
/// relations, the query hypergraph, and per-bag caches.
///
/// Evaluator summaries are keyed by [`BagId`]: every bag an evaluator
/// sees is interned once into the context's arena, and the cover/size
/// caches map dense u32 ids instead of cloning boxed bitsets as hash
/// keys. The same bag arriving from different decompositions (the
/// enumeration machinery revisits bags constantly) is a word-level
/// arena probe followed by two `Vec`-indexed u32 map hits.
pub struct CostContext<'q> {
    cq: &'q ConjunctiveQuery,
    h: &'q Hypergraph,
    atoms: &'q [Relation],
    /// Per-atom: variables bound at a non-primary-key column (drives
    /// `ReduceAttrs`).
    nonkey_vars_per_atom: Vec<BitSet>,
    arena: RefCell<BagArena>,
    cover_cache: RefCell<FxHashMap<BagId, Vec<usize>>>,
    size_cache: RefCell<FxHashMap<BagId, f64>>,
}

impl<'q> CostContext<'q> {
    /// Builds the context. `pk_cols` maps atom index → the primary-key
    /// column index of its base table (if any), as recorded in the
    /// catalog.
    pub fn new(
        cq: &'q ConjunctiveQuery,
        h: &'q Hypergraph,
        atoms: &'q [Relation],
        db: &softhw_engine::Database,
    ) -> Self {
        let nonkey_vars_per_atom = cq
            .atoms
            .iter()
            .map(|atom| {
                let pk = db.table(&atom.table).and_then(|t| t.pk);
                let mut s = BitSet::empty(cq.num_vars);
                for (i, &v) in atom.vars.iter().enumerate() {
                    if Some(atom.cols[i]) != pk {
                        s.insert(v as usize);
                    }
                }
                s
            })
            .collect();
        CostContext {
            cq,
            h,
            atoms,
            nonkey_vars_per_atom,
            arena: RefCell::new(BagArena::new(h.num_vertices())),
            cover_cache: RefCell::new(FxHashMap::default()),
            size_cache: RefCell::new(FxHashMap::default()),
        }
    }

    /// Interns `bag` into the context's arena, returning its dense id —
    /// the key every per-bag cache uses.
    pub fn bag_id(&self, bag: &BitSet) -> BagId {
        self.arena.borrow_mut().intern(bag)
    }

    /// The cover (atom indices) used to materialise `bag` — connected when
    /// possible, mirroring the execution plan.
    pub fn cover(&self, bag: &BitSet) -> Vec<usize> {
        let id = self.bag_id(bag);
        if let Some(c) = self.cover_cache.borrow().get(&id) {
            return c.clone();
        }
        let cover = (1..=self.h.num_edges())
            .find_map(|k| softhw_core::cover::find_connected_cover(self.h, bag, k))
            .or_else(|| softhw_core::cover::find_cover(self.h, bag, self.h.num_edges()))
            .unwrap_or_default();
        self.cover_cache.borrow_mut().insert(id, cover.clone());
        cover
    }

    /// The true bag size `|J_u| = |π_bag(⋈ cover)|`, computed once per
    /// distinct bag (the "omniscient" input of C.2.2).
    pub fn true_bag_size(&self, bag: &BitSet) -> f64 {
        let id = self.bag_id(bag);
        if let Some(&s) = self.size_cache.borrow().get(&id) {
            return s;
        }
        let s = crate::plan::bag_size(self.cq, self.atoms, self.h, bag).unwrap_or(0) as f64;
        self.size_cache.borrow_mut().insert(id, s);
        s
    }

    fn cover_rels(&self, bag: &BitSet) -> Vec<&Relation> {
        self.cover(bag).iter().map(|&i| &self.atoms[i]).collect()
    }
}

/// Summary of the actual-cardinality cost function (C.2.2).
#[derive(Clone, Debug)]
pub struct TrueCostSummary {
    /// `cost(T_u)` per Eq. (9).
    pub cost: f64,
    /// `ReducedSz(u)` per Eq. (8).
    pub reduced_sz: f64,
    /// Variables occurring at non-PK positions anywhere in the subtree
    /// (input to the parent's `ReduceAttrs`).
    pub nonkey_below: BitSet,
}

/// The actual-cardinality cost function (Appendix C.2.2) as an evaluator.
pub struct TrueCardCost<'q, 'c> {
    /// Shared per-query context.
    pub cx: &'c CostContext<'q>,
}

impl TdEvaluator for TrueCardCost<'_, '_> {
    type Summary = TrueCostSummary;

    fn eval(
        &self,
        _h: &Hypergraph,
        bag: &BitSet,
        children: &[TrueCostSummary],
    ) -> Option<TrueCostSummary> {
        let cover = self.cx.cover(bag);
        let sizes: Vec<f64> = cover
            .iter()
            .map(|&i| self.cx.atoms[i].len() as f64)
            .collect();
        let j_u = self.cx.true_bag_size(bag);
        let node = truecost::node_cost(j_u, &sizes);
        let child_reduced: Vec<f64> = children.iter().map(|c| c.reduced_sz).collect();
        // ReduceAttrs(u): bag vars occurring at non-PK positions in some
        // child subtree.
        let mut below = BitSet::empty(self.cx.cq.num_vars);
        for c in children {
            below.union_with(&c.nonkey_below);
        }
        let reduce_attrs = bag.intersection(&below).len();
        let reduced_sz = truecost::reduced_size(j_u, reduce_attrs, &child_reduced);
        let scan = truecost::scan_cost(j_u, &child_reduced);
        let pairs: Vec<(f64, f64)> = children.iter().map(|c| (c.cost, c.reduced_sz)).collect();
        let cost = truecost::subtree_cost(node, scan, &pairs);
        let mut nonkey_below = below;
        for &ai in &cover {
            nonkey_below.union_with(&self.cx.nonkey_vars_per_atom[ai]);
        }
        Some(TrueCostSummary {
            cost,
            reduced_sz,
            nonkey_below,
        })
    }

    fn better(&self, a: &TrueCostSummary, b: &TrueCostSummary) -> bool {
        a.cost < b.cost - 1e-9
    }
}

/// Summary of the DBMS-estimate cost function (C.2.1).
#[derive(Clone, Debug)]
pub struct EstimateCostSummary {
    /// `cost(T_u)` per Eq. (6).
    pub cost: f64,
    /// `C(J_u)`: the planner's cost of the bag query itself.
    pub self_cost: f64,
    /// Root bag (to price the parent/child semijoin).
    pub root_bag: BitSet,
}

/// The DBMS-estimate cost function (Appendix C.2.1) as an evaluator:
/// node costs are the planner's estimated total cost of the bag join
/// (Eq. (5)), subtree costs add the estimated semijoin overheads with a
/// floor of 1 (Eq. (6); the paper clamps to avoid negative costs from
/// noisy estimates).
pub struct DbmsEstimateCost<'q, 'c> {
    /// Shared per-query context.
    pub cx: &'c CostContext<'q>,
}

impl TdEvaluator for DbmsEstimateCost<'_, '_> {
    type Summary = EstimateCostSummary;

    fn eval(
        &self,
        _h: &Hypergraph,
        bag: &BitSet,
        children: &[EstimateCostSummary],
    ) -> Option<EstimateCostSummary> {
        let rels = self.cx.cover_rels(bag);
        let self_cost = if rels.len() > 1 {
            estimate::estimated_query_cost(&rels)
        } else {
            0.0
        };
        let mut cost = self_cost;
        for c in children {
            let child_rels = self.cx.cover_rels(&c.root_bag);
            let semi = estimate::estimated_semijoin_cost(&rels, &child_rels);
            let child_plain = estimate::estimated_query_cost(&child_rels);
            let parent_plain = estimate::estimated_query_cost(&rels);
            cost += c.cost + (semi - parent_plain - child_plain).max(1.0);
        }
        Some(EstimateCostSummary {
            cost,
            self_cost,
            root_bag: bag.clone(),
        })
    }

    fn better(&self, a: &EstimateCostSummary, b: &EstimateCostSummary) -> bool {
        a.cost < b.cost - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::bind;
    use crate::parser::parse_sql;
    use crate::plan::atom_relations;
    use softhw_core::constraints::concov_filter;
    use softhw_core::ctd_opt::{enumerate_all, EnumerateOptions};
    use softhw_core::soft::soft_bags;
    use softhw_engine::{Database, Table};

    fn cycle_db(rows: u64) -> Database {
        let mut db = Database::new();
        for t in ["ra", "rb", "rc", "rd"] {
            let mut tab = Table::new(t, &["x", "y"], None);
            for i in 0..rows {
                tab.push_row(&[i, (i + 1) % rows]);
            }
            db.add_table(tab);
        }
        db
    }

    fn cycle_query(db: &Database) -> ConjunctiveQuery {
        let q = parse_sql(
            "SELECT MIN(ra.x) FROM ra, rb, rc, rd \
             WHERE ra.y = rb.x AND rb.y = rc.x AND rc.y = rd.x AND rd.y = ra.x",
        )
        .unwrap();
        bind(&q, db).unwrap()
    }

    #[test]
    fn true_cost_ranks_decompositions() {
        let db = cycle_db(64);
        let cq = cycle_query(&db);
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let cx = CostContext::new(&cq, &h, &atoms, &db);
        let bags = concov_filter(&h, 2, &soft_bags(&h, 2));
        let eval = TrueCardCost { cx: &cx };
        let all = enumerate_all(&h, &bags, &eval, &EnumerateOptions::default());
        assert!(!all.is_empty());
        for w in all.windows(2) {
            assert!(w[0].1.cost <= w[1].1.cost + 1e-6);
        }
    }

    #[test]
    fn estimate_cost_is_finite_and_positive() {
        let db = cycle_db(32);
        let cq = cycle_query(&db);
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let cx = CostContext::new(&cq, &h, &atoms, &db);
        let bags = concov_filter(&h, 2, &soft_bags(&h, 2));
        let eval = DbmsEstimateCost { cx: &cx };
        let all = enumerate_all(&h, &bags, &eval, &EnumerateOptions::default());
        assert!(!all.is_empty());
        for (_, s) in &all {
            assert!(s.cost.is_finite());
            assert!(s.cost >= 0.0);
        }
    }

    #[test]
    fn caches_are_reused() {
        let db = cycle_db(16);
        let cq = cycle_query(&db);
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let cx = CostContext::new(&cq, &h, &atoms, &db);
        let bag = h.all_vertices();
        let a = cx.true_bag_size(&bag);
        let b = cx.true_bag_size(&bag);
        assert_eq!(a, b);
        assert_eq!(cx.cover(&bag), cx.cover(&bag));
    }
}
