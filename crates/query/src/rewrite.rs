//! Textual SQL rendering of a decomposition plan — the analogue of the
//! paper's rewriting pipeline (Appendix C.1), which turns a CTD into a
//! sequence of view definitions (one per bag) plus the bottom-up /
//! top-down semijoin statements of Yannakakis' algorithm. The rendering
//! is for inspection and interop; execution happens through
//! [`crate::plan::execute`].

use crate::cq::ConjunctiveQuery;
use crate::plan::DecompPlan;

/// Renders the plan as a readable SQL-ish script: `CREATE VIEW bag_i` for
/// every node, semijoin `DELETE`-style reductions for both Yannakakis
/// passes, and the final aggregate.
pub fn render_sql(cq: &ConjunctiveQuery, plan: &DecompPlan) -> String {
    let mut out = String::new();
    for (u, node) in plan.nodes.iter().enumerate() {
        let cols: Vec<String> = node
            .bag_vars
            .iter()
            .map(|&v| sanitise(&cq.var_names[v as usize]))
            .collect();
        let tables: Vec<String> = node
            .atoms
            .iter()
            .map(|&ai| format!("{} AS {}", cq.atoms[ai].table, cq.atoms[ai].alias))
            .collect();
        let mut preds: Vec<String> = Vec::new();
        // Equality predicates: every pair of columns bound to the same
        // variable within this node's atoms.
        for (i, &a) in node.atoms.iter().enumerate() {
            for &b in node.atoms.iter().skip(i + 1) {
                for (ca, &va) in cq.atoms[a].cols.iter().zip(&cq.atoms[a].vars) {
                    for (cb, &vb) in cq.atoms[b].cols.iter().zip(&cq.atoms[b].vars) {
                        if va == vb {
                            preds.push(format!(
                                "{}.{} = {}.{}",
                                cq.atoms[a].alias,
                                col_name(cq, a, *ca),
                                cq.atoms[b].alias,
                                col_name(cq, b, *cb)
                            ));
                        }
                    }
                }
            }
        }
        out.push_str(&format!(
            "CREATE VIEW bag_{u} AS SELECT DISTINCT {} FROM {}{};\n",
            cols.join(", "),
            tables.join(", "),
            if preds.is_empty() {
                String::new()
            } else {
                format!(" WHERE {}", preds.join(" AND "))
            }
        ));
    }
    // Yannakakis passes in comment form with explicit semijoin statements.
    let mut bottom_up: Vec<(usize, usize)> = Vec::new();
    let mut stack = vec![plan.root];
    let mut order = Vec::new();
    while let Some(u) = stack.pop() {
        order.push(u);
        stack.extend(plan.children[u].iter().copied());
    }
    for &u in order.iter().rev() {
        for &c in &plan.children[u] {
            bottom_up.push((u, c));
        }
    }
    out.push_str("-- bottom-up semijoin pass\n");
    for (u, c) in &bottom_up {
        out.push_str(&format!(
            "DELETE FROM bag_{u} WHERE NOT EXISTS (SELECT 1 FROM bag_{c} WHERE <shared cols match>);\n"
        ));
    }
    out.push_str("-- top-down semijoin pass\n");
    for (u, c) in bottom_up.iter().rev() {
        out.push_str(&format!(
            "DELETE FROM bag_{c} WHERE NOT EXISTS (SELECT 1 FROM bag_{u} WHERE <shared cols match>);\n"
        ));
    }
    let aggname = match cq.agg {
        crate::ast::Agg::Min => "MIN",
        crate::ast::Agg::Max => "MAX",
        crate::ast::Agg::Count => "COUNT",
    };
    // The aggregate variable lives in at least one bag after reduction.
    let host = plan
        .nodes
        .iter()
        .position(|n| n.bag_vars.contains(&cq.agg_var))
        .unwrap_or(plan.root);
    out.push_str(&format!(
        "SELECT {aggname}({}) FROM bag_{host};\n",
        sanitise(&cq.var_names[cq.agg_var as usize])
    ));
    out
}

/// Column rendering: the frontend keeps column *indices*, not names (the
/// catalog is not threaded through here), so columns render positionally.
fn col_name(_cq: &ConjunctiveQuery, _atom: usize, col: usize) -> String {
    format!("col{col}")
}

fn sanitise(name: &str) -> String {
    name.replace('.', "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::bind;
    use crate::parser::parse_sql;
    use crate::plan::build_plan;
    use softhw_engine::{Database, Table};

    #[test]
    fn renders_views_and_passes() {
        let mut db = Database::new();
        let mut r = Table::new("r", &["a", "b"], None);
        r.push_row(&[1, 2]);
        let mut s = Table::new("s", &["b", "c"], None);
        s.push_row(&[2, 3]);
        db.add_table(r);
        db.add_table(s);
        let q = parse_sql("SELECT MIN(r.a) FROM r, s WHERE r.b = s.b").unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (_, td) = softhw_core::shw::shw(&h);
        let plan = build_plan(&cq, &h, &td).unwrap();
        let sql = render_sql(&cq, &plan);
        assert!(sql.contains("CREATE VIEW bag_0"));
        assert!(sql.contains("bottom-up semijoin pass"));
        assert!(sql.contains("MIN("));
    }
}
