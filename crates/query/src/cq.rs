//! Conjunctive queries: binding a parsed SQL query against a catalog,
//! variable extraction (equivalence classes of columns under the equality
//! predicates), and query-hypergraph extraction (`H(q)` of Section 2 —
//! vertices are the variables, every atom's variable set is an edge).

use crate::ast::{Agg, CondRhs, Query};
use softhw_engine::relation::VarId;
use softhw_engine::Database;
use softhw_hypergraph::{FxHashMap, Hypergraph, HypergraphBuilder};
use std::fmt;

/// Errors raised while binding a query against a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// A `FROM` table does not exist.
    UnknownTable(String),
    /// A qualified column's alias does not exist.
    UnknownAlias(String),
    /// A column does not exist in the referenced table.
    UnknownColumn(String),
    /// An unqualified column matches no table or more than one.
    AmbiguousColumn(String),
    /// A `FROM` item references no columns at all (its atom would be a
    /// disconnected Cartesian factor of the query hypergraph).
    EmptyAtom(String),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownTable(t) => write!(f, "unknown table {t}"),
            BindError::UnknownAlias(a) => write!(f, "unknown alias {a}"),
            BindError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            BindError::AmbiguousColumn(c) => write!(f, "ambiguous unqualified column {c}"),
            BindError::EmptyAtom(a) => write!(f, "atom {a} references no columns"),
        }
    }
}

impl std::error::Error for BindError {}

/// One atom of the CQ: an aliased base table with its referenced columns
/// bound to variables.
#[derive(Clone, Debug)]
pub struct Atom {
    /// Base table name.
    pub table: String,
    /// Alias.
    pub alias: String,
    /// Referenced column indices (into the table's column list).
    pub cols: Vec<usize>,
    /// Variable of each referenced column (parallel to `cols`).
    pub vars: Vec<VarId>,
}

/// A bound conjunctive query.
#[derive(Clone, Debug)]
pub struct ConjunctiveQuery {
    /// The atoms, in `FROM` order.
    pub atoms: Vec<Atom>,
    /// Number of variables.
    pub num_vars: usize,
    /// Human-readable variable names (representative `alias.column`).
    pub var_names: Vec<String>,
    /// The aggregate.
    pub agg: Agg,
    /// The aggregated variable.
    pub agg_var: VarId,
    /// Constant selections `var = value`.
    pub filters: Vec<(VarId, u64)>,
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
            r
        } else {
            x
        }
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Binds a parsed query against a catalog (only table *schemas* are
/// needed, so a data-free database works for pure decomposition studies).
pub fn bind(q: &Query, db: &Database) -> Result<ConjunctiveQuery, BindError> {
    // alias -> table
    let mut aliases: FxHashMap<String, String> = FxHashMap::default();
    for t in &q.from {
        if db.table(&t.table).is_none() {
            return Err(BindError::UnknownTable(t.table.clone()));
        }
        aliases.insert(t.alias.clone(), t.table.clone());
    }
    // Resolve a column reference to (alias, column index).
    let resolve = |qual: &Option<String>, col: &str| -> Result<(String, usize), BindError> {
        match qual {
            Some(a) => {
                let table = aliases
                    .get(a)
                    .ok_or_else(|| BindError::UnknownAlias(a.clone()))?;
                let t = db.table(table).expect("validated above");
                let idx = t
                    .column_index(col)
                    .ok_or_else(|| BindError::UnknownColumn(format!("{a}.{col}")))?;
                Ok((a.clone(), idx))
            }
            None => {
                let mut matches: Vec<(String, usize)> = Vec::new();
                for t in &q.from {
                    let tab = db.table(&t.table).expect("validated above");
                    if let Some(idx) = tab.column_index(col) {
                        matches.push((t.alias.clone(), idx));
                    }
                }
                match matches.len() {
                    0 => Err(BindError::UnknownColumn(col.to_string())),
                    1 => Ok(matches.pop().expect("one")),
                    _ => Err(BindError::AmbiguousColumn(col.to_string())),
                }
            }
        }
    };

    // Union-find over referenced (alias, column) occurrences.
    let mut uf = UnionFind::new();
    let mut occ_ids: FxHashMap<(String, usize), usize> = FxHashMap::default();
    let mut occ_list: Vec<(String, usize)> = Vec::new();
    let mut intern = |key: (String, usize), uf: &mut UnionFind| -> usize {
        if let Some(&id) = occ_ids.get(&key) {
            return id;
        }
        let id = uf.make();
        occ_ids.insert(key.clone(), id);
        occ_list.push(key);
        id
    };
    let mut const_filters: Vec<(usize, u64)> = Vec::new();
    for c in &q.conditions {
        let l = resolve(&c.lhs.qualifier, &c.lhs.column)?;
        let lid = intern(l, &mut uf);
        match &c.rhs {
            CondRhs::Column(rc) => {
                let r = resolve(&rc.qualifier, &rc.column)?;
                let rid = intern(r, &mut uf);
                uf.union(lid, rid);
            }
            CondRhs::Const(v) => const_filters.push((lid, *v)),
        }
    }
    let agg_occ = {
        let a = resolve(&q.agg_column.qualifier, &q.agg_column.column)?;
        intern(a, &mut uf)
    };

    // Assign dense variable ids to equivalence classes.
    let mut var_of_root: FxHashMap<usize, VarId> = FxHashMap::default();
    let mut var_names: Vec<String> = Vec::new();
    let mut var_of = |occ: usize, uf: &mut UnionFind| -> VarId {
        let root = uf.find(occ);
        *var_of_root.entry(root).or_insert_with(|| {
            let (alias, col) = &occ_list[root];
            let table = &aliases[alias];
            let colname = &db.table(table).expect("validated").columns[*col];
            var_names.push(format!("{alias}.{colname}"));
            (var_names.len() - 1) as VarId
        })
    };
    // Build atoms: each alias contributes its referenced columns.
    let mut atoms = Vec::with_capacity(q.from.len());
    for t in &q.from {
        let mut cols = Vec::new();
        let mut vars = Vec::new();
        for (key, &occ) in occ_ids.iter() {
            if key.0 == t.alias {
                cols.push(key.1);
                vars.push(var_of(occ, &mut uf));
            }
        }
        // deterministic order
        let mut pairs: Vec<(usize, VarId)> = cols.into_iter().zip(vars).collect();
        pairs.sort_unstable();
        atoms.push(Atom {
            table: t.table.clone(),
            alias: t.alias.clone(),
            cols: pairs.iter().map(|p| p.0).collect(),
            vars: pairs.iter().map(|p| p.1).collect(),
        });
    }
    let agg_var = var_of(agg_occ, &mut uf);
    let filters: Vec<(VarId, u64)> = const_filters
        .into_iter()
        .map(|(occ, v)| (var_of(occ, &mut uf), v))
        .collect();
    Ok(ConjunctiveQuery {
        atoms,
        num_vars: var_names.len(),
        var_names,
        agg: q.agg,
        agg_var,
        filters,
    })
}

/// The query hypergraph of a parsed SQL query *without* a catalog:
/// variables are the equivalence classes of referenced `alias.column`
/// occurrences under the query's equality conditions, and every `FROM`
/// item contributes its referenced columns' classes as one edge named by
/// its alias. This is the ast-format entry point a decomposition service
/// needs — a request carries only the query text, no database exists to
/// [`bind`] against, and for decomposition purposes the columns a query
/// never references are irrelevant anyway (they appear in no join).
///
/// Without a catalog an unqualified column can only be attributed when
/// the query has a single `FROM` item ([`BindError::AmbiguousColumn`]
/// otherwise), and a `FROM` item referencing no columns is rejected as
/// [`BindError::EmptyAtom`] (it would be a disconnected Cartesian
/// factor, which [`ConjunctiveQuery::hypergraph`] rejects too).
pub fn ast_hypergraph(q: &Query) -> Result<Hypergraph, BindError> {
    let mut aliases: FxHashMap<String, ()> = FxHashMap::default();
    for t in &q.from {
        aliases.insert(t.alias.clone(), ());
    }
    // Resolve a reference to its (alias, column-name) occurrence key.
    let resolve = |qual: &Option<String>, col: &str| -> Result<(String, String), BindError> {
        match qual {
            Some(a) if aliases.contains_key(a) => Ok((a.clone(), col.to_string())),
            Some(a) => Err(BindError::UnknownAlias(a.clone())),
            None if q.from.len() == 1 => Ok((q.from[0].alias.clone(), col.to_string())),
            None => Err(BindError::AmbiguousColumn(col.to_string())),
        }
    };
    let mut uf = UnionFind::new();
    let mut occ_ids: FxHashMap<(String, String), usize> = FxHashMap::default();
    let mut occ_list: Vec<(String, String)> = Vec::new();
    let mut intern = |key: (String, String), uf: &mut UnionFind| -> usize {
        if let Some(&id) = occ_ids.get(&key) {
            return id;
        }
        let id = uf.make();
        occ_ids.insert(key.clone(), id);
        occ_list.push(key);
        id
    };
    for c in &q.conditions {
        let l = resolve(&c.lhs.qualifier, &c.lhs.column)?;
        let lid = intern(l, &mut uf);
        if let CondRhs::Column(rc) = &c.rhs {
            let r = resolve(&rc.qualifier, &rc.column)?;
            let rid = intern(r, &mut uf);
            uf.union(lid, rid);
        }
    }
    let a = resolve(&q.agg_column.qualifier, &q.agg_column.column)?;
    intern(a, &mut uf);

    // One vertex per occurrence class, named after its root occurrence;
    // one edge per FROM item over its referenced classes.
    let mut b = HypergraphBuilder::new();
    let mut vertex_of_root: FxHashMap<usize, usize> = FxHashMap::default();
    let mut edges: Vec<(String, Vec<usize>)> = q
        .from
        .iter()
        .map(|t| (t.alias.clone(), Vec::new()))
        .collect();
    // Deterministic vertex numbering: walk occurrences in intern order.
    for occ in 0..occ_list.len() {
        let root = uf.find(occ);
        let v = *vertex_of_root.entry(root).or_insert_with(|| {
            let (alias, col) = &occ_list[root];
            b.vertex(&format!("{alias}.{col}"))
        });
        let (alias, _) = &occ_list[occ];
        if let Some((_, verts)) = edges.iter_mut().find(|(a2, _)| a2 == alias) {
            if !verts.contains(&v) {
                verts.push(v);
            }
        }
    }
    for (alias, verts) in edges {
        if verts.is_empty() {
            return Err(BindError::EmptyAtom(alias));
        }
        b.edge_ids(&alias, &verts);
    }
    Ok(b.build())
}

impl ConjunctiveQuery {
    /// The query hypergraph `H(q)`: vertex `i` is variable `i`, and every
    /// atom's variable set is an edge named after the atom's alias.
    /// Atoms with no referenced columns (no join/filter/aggregate use)
    /// would be disconnected Cartesian factors; they do not occur in the
    /// benchmark queries and are rejected here.
    pub fn hypergraph(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for name in &self.var_names {
            b.vertex(name);
        }
        for atom in &self.atoms {
            assert!(
                !atom.vars.is_empty(),
                "atom {} references no columns",
                atom.alias
            );
            let ids: Vec<usize> = atom.vars.iter().map(|&v| v as usize).collect();
            b.edge_ids(&atom.alias, &ids);
        }
        b.build()
    }

    /// Deduplicated distinct variables of atom `i` (an atom may bind the
    /// same variable through several columns).
    pub fn atom_vars(&self, i: usize) -> Vec<VarId> {
        let mut vs = self.atoms[i].vars.clone();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use softhw_engine::Table;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(Table::new("r", &["a", "b"], Some("a")));
        db.add_table(Table::new("s", &["b", "c"], None));
        db.add_table(Table::new("t", &["c", "d"], None));
        db
    }

    #[test]
    fn ast_hypergraph_matches_bound_hypergraph_shape() {
        // Catalog-free binding sees exactly the referenced columns, which
        // is also all `bind` puts into atoms — the hypergraphs agree up
        // to vertex naming.
        let q = parse_sql("SELECT MIN(r.a) FROM r, s, t WHERE r.b = s.b AND s.c = t.c").unwrap();
        let ast_h = ast_hypergraph(&q).unwrap();
        let bound_h = bind(&q, &db()).unwrap().hypergraph();
        assert_eq!(ast_h.num_edges(), bound_h.num_edges());
        assert_eq!(ast_h.num_vertices(), bound_h.num_vertices());
        // A cyclic triangle query decomposes identically either way.
        let tri =
            parse_sql("SELECT MIN(x.a) FROM r AS x, s AS y, t AS z WHERE x.a = y.b AND y.c = z.c AND z.d = x.b")
                .unwrap();
        let h = ast_hypergraph(&tri).unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn ast_hypergraph_rejects_what_it_cannot_attribute() {
        // Unqualified column over two tables: no catalog to disambiguate.
        let q = parse_sql("SELECT MIN(b) FROM r, s WHERE r.a = s.c").unwrap();
        assert!(matches!(
            ast_hypergraph(&q),
            Err(BindError::AmbiguousColumn(_))
        ));
        // Single table: unqualified columns attribute to it.
        let q = parse_sql("SELECT MIN(a) FROM r WHERE a = b").unwrap();
        let h = ast_hypergraph(&q).unwrap();
        assert_eq!((h.num_edges(), h.num_vertices()), (1, 1));
        // An atom referencing no columns is a Cartesian factor.
        let q = parse_sql("SELECT MIN(r.a) FROM r, s WHERE r.a = r.b").unwrap();
        assert!(matches!(ast_hypergraph(&q), Err(BindError::EmptyAtom(_))));
    }

    #[test]
    fn bind_path_query() {
        let q = parse_sql("SELECT MIN(r.a) FROM r, s, t WHERE r.b = s.b AND s.c = t.c").unwrap();
        let cq = bind(&q, &db()).unwrap();
        assert_eq!(cq.atoms.len(), 3);
        // vars: r.a (agg), r.b=s.b, s.c=t.c → 3 variables
        assert_eq!(cq.num_vars, 3);
        let h = cq.hypergraph();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn self_joins_get_distinct_atoms() {
        let q = parse_sql("SELECT MIN(x.a) FROM r AS x, r AS y WHERE x.b = y.b").unwrap();
        let cq = bind(&q, &db()).unwrap();
        assert_eq!(cq.atoms.len(), 2);
        assert_eq!(cq.num_vars, 2); // x.a, x.b=y.b
    }

    #[test]
    fn unqualified_resolution() {
        let q = parse_sql("SELECT MIN(a) FROM r, t WHERE a = d").unwrap();
        let cq = bind(&q, &db()).unwrap();
        assert_eq!(cq.num_vars, 1); // a = d merged into one class
    }

    #[test]
    fn ambiguity_detected() {
        // `b` exists in r and s.
        let q = parse_sql("SELECT MIN(b) FROM r, s").unwrap();
        assert!(matches!(
            bind(&q, &db()),
            Err(BindError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn unknown_names_detected() {
        let q = parse_sql("SELECT MIN(r.a) FROM nope").unwrap();
        assert!(matches!(bind(&q, &db()), Err(BindError::UnknownTable(_))));
        let q = parse_sql("SELECT MIN(z.a) FROM r").unwrap();
        assert!(matches!(bind(&q, &db()), Err(BindError::UnknownAlias(_))));
        let q = parse_sql("SELECT MIN(r.zzz) FROM r").unwrap();
        assert!(matches!(bind(&q, &db()), Err(BindError::UnknownColumn(_))));
    }

    #[test]
    fn filters_bound_to_vars() {
        let q = parse_sql("SELECT MIN(r.a) FROM r WHERE r.b = 42").unwrap();
        let cq = bind(&q, &db()).unwrap();
        assert_eq!(cq.filters.len(), 1);
        assert_eq!(cq.filters[0].1, 42);
    }

    #[test]
    fn four_cycle_hypergraph_shape() {
        // Example 3's 4-cycle as SQL.
        let mut db = Database::new();
        for t in ["rr", "ss", "tt", "uu"] {
            db.add_table(Table::new(t, &["x", "y"], None));
        }
        let q = parse_sql(
            "SELECT MIN(rr.x) FROM rr, ss, tt, uu \
             WHERE rr.y = ss.x AND ss.y = tt.x AND tt.y = uu.x AND uu.y = rr.x",
        )
        .unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(softhw_core::hw::hw(&h).0, 2);
    }
}
