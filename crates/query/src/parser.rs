//! Lexer and recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT agg '(' qualcol ')' FROM from_list [WHERE conj]
//! agg       := MIN | MAX | COUNT
//! from_list := from_item (',' from_item)*
//! from_item := table [JOIN table ON conj]*
//! table     := ident [AS ident | ident]
//! conj      := cond (AND cond)*
//! cond      := qualcol '=' (qualcol | number)
//! qualcol   := ident ['.' ident]
//! ```

use crate::ast::{Agg, CondRhs, Condition, QualifiedColumn, Query, TableRef};
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SqlError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    Sym(char),
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, SqlError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '-' && i + 1 < b.len() && b[i + 1] == b'-' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: u64 = src[start..i].parse().map_err(|_| SqlError {
                offset: start,
                message: "number too large".into(),
            })?;
            out.push((start, Tok::Number(n)));
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((start, Tok::Ident(src[start..i].to_string())));
        } else if "(),.=*".contains(c) {
            out.push((i, Tok::Sym(c)));
            i += 1;
        } else {
            return Err(SqlError {
                offset: i,
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(out)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), SqlError> {
        match self.bump() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(SqlError {
                offset: self.offset(),
                message: format!("expected {c:?}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(SqlError {
                offset: self.offset(),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }
}

const KEYWORDS: [&str; 9] = [
    "select", "from", "where", "and", "as", "join", "on", "min", "max",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) || s.eq_ignore_ascii_case("count")
}

/// Parses the SQL subset into a [`Query`].
pub fn parse_sql(src: &str) -> Result<Query, SqlError> {
    let mut lx = Lexer {
        toks: lex(src)?,
        pos: 0,
    };
    lx.expect_keyword("select")?;
    let agg = if lx.keyword("min") {
        Agg::Min
    } else if lx.keyword("max") {
        Agg::Max
    } else if lx.keyword("count") {
        Agg::Count
    } else {
        return Err(lx.err("expected MIN, MAX or COUNT"));
    };
    lx.expect_sym('(')?;
    let agg_column = parse_qualcol(&mut lx)?;
    lx.expect_sym(')')?;
    lx.expect_keyword("from")?;
    let mut from = Vec::new();
    let mut conditions = Vec::new();
    loop {
        parse_from_item(&mut lx, &mut from, &mut conditions)?;
        if let Some(Tok::Sym(',')) = lx.peek() {
            lx.bump();
            continue;
        }
        break;
    }
    if lx.keyword("where") {
        loop {
            conditions.push(parse_cond(&mut lx)?);
            if !lx.keyword("and") {
                break;
            }
        }
    }
    if lx.peek().is_some() {
        return Err(lx.err("trailing tokens after query"));
    }
    Ok(Query {
        agg,
        agg_column,
        from,
        conditions,
    })
}

fn parse_table(lx: &mut Lexer) -> Result<TableRef, SqlError> {
    let table = lx.ident()?;
    let alias = if lx.keyword("as") {
        lx.ident()?
    } else if let Some(Tok::Ident(s)) = lx.peek() {
        if !is_keyword(s) {
            lx.ident()?
        } else {
            table.clone()
        }
    } else {
        table.clone()
    };
    Ok(TableRef { table, alias })
}

fn parse_from_item(
    lx: &mut Lexer,
    from: &mut Vec<TableRef>,
    conditions: &mut Vec<Condition>,
) -> Result<(), SqlError> {
    from.push(parse_table(lx)?);
    while lx.keyword("join") {
        from.push(parse_table(lx)?);
        lx.expect_keyword("on")?;
        loop {
            conditions.push(parse_cond(lx)?);
            // AND continues the ON conjunction only while the next tokens
            // form another condition; a following JOIN ends it.
            if lx.keyword("and") {
                continue;
            }
            break;
        }
    }
    Ok(())
}

fn parse_qualcol(lx: &mut Lexer) -> Result<QualifiedColumn, SqlError> {
    let first = lx.ident()?;
    if let Some(Tok::Sym('.')) = lx.peek() {
        lx.bump();
        let column = lx.ident()?;
        Ok(QualifiedColumn {
            qualifier: Some(first),
            column,
        })
    } else {
        Ok(QualifiedColumn {
            qualifier: None,
            column: first,
        })
    }
}

fn parse_cond(lx: &mut Lexer) -> Result<Condition, SqlError> {
    let lhs = parse_qualcol(lx)?;
    lx.expect_sym('=')?;
    let rhs = match lx.peek() {
        Some(Tok::Number(_)) => {
            let Some(Tok::Number(n)) = lx.bump() else {
                unreachable!()
            };
            CondRhs::Const(n)
        }
        _ => CondRhs::Column(parse_qualcol(lx)?),
    };
    Ok(Condition { lhs, rhs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let q = parse_sql("SELECT MIN(r.a) FROM r, s WHERE r.a = s.b AND s.c = 5").unwrap();
        assert_eq!(q.agg, Agg::Min);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.from[0].alias, "r");
    }

    #[test]
    fn parse_aliases() {
        let q = parse_sql("SELECT MAX(x.a) FROM t AS x, t y WHERE x.a = y.a").unwrap();
        assert_eq!(q.from[0].alias, "x");
        assert_eq!(q.from[1].alias, "y");
        assert_eq!(q.from[1].table, "t");
    }

    #[test]
    fn parse_join_on_chain() {
        let q = parse_sql(
            "SELECT MIN(a.x) FROM t AS a JOIN t AS b ON b.y = a.y JOIN t AS c \
             ON c.y = a.y AND c.z = b.z",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.conditions.len(), 3);
    }

    #[test]
    fn parse_unqualified_columns() {
        let q = parse_sql("SELECT MIN(ws_sk) FROM web_sales WHERE ws_sk = c_sk").unwrap();
        assert_eq!(q.agg_column.qualifier, None);
        assert!(matches!(q.conditions[0].rhs, CondRhs::Column(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_sql("SELECT FROM r").is_err());
        assert!(parse_sql("SELECT MIN(a) FROM").is_err());
        assert!(parse_sql("SELECT MIN(a) FROM r WHERE a = ").is_err());
        assert!(parse_sql("SELECT MIN(a) FROM r extra garbage !").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_sql("SELECT MIN(r.a) -- agg\nFROM r -- table\nWHERE r.a = 1").unwrap();
        assert_eq!(q.conditions.len(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse_sql("select min(r.a) from r").is_ok());
        assert!(parse_sql("SeLeCt MiN(r.a) FrOm r").is_ok());
    }
}
