//! The rule catalog. Each rule enforces a contract an earlier PR
//! established by convention:
//!
//! | rule | contract |
//! |------|----------|
//! | `panic-free-service` | PR 4: the service request path degrades via `DecompError`, never panics — no `unwrap`/`expect`/panic macros/slice-indexing in `crates/service/src/{state,wire,server}.rs` |
//! | `budget-tick` | PR 7: unbounded loops in budgeted solver paths tick their [`Budget`] so deadlines and cancellation land |
//! | `safety-comment` | every `unsafe` needs an adjacent `// SAFETY:` stating the precondition |
//! | `no-blocking-in-event-loop` | PR 8: the `poll(2)` event loop never blocks — no sleeps, locks, or blocking channel reads in the readiness path |
//! | `no-deprecated-internal` | PR 8: workspace code calls `DecompCache::solve`, not the deprecated per-shape wrappers |
//! | `cross-artifact-sync` | the verb list, dispatch arms, README grammar, STATS row names, and METRICS metric names stay in lockstep across code, tests, docs, and CI |
//!
//! Rules are syntactic, not type-aware: a hand-rolled lexer cannot
//! prove an index in-bounds or resolve a method receiver. Sites that
//! are provably fine carry a `// lint:allow(rule): why` waiver instead
//! — the waiver *is* the machine-checked SAFETY-comment equivalent for
//! these rules, and the analyzer budget (`--max-waivers`) keeps the
//! escape hatch from becoming the norm.

use crate::lex::{Tok, TokKind};
use crate::model::{SourceFile, Workspace};
use std::collections::BTreeSet;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Root-relative path of the offending file (or artifact).
    pub rel: String,
    /// 1-based line, 0 when the finding is about a whole artifact.
    pub line: u32,
    pub msg: String,
}

pub const PANIC_FREE_SERVICE: &str = "panic-free-service";
pub const BUDGET_TICK: &str = "budget-tick";
pub const SAFETY_COMMENT: &str = "safety-comment";
pub const NO_BLOCKING_IN_EVENT_LOOP: &str = "no-blocking-in-event-loop";
pub const NO_DEPRECATED_INTERNAL: &str = "no-deprecated-internal";
pub const CROSS_ARTIFACT_SYNC: &str = "cross-artifact-sync";
pub const WAIVER_JUSTIFICATION: &str = "waiver-justification";

/// All per-site rule names a waiver may name.
pub const RULES: &[&str] = &[
    PANIC_FREE_SERVICE,
    BUDGET_TICK,
    SAFETY_COMMENT,
    NO_BLOCKING_IN_EVENT_LOOP,
    NO_DEPRECATED_INTERNAL,
    CROSS_ARTIFACT_SYNC,
];

/// Files whose request path must be panic-free (service hardening, PR 4).
const SERVICE_FILES: &[&str] = &[
    "crates/service/src/state.rs",
    "crates/service/src/wire.rs",
    "crates/service/src/server.rs",
];

/// Files whose budgeted functions must keep ticking (cancellation, PR 7).
const BUDGET_FILES: &[&str] = &[
    "crates/core/src/ctd.rs",
    "crates/core/src/soft.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/reduce_solve.rs",
];

/// The readiness-path functions of the `poll(2)` event loop (PR 8).
/// The blocking fallback `run_event_loop` on non-unix targets is out of
/// scope by design: it *is* the blocking path.
const EVENT_LOOP_FNS: &[&str] = &["event_loop", "on_readable", "submit"];

/// `DecompCache` methods deprecated by the PR 8 `SolveSpec` front door.
const DEPRECATED_METHODS: &[&str] = &[
    "shw",
    "try_shw",
    "try_shw_with",
    "try_shw_budgeted",
    "shw_leq",
    "shw_leq_budgeted",
    "hw",
    "try_hw",
    "try_hw_budgeted",
    "hw_leq",
    "hw_leq_budgeted",
];

/// The one file allowed to call the deprecated wrappers: their own
/// definitions chain to each other while they live out deprecation.
const DEPRECATED_HOME: &str = "crates/core/src/cache.rs";

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Reserved words that can directly precede `[` without forming an
/// index expression (`&mut [0u8; 64]`, `for x in [..]`, `return [..]`).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// `panic-free-service`: on the three service files, non-test code must
/// not contain `.unwrap()`, `.expect(…)`, panic-family macros, or slice
/// indexing — the request path degrades via `DecompError`.
pub fn panic_free_service(f: &SourceFile, out: &mut Vec<Finding>) {
    if !SERVICE_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = f.toks();
    for i in 0..toks.len() {
        let t = &toks[i];
        if f.is_test_line(t.line) {
            continue;
        }
        let prev_dot = i > 0 && is_punct(&toks[i - 1], ".");
        if prev_dot
            && is_ident(t, "unwrap")
            && i + 2 < toks.len()
            && is_punct(&toks[i + 1], "(")
            && is_punct(&toks[i + 2], ")")
        {
            out.push(Finding {
                rule: PANIC_FREE_SERVICE,
                rel: f.rel.clone(),
                line: t.line,
                msg: "`.unwrap()` on the service path — return an ERR response via DecompError"
                    .into(),
            });
        }
        if prev_dot && is_ident(t, "expect") && i + 1 < toks.len() && is_punct(&toks[i + 1], "(") {
            out.push(Finding {
                rule: PANIC_FREE_SERVICE,
                rel: f.rel.clone(),
                line: t.line,
                msg: "`.expect(…)` on the service path — return an ERR response via DecompError"
                    .into(),
            });
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic"
                    | "unreachable"
                    | "todo"
                    | "unimplemented"
                    | "assert"
                    | "assert_eq"
                    | "assert_ne"
                    | "debug_assert"
                    | "debug_assert_eq"
                    | "debug_assert_ne"
            )
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "!")
        {
            out.push(Finding {
                rule: PANIC_FREE_SERVICE,
                rel: f.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}!` on the service path — the worker must answer, not unwind",
                    t.text
                ),
            });
        }
        // Index expression: `expr[…]` — `[` directly after an
        // identifier (that is not a keyword), `)`, or `]`.
        if is_punct(t, "[") && i > 0 {
            let p = &toks[i - 1];
            let indexable = (p.kind == TokKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
                || is_punct(p, ")")
                || is_punct(p, "]");
            // `expr[..]` — the full-range slice never panics.
            let full_range = i + 3 < toks.len()
                && is_punct(&toks[i + 1], ".")
                && is_punct(&toks[i + 2], ".")
                && is_punct(&toks[i + 3], "]");
            if indexable && !full_range {
                out.push(Finding {
                    rule: PANIC_FREE_SERVICE,
                    rel: f.rel.clone(),
                    line: t.line,
                    msg: "slice indexing can panic on the service path — use .get()/.get_mut()"
                        .into(),
                });
            }
        }
    }
}

/// `safety-comment`: every `unsafe` token needs a comment containing
/// `SAFETY:` ending within the three lines above it (or on its line).
pub fn safety_comment(f: &SourceFile, out: &mut Vec<Finding>) {
    // Index comment coverage by line so adjacency means "the contiguous
    // comment block ending just above the `unsafe` token" — a SAFETY:
    // note several lines up still counts as long as the comment run is
    // unbroken down to the token.
    let mut comment_lines = std::collections::HashSet::new();
    let mut safety_lines = std::collections::HashSet::new();
    for c in &f.lexed.comments {
        for l in c.line..=c.end_line {
            comment_lines.insert(l);
            if c.text.contains("SAFETY:") {
                safety_lines.insert(l);
            }
        }
    }
    for t in f.toks() {
        if !is_ident(t, "unsafe") || f.is_test_line(t.line) {
            continue;
        }
        let mut documented = safety_lines.contains(&t.line);
        let mut l = t.line.saturating_sub(1);
        while !documented && l > 0 && comment_lines.contains(&l) {
            documented = safety_lines.contains(&l);
            l -= 1;
        }
        if !documented {
            out.push(Finding {
                rule: SAFETY_COMMENT,
                rel: f.rel.clone(),
                line: t.line,
                msg: "`unsafe` without an adjacent `// SAFETY:` comment stating the precondition"
                    .into(),
            });
        }
    }
}

/// A function item located in the token stream.
struct FnItem {
    name: String,
    /// Token range of the signature (after the name, up to the body).
    sig: (usize, usize),
    /// Token range of the body, *excluding* the outer braces.
    body: (usize, usize),
    line: u32,
}

/// Finds every `fn` item (including nested ones) and its body range.
/// Brace matching is exact because the lexer already removed comments,
/// strings, and char literals.
fn parse_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let sig_start = i + 2;
        // The signature runs to the body `{` at paren depth 0, or to a
        // `;` (trait/extern declaration, no body).
        let mut j = sig_start;
        let mut paren = 0usize;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if is_punct(t, "(") {
                paren += 1;
            } else if is_punct(t, ")") {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && is_punct(t, ";") {
                break;
            } else if paren == 0 && is_punct(t, "{") {
                // Body: find the matching close brace.
                let mut depth = 1usize;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    if is_punct(&toks[k], "{") {
                        depth += 1;
                    } else if is_punct(&toks[k], "}") {
                        depth -= 1;
                    }
                    k += 1;
                }
                body = Some((j + 1, k.saturating_sub(1)));
                break;
            }
            j += 1;
        }
        if let Some(body) = body {
            out.push(FnItem {
                name: name_tok.text.clone(),
                sig: (sig_start, j),
                body,
                line: toks[i].line,
            });
        }
        // Continue scanning *inside* the item too: nested fns are their
        // own scopes for loop attribution.
        i += 2;
    }
    out
}

/// The innermost function whose body contains token index `idx`.
fn innermost_fn(fns: &[FnItem], idx: usize) -> Option<&FnItem> {
    fns.iter()
        .filter(|f| f.body.0 <= idx && idx < f.body.1)
        .min_by_key(|f| f.body.1 - f.body.0)
}

/// `budget-tick`: in the four budgeted solver files, every function
/// that takes a [`Budget`] must actually consume it, and every
/// *unbounded* loop (`while` / `loop`) in such a function must touch
/// the budget inside its body — a tick, a check, or handing `budget`
/// to a callee. Bounded `for` loops are out of scope: the worklist and
/// enumeration paths that can run away are all condition-driven.
pub fn budget_tick(f: &SourceFile, out: &mut Vec<Finding>) {
    if !BUDGET_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let toks = f.toks();
    let fns = parse_fns(toks);
    let has_budget = |item: &FnItem| {
        toks[item.sig.0..item.sig.1]
            .iter()
            .any(|t| is_ident(t, "Budget"))
    };
    let touches_budget = |range: (usize, usize)| {
        toks[range.0..range.1]
            .iter()
            .any(|t| is_ident(t, "budget") || is_ident(t, "tick") || is_ident(t, "check"))
    };
    for item in &fns {
        if f.is_test_line(item.line) || !has_budget(item) {
            continue;
        }
        if !touches_budget(item.body) {
            out.push(Finding {
                rule: BUDGET_TICK,
                rel: f.rel.clone(),
                line: item.line,
                msg: format!(
                    "fn {} takes a Budget but never consumes it — deadlines cannot land here",
                    item.name
                ),
            });
        }
    }
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let is_loop_kw = is_ident(t, "while") || is_ident(t, "loop");
        if !is_loop_kw || f.is_test_line(t.line) {
            i += 1;
            continue;
        }
        let Some(owner) = innermost_fn(&fns, i) else {
            i += 1;
            continue;
        };
        if !has_budget(owner) {
            i += 1;
            continue;
        }
        // Body: first `{` at paren depth 0 after the keyword.
        let mut j = i + 1;
        let mut paren = 0usize;
        while j < toks.len() {
            if is_punct(&toks[j], "(") {
                paren += 1;
            } else if is_punct(&toks[j], ")") {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && is_punct(&toks[j], "{") {
                break;
            }
            j += 1;
        }
        let mut depth = 1usize;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            if is_punct(&toks[k], "{") {
                depth += 1;
            } else if is_punct(&toks[k], "}") {
                depth -= 1;
            }
            k += 1;
        }
        if !touches_budget((j, k)) {
            out.push(Finding {
                rule: BUDGET_TICK,
                rel: f.rel.clone(),
                line: t.line,
                msg: format!(
                    "unbounded `{}` in budgeted fn {} never ticks/checks the budget",
                    t.text, owner.name
                ),
            });
        }
        i += 1;
    }
}

/// `no-blocking-in-event-loop`: the readiness-path functions of the
/// `poll(2)` event loop must not sleep, take locks, or block on
/// channels/joins — a stalled loop stalls every connection.
pub fn no_blocking_in_event_loop(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel != "crates/service/src/server.rs" {
        return;
    }
    let toks = f.toks();
    let fns = parse_fns(toks);
    for item in fns.iter().filter(|i| EVENT_LOOP_FNS.contains(&i.name.as_str())) {
        if f.is_test_line(item.line) {
            continue;
        }
        for i in item.body.0..item.body.1 {
            let t = &toks[i];
            let prev_dot = i > 0 && is_punct(&toks[i - 1], ".");
            let blocking = match t.text.as_str() {
                "sleep" | "read_to_end" | "read_to_string" | "park" => t.kind == TokKind::Ident,
                "lock" | "join" | "wait" => prev_dot && i + 1 < toks.len() && is_punct(&toks[i + 1], "("),
                "recv" => {
                    // `.recv()` blocks; `.try_recv()` / `.recv_timeout()`
                    // are distinct identifiers and stay legal.
                    prev_dot
                        && i + 2 < toks.len()
                        && is_punct(&toks[i + 1], "(")
                        && is_punct(&toks[i + 2], ")")
                }
                _ => false,
            };
            if blocking {
                out.push(Finding {
                    rule: NO_BLOCKING_IN_EVENT_LOOP,
                    rel: f.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "`{}` inside event-loop fn {} — the readiness path must never block",
                        t.text, item.name
                    ),
                });
            }
        }
    }
}

/// `no-deprecated-internal`: non-test workspace code must not call the
/// deprecated per-shape `DecompCache` wrappers as methods — the
/// `SolveSpec` → `solve` front door is the one entry point. Detection
/// is method-call syntax (`.shw(`): free functions with the same names
/// (`reduce_solve::shw`) are different, non-deprecated APIs.
pub fn no_deprecated_internal(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel == DEPRECATED_HOME || f.rel.starts_with("crates/lint/") {
        return;
    }
    let toks = f.toks();
    for i in 1..toks.len() {
        let t = &toks[i];
        if f.is_test_line(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident
            && DEPRECATED_METHODS.contains(&t.text.as_str())
            && is_punct(&toks[i - 1], ".")
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "(")
        {
            out.push(Finding {
                rule: NO_DEPRECATED_INTERNAL,
                rel: f.rel.clone(),
                line: t.line,
                msg: format!(
                    "deprecated `DecompCache::{}` — go through SolveSpec / DecompCache::solve",
                    t.text
                ),
            });
        }
    }
}

/// `cross-artifact-sync`: the protocol and STATS surfaces must agree
/// everywhere they are written down. Sub-checks (each skipped when its
/// artifact is absent, so fixture trees can exercise them one by one):
///
/// 1. `PROTOCOL_VERBS` (wire.rs) ≡ the verbs `RequestHeader::parse`
///    actually accepts (`Some("VERB")` arms).
/// 2. Every `RequestClass` variant is dispatched in state.rs.
/// 3. The README banner line (`protocol … verbs …`) ≡ `PROTOCOL_VERBS`,
///    and every verb appears quoted in the README wire grammar.
/// 4. Every STATS row the service tests mask (`fn mask_*`) and every
///    row CI parses (`sed -n 's/^row = //p'`) is a row state.rs emits —
///    rows live in `stats_response` or, since the metric registry
///    became the single source for the shared counters, in
///    `metric_registry` (whose `softhw_*` literals are metric names,
///    not rows).
/// 5. Every `softhw_*` metric name the registry or the METRICS
///    exposition emits appears backticked in the README metrics table.
pub fn cross_artifact_sync(ws: &Workspace, out: &mut Vec<Finding>) {
    let wire = ws.file("crates/service/src/wire.rs");
    let state = ws.file("crates/service/src/state.rs");

    // -- the verb universe, from the PROTOCOL_VERBS const.
    let verbs: Option<BTreeSet<String>> = wire.and_then(|f| {
        let toks = f.toks();
        (0..toks.len()).find_map(|i| {
            if is_ident(&toks[i], "PROTOCOL_VERBS") {
                toks[i..toks.len().min(i + 8)]
                    .iter()
                    .find(|t| t.kind == TokKind::Str)
                    .map(|t| t.text.split(',').map(|s| s.trim().to_string()).collect())
            } else {
                None
            }
        })
    });

    if let (Some(wire), Some(verbs)) = (wire, &verbs) {
        // 1. Verbs accepted by the header parser: `Some("VERB")`.
        let toks = wire.toks();
        let mut parsed = BTreeSet::new();
        for i in 0..toks.len().saturating_sub(3) {
            if is_ident(&toks[i], "Some")
                && is_punct(&toks[i + 1], "(")
                && toks[i + 2].kind == TokKind::Str
                && is_punct(&toks[i + 3], ")")
            {
                let v = &toks[i + 2].text;
                // Verbs are ≥ 2 chars: single uppercase letters are the
                // frame line tags (`A`, `N`), not protocol verbs.
                if v.len() >= 2 && v.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                    parsed.insert(v.clone());
                }
            }
        }
        for v in verbs.difference(&parsed) {
            out.push(Finding {
                rule: CROSS_ARTIFACT_SYNC,
                rel: wire.rel.clone(),
                line: 0,
                msg: format!("verb {v} advertised by PROTOCOL_VERBS but not parsed by RequestHeader::parse"),
            });
        }
        for v in parsed.difference(verbs) {
            out.push(Finding {
                rule: CROSS_ARTIFACT_SYNC,
                rel: wire.rel.clone(),
                line: 0,
                msg: format!("verb {v} parsed by RequestHeader::parse but missing from PROTOCOL_VERBS"),
            });
        }
    }

    // 2. Every RequestClass variant has a dispatch arm in state.rs.
    if let (Some(wire), Some(state)) = (wire, state) {
        let toks = wire.toks();
        let mut variants = Vec::new();
        for i in 0..toks.len().saturating_sub(2) {
            if is_ident(&toks[i], "enum") && is_ident(&toks[i + 1], "RequestClass") {
                let mut j = i + 2;
                while j < toks.len() && !is_punct(&toks[j], "{") {
                    j += 1;
                }
                let mut depth = 1usize;
                let mut expect_variant = true;
                j += 1;
                while j < toks.len() && depth > 0 {
                    let t = &toks[j];
                    if is_punct(t, "{") || is_punct(t, "(") {
                        depth += 1;
                    } else if is_punct(t, "}") || is_punct(t, ")") {
                        depth -= 1;
                    } else if depth == 1 && is_punct(t, ",") {
                        expect_variant = true;
                    } else if depth == 1 && t.kind == TokKind::Ident && expect_variant {
                        variants.push(t.text.clone());
                        expect_variant = false;
                    }
                    j += 1;
                }
                break;
            }
        }
        let st = state.toks();
        for v in variants {
            let dispatched = (0..st.len().saturating_sub(3)).any(|i| {
                is_ident(&st[i], "RequestClass")
                    && is_punct(&st[i + 1], ":")
                    && is_punct(&st[i + 2], ":")
                    && is_ident(&st[i + 3], &v)
            });
            if !dispatched {
                out.push(Finding {
                    rule: CROSS_ARTIFACT_SYNC,
                    rel: state.rel.clone(),
                    line: 0,
                    msg: format!("RequestClass::{v} is parsed by the wire but never dispatched in state.rs"),
                });
            }
        }
    }

    // 3. README banner + grammar agree with the verb list.
    if let (Some(readme), Some(verbs)) = (ws.readme.as_deref(), &verbs) {
        let banner: Option<BTreeSet<String>> = readme.lines().find_map(|l| {
            let l = l.trim();
            if l.starts_with("protocol ") && l.contains(" verbs ") {
                l.rsplit(" verbs ")
                    .next()
                    .map(|csv| csv.split(',').map(|s| s.trim().to_string()).collect())
            } else {
                None
            }
        });
        match banner {
            None => out.push(Finding {
                rule: CROSS_ARTIFACT_SYNC,
                rel: "README.md".into(),
                line: 0,
                msg: "README never shows the server banner (`protocol … verbs …`)".into(),
            }),
            Some(b) => {
                for v in verbs.difference(&b) {
                    out.push(Finding {
                        rule: CROSS_ARTIFACT_SYNC,
                        rel: "README.md".into(),
                        line: 0,
                        msg: format!("verb {v} missing from the README banner line"),
                    });
                }
                for v in b.difference(verbs) {
                    out.push(Finding {
                        rule: CROSS_ARTIFACT_SYNC,
                        rel: "README.md".into(),
                        line: 0,
                        msg: format!("README banner advertises {v}, which PROTOCOL_VERBS does not"),
                    });
                }
            }
        }
        for v in verbs {
            if !readme.contains(&format!("\"{v}\"")) {
                out.push(Finding {
                    rule: CROSS_ARTIFACT_SYNC,
                    rel: "README.md".into(),
                    line: 0,
                    msg: format!("verb {v} never appears quoted in the README wire grammar"),
                });
            }
        }
    }

    // 4. STATS rows: tests/CI must only reference rows state.rs emits.
    if let Some(state) = state {
        let toks = state.toks();
        let fns = parse_fns(toks);

        // 5. METRICS names: everything the registry or the exposition
        //    emits must be documented (backticked) in the README
        //    metrics table. Skipped when the tree has no metrics
        //    surface at all.
        let metric_names: BTreeSet<String> = fns
            .iter()
            .filter(|f| f.name == "metric_registry" || f.name == "metrics_response")
            .flat_map(|f| toks[f.body.0..f.body.1].iter())
            .filter(|t| t.kind == TokKind::Str)
            .flat_map(|t| metric_names_in(&t.text))
            .collect();
        if let Some(readme) = ws.readme.as_deref() {
            for name in &metric_names {
                if !readme.contains(&format!("`{name}`")) {
                    out.push(Finding {
                        rule: CROSS_ARTIFACT_SYNC,
                        rel: "README.md".into(),
                        line: 0,
                        msg: format!(
                            "metric {name} emitted by METRICS but missing from the README metrics table"
                        ),
                    });
                }
            }
        }

        let emitted: BTreeSet<String> = fns
            .iter()
            .filter(|f| f.name == "stats_response" || f.name == "metric_registry")
            .flat_map(|f| toks[f.body.0..f.body.1].iter())
            .filter(|t| {
                t.kind == TokKind::Str && is_row_key(&t.text) && !t.text.starts_with("softhw_")
            })
            .map(|t| t.text.clone())
            .collect();
        if emitted.is_empty() {
            return;
        }
        let matches_emitted = |key: &str| {
            if let Some(prefix) = key.strip_suffix('_') {
                emitted.iter().any(|e| e.starts_with(prefix))
            } else {
                emitted.contains(key)
            }
        };
        for f in ws.files.iter().filter(|f| f.rel.starts_with("crates/service/tests/")) {
            let toks = f.toks();
            for item in parse_fns(toks).iter().filter(|i| i.name.starts_with("mask")) {
                for t in &toks[item.body.0..item.body.1] {
                    if t.kind == TokKind::Str && is_row_key(&t.text) && !matches_emitted(&t.text) {
                        out.push(Finding {
                            rule: CROSS_ARTIFACT_SYNC,
                            rel: f.rel.clone(),
                            line: t.line,
                            msg: format!(
                                "test masks STATS row {:?}, which stats_response never emits",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
        if let Some(ci) = ws.ci.as_deref() {
            for (i, line) in ci.lines().enumerate() {
                let mut rest = line;
                while let Some(pos) = rest.find("sed -n 's/^") {
                    rest = &rest[pos + "sed -n 's/^".len()..];
                    if let Some(end) = rest.find(" = //p'") {
                        let key = &rest[..end];
                        if is_row_key(key) && !matches_emitted(key) {
                            out.push(Finding {
                                rule: CROSS_ARTIFACT_SYNC,
                                rel: ".github/workflows".into(),
                                line: (i + 1) as u32,
                                msg: format!(
                                    "CI parses STATS row {key:?}, which stats_response never emits"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Every maximal `softhw_*` identifier run inside a string literal:
/// the metric names in `# TYPE …` comments, bare registry names, and
/// labelled `format!` templates (`softhw_x{{…}} {v}`) all start at a
/// `softhw_` word boundary and run over `[a-z0-9_]`.
fn metric_names_in(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let ident = |c: u8| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_';
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = s.get(i..).and_then(|rest| rest.find("softhw_")) {
        let start = i + pos;
        // Mid-identifier hit (`not_softhw_x`): not a name boundary.
        if start > 0 && bytes.get(start - 1).copied().is_some_and(ident) {
            i = start + 1;
            continue;
        }
        let mut end = start;
        while bytes.get(end).copied().is_some_and(ident) {
            end += 1;
        }
        if let Some(name) = s.get(start..end) {
            out.push(name.to_string());
        }
        i = end;
    }
    out
}

/// A STATS row key: lowercase snake_case with at least one underscore
/// or a known bare word — in practice every literal inside
/// `stats_response` that looks like an identifier.
fn is_row_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}
