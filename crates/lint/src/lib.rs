//! `softhw-lint` — the workspace invariant analyzer.
//!
//! The workspace carries contracts that `rustc` cannot see: the service
//! request path must degrade instead of panicking, budgeted solver
//! loops must keep ticking so deadlines land, the `poll(2)` event loop
//! must never block, `unsafe` must justify itself, deprecated cache
//! wrappers must not creep back into production code, and the protocol
//! surface (verbs, STATS rows) must read the same in code, tests, docs,
//! and CI. This crate makes those contracts *checkable*: a hand-rolled
//! lexer (std only — the build image has no registry access), a rule
//! catalog over the token streams, and per-site
//! `// lint:allow(rule): why` waivers for the residue a syntactic
//! analyzer cannot prove.
//!
//! Run it as `cargo run -p softhw-lint -- --workspace`; CI runs the
//! same command and fails on any unwaived finding. The rule catalog and
//! waiver syntax are documented in the README's "Static analysis"
//! section and in [`rules`].

pub mod lex;
pub mod model;
pub mod rules;

use model::Workspace;
use rules::Finding;
use std::path::Path;

/// Everything one analyzer run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by a waiver — these fail the run.
    pub findings: Vec<Finding>,
    /// Violations silenced by a `lint:allow` waiver.
    pub waived: Vec<Finding>,
    /// Every waiver in the tree: `(file, rule, line, justification)`.
    pub waivers: Vec<(String, String, u32, String)>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every rule over the workspace rooted at `root` and applies the
/// waivers. A waiver covers findings of its rule on its own line and
/// the following line; a waiver without a justification is itself a
/// finding (`waiver-justification`).
pub fn analyze(root: &Path) -> std::io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(analyze_workspace(&ws))
}

/// [`analyze`] over an already-loaded workspace (tests build synthetic
/// trees and call this directly).
pub fn analyze_workspace(ws: &Workspace) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for f in &ws.files {
        rules::panic_free_service(f, &mut raw);
        rules::budget_tick(f, &mut raw);
        rules::safety_comment(f, &mut raw);
        rules::no_blocking_in_event_loop(f, &mut raw);
        rules::no_deprecated_internal(f, &mut raw);
    }
    rules::cross_artifact_sync(ws, &mut raw);

    let mut report = Report::default();
    for f in &ws.files {
        for w in &f.waivers {
            report
                .waivers
                .push((f.rel.clone(), w.rule.clone(), w.line, w.justification.clone()));
            if w.justification.is_empty() {
                report.findings.push(Finding {
                    rule: rules::WAIVER_JUSTIFICATION,
                    rel: f.rel.clone(),
                    line: w.line,
                    msg: format!(
                        "waiver for `{}` has no justification — write `// lint:allow({}): why`",
                        w.rule, w.rule
                    ),
                });
            }
            if !rules::RULES.contains(&w.rule.as_str()) {
                report.findings.push(Finding {
                    rule: rules::WAIVER_JUSTIFICATION,
                    rel: f.rel.clone(),
                    line: w.line,
                    msg: format!("waiver names unknown rule `{}`", w.rule),
                });
            }
        }
    }
    for finding in raw {
        let covered = ws
            .files
            .iter()
            .find(|f| f.rel == finding.rel)
            .map(|f| {
                f.waivers.iter().any(|w| {
                    w.rule == finding.rule
                        && finding.line >= w.line
                        && finding.line <= w.line + 1
                })
            })
            .unwrap_or(false);
        if covered {
            report.waived.push(finding);
        } else {
            report.findings.push(finding);
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    report
}
