//! Workspace model for the analyzer: loaded source files with their
//! token streams, test-region maps (rules that guard *production*
//! invariants skip test code), and per-site waivers.
//!
//! Waiver syntax, recognized in any comment:
//!
//! ```text
//! // lint:allow(rule-name): one-line justification
//! ```
//!
//! A waiver covers findings of that rule on the comment's own line and
//! on the next line — so it works both as a trailing comment on the
//! offending line and as a comment immediately above it. A waiver with
//! an empty justification is itself a finding: the acceptance contract
//! is that every waiver says *why*.

use crate::lex::{lex, Lexed, Tok, TokKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One `lint:allow` site.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Line the waiver's comment ends on; it covers this line and the
    /// next one.
    pub line: u32,
    /// Text after `):` — why the site is exempt.
    pub justification: String,
}

/// A lexed source file plus the derived region maps the rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path with forward slashes (`crates/core/src/ctd.rs`).
    pub rel: String,
    pub text: String,
    pub lexed: Lexed,
    /// Whole file is test code (lives under a `tests/` directory).
    pub test_file: bool,
    /// 1-based line → inside a `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    pub fn from_source(rel: String, text: String) -> SourceFile {
        let lexed = lex(&text);
        let test_file =
            rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/examples/");
        let n_lines = text.lines().count() + 2;
        let mut test_lines = vec![false; n_lines + 1];
        mark_cfg_test_regions(&lexed.toks, &mut test_lines);
        let waivers = parse_waivers(&lexed);
        SourceFile {
            rel,
            text,
            lexed,
            test_file,
            test_lines,
            waivers,
        }
    }

    /// True when `line` is test-only code: the whole file is a test, or
    /// the line sits inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_file || self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }
}

/// Marks every line of every `#[cfg(test)]`-gated item. The scan is
/// syntactic: after a `#[cfg(test)]` (or `#[cfg(all(test, …))]`)
/// attribute, the next item — to its matching closing brace, or to a
/// top-level `;` for brace-less items — is test territory.
fn mark_cfg_test_regions(toks: &[Tok], test_lines: &mut [bool]) {
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_attr = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks[i + 1].kind == TokKind::Punct
            && toks[i + 1].text == "[";
        if !is_attr {
            i += 1;
            continue;
        }
        // Scan the attribute to its closing `]`, noting whether it is a
        // cfg(...) containing the bare ident `test`.
        let mut j = i + 2;
        let mut depth = 1usize; // the `[`
        let mut is_cfg = false;
        let mut has_test = false;
        if j < toks.len() && toks[j].kind == TokKind::Ident && toks[j].text == "cfg" {
            is_cfg = true;
        }
        while j < toks.len() && depth > 0 {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") | (TokKind::Punct, "(") => depth += 1,
                (TokKind::Punct, "]") | (TokKind::Punct, ")") => depth -= 1,
                (TokKind::Ident, "test") => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(is_cfg && has_test) {
            i = j;
            continue;
        }
        // j is the first token of the gated item (possibly further
        // attributes — skip those too).
        while j + 1 < toks.len()
            && toks[j].kind == TokKind::Punct
            && toks[j].text == "#"
            && toks[j + 1].text == "["
        {
            let mut d = 0usize;
            j += 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let start_line = toks.get(j).map(|t| t.line).unwrap_or(toks[i].line);
        // Find the item's end: matching `}` of its first brace, or a
        // `;` before any brace opens.
        let mut d = 0usize;
        let mut end_line = start_line;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => d += 1,
                "}" => {
                    d = d.saturating_sub(1);
                    if d == 0 {
                        end_line = toks[j].line;
                        j += 1;
                        break;
                    }
                }
                ";" if d == 0 => {
                    end_line = toks[j].line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for l in toks[i].line..=end_line {
            if let Some(slot) = test_lines.get_mut(l as usize) {
                *slot = true;
            }
        }
        i = j;
    }
}

/// Extracts `lint:allow(rule)[: justification]` waivers from comments.
fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Doc comments never carry waivers — they *describe* the
        // syntax (this crate's own docs would otherwise waive
        // themselves).
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            let justification = tail
                .strip_prefix(':')
                .map(|t| t.trim_end_matches("*/").trim().to_string())
                .unwrap_or_default();
            out.push(Waiver {
                rule,
                line: c.end_line,
                justification,
            });
            rest = tail;
        }
    }
    out
}

/// The analyzer's view of the repository: all lexed Rust sources plus
/// the non-Rust artifacts the cross-artifact rule reads.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// `README.md` at the root, when present.
    pub readme: Option<String>,
    /// Concatenated CI workflow files, when present.
    pub ci: Option<String>,
}

impl Workspace {
    /// Loads every `.rs` file under `crates/`, `src/`, `tests/`, and
    /// `examples/` (skipping `target/` and the analyzer's own fixture
    /// corpus), plus `README.md` and the CI workflows.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        for top in ["crates", "src", "tests", "examples"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(root, &dir, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let readme = fs::read_to_string(root.join("README.md")).ok();
        let mut ci = String::new();
        let wf = root.join(".github/workflows");
        if wf.is_dir() {
            let mut paths: Vec<PathBuf> = fs::read_dir(&wf)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.extension()
                        .map(|e| e == "yml" || e == "yaml")
                        .unwrap_or(false)
                })
                .collect();
            paths.sort();
            for p in paths {
                ci.push_str(&fs::read_to_string(&p)?);
                ci.push('\n');
            }
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            readme,
            ci: if ci.is_empty() { None } else { Some(ci) },
        })
    }

    /// The file with exactly this root-relative path, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` holds the analyzer's own known-bad corpus —
            // deliberate violations that must not count against the
            // real tree.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&path)?;
            out.push(SourceFile::from_source(rel, text));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked_and_production_code_is_not() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let f = SourceFile::from_source("crates/x/src/a.rs".into(), src.into());
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn waivers_parse_rule_and_justification() {
        let src = "// lint:allow(panic-free-service): index is bounded by len above\n\
                   let x = v[0];\n\
                   // lint:allow(budget-tick)\n";
        let f = SourceFile::from_source("crates/x/src/a.rs".into(), src.into());
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rule, "panic-free-service");
        assert_eq!(f.waivers[0].line, 1);
        assert!(f.waivers[0].justification.contains("bounded"));
        assert_eq!(f.waivers[1].rule, "budget-tick");
        assert!(f.waivers[1].justification.is_empty());
    }

    #[test]
    fn files_under_tests_dirs_are_test_files() {
        let f = SourceFile::from_source("crates/x/tests/props.rs".into(), "fn a() {}".into());
        assert!(f.test_file);
        assert!(f.is_test_line(1));
    }
}
