//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! softhw-lint --workspace [--root <path>] [--max-waivers <n>] [--list-waivers]
//! ```
//!
//! Prints one `file:line rule message` line per unwaived finding and
//! exits nonzero when any exist (CI gates on this). `--list-waivers`
//! prints the waiver inventory with justifications; `--max-waivers`
//! additionally fails the run when the tree carries more waivers than
//! the budget — the escape hatch must not become the norm.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut list_waivers = false;
    let mut max_waivers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // The default and only mode; accepted for CI readability.
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--max-waivers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_waivers = Some(n),
                None => return usage("--max-waivers needs a number"),
            },
            "--list-waivers" => list_waivers = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let report = match softhw_lint::analyze(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("softhw-lint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{}:{} [{}] {}", f.rel, f.line, f.rule, f.msg);
    }
    if list_waivers || !report.waivers.is_empty() {
        eprintln!("waivers: {}", report.waivers.len());
        for (rel, rule, line, why) in &report.waivers {
            eprintln!("  {rel}:{line} [{rule}] {why}");
        }
    }
    let over_budget = max_waivers.is_some_and(|cap| report.waivers.len() > cap);
    if over_budget {
        eprintln!(
            "softhw-lint: {} waivers exceed the budget of {}",
            report.waivers.len(),
            max_waivers.unwrap_or(0)
        );
    }
    if report.clean() && !over_budget {
        eprintln!(
            "softhw-lint: clean ({} waived site(s), {} waiver(s))",
            report.waived.len(),
            report.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("softhw-lint: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("softhw-lint: {err}");
    }
    eprintln!(
        "usage: softhw-lint --workspace [--root path] [--max-waivers n] [--list-waivers]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
