//! A minimal Rust lexer — just enough token structure for the invariant
//! rules in [`crate::rules`]. Hand-rolled because the build image has no
//! registry access (same constraint that produced `crates/compat`): no
//! `syn`, no `proc-macro2`, std only.
//!
//! The lexer understands the parts of Rust surface syntax that would
//! otherwise produce false findings: line and (nested) block comments,
//! string / raw-string / byte-string literals, char literals vs
//! lifetimes, and numeric literals. Everything else becomes `Ident`,
//! `Literal`, or single-char `Punct` tokens carrying their 1-based line
//! number, so rules can pattern-match token windows without regexes
//! tripping over `"a string containing .unwrap()"`.

/// What a token is. Coarse on purpose: the rules only ever distinguish
/// identifiers, string literals, and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`while`, `unsafe`, `budget`, …).
    Ident,
    /// String literal of any flavor; `text` holds the *contents*
    /// (quotes and raw-string hashes stripped, escapes left as-is).
    Str,
    /// Char literal or lifetime (`'a'`, `'static`) — rules ignore these.
    CharLike,
    /// Numeric literal.
    Num,
    /// Single punctuation character (`.`, `[`, `{`, `!`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its position — kept out of the
/// token stream so rules scan clean syntax, but preserved because two
/// rules read them: `safety-comment` (`// SAFETY:`) and the waiver
/// parser (`// lint:allow(rule): why`).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for `//`).
    pub end_line: u32,
}

/// Lexed file: tokens plus the comment sidecar.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated constructs (string/comment at EOF) are
/// tolerated: the remainder is swallowed into the open token so the
/// analyzer degrades to fewer tokens rather than panicking — the lint
/// binary must hold itself to the panic-free contract it enforces.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();
    let bump = |c: char, line: &mut u32| {
        if c == '\n' {
            *line += 1;
        }
    };
    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump(c, &mut line);
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            let start_line = line;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: start_line,
                end_line: start_line,
            });
            continue;
        }
        // Block comment, nesting tracked.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump(b[i], &mut line);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
                end_line: line,
            });
            continue;
        }
        // Raw strings r"…", r#"…"#, and the br variants. If the prefix
        // does not pan out (`r` was just the start of an identifier),
        // fall through to the ident path below.
        if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let mut j = i + 1;
            if c == 'b' {
                j += 1; // skip the `r` of `br`
            }
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                let start_line = line;
                j += 1; // past the opening quote
                let content_start = j;
                let mut end = n; // content end (exclusive); n if unterminated
                let mut after = n; // index to resume lexing at
                while j < n {
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < n && b[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            end = j;
                            after = k;
                            break;
                        }
                    }
                    j += 1;
                }
                for &ch in &b[content_start..end] {
                    bump(ch, &mut line);
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[content_start..end].iter().collect(),
                    line: start_line,
                });
                i = after;
                continue;
            }
        }
        // Byte string b"..." — same body rules as a plain string.
        // Plain string "..."
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let content_start = j;
            while j < n {
                match b[j] {
                    '\\' => {
                        j += 2;
                    }
                    '"' => break,
                    ch => {
                        bump(ch, &mut line);
                        j += 1;
                    }
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[content_start..j.min(n)].iter().collect(),
                line: start_line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Char literal vs lifetime. After `'`: if the next char starts
        // an identifier and the char after the identifier run is not a
        // closing `'`, it is a lifetime (`'a`, `'static`); otherwise a
        // char literal (`'a'`, `'\n'`, `'<'`).
        if c == '\'' {
            let start_line = line;
            let mut j = i + 1;
            if j < n && is_ident_start(b[j]) {
                let mut k = j;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                if k < n && b[k] == '\'' && k == j + 1 {
                    // 'x' — single-char literal.
                    out.toks.push(Tok {
                        kind: TokKind::CharLike,
                        text: b[i..=k].iter().collect(),
                        line: start_line,
                    });
                    i = k + 1;
                } else {
                    // Lifetime.
                    out.toks.push(Tok {
                        kind: TokKind::CharLike,
                        text: b[i..k].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                }
                continue;
            }
            // Escaped or punctuation char literal: scan to closing '.
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => break,
                    ch => {
                        bump(ch, &mut line);
                        j += 1;
                    }
                }
            }
            out.toks.push(Tok {
                kind: TokKind::CharLike,
                text: b[i..(j + 1).min(n)].iter().collect(),
                line: start_line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number (coarse: digits plus the usual continuation chars).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (b[i].is_ascii_alphanumeric() || b[i] == '_' || b[i] == '.')
                && !(b[i] == '.' && i + 1 < n && b[i + 1] == '.')
            {
                // Stop `0..n` range syntax from being eaten as `0.`.
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: one punct char per token.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let t = kinds(r#"let s = "x.unwrap()"; y.unwrap()"#);
        let unwraps = t
            .iter()
            .filter(|(k, s)| *k == TokKind::Ident && s == "unwrap")
            .count();
        assert_eq!(unwraps, 1);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "str"));
    }

    #[test]
    fn comments_are_kept_in_the_sidecar_with_lines() {
        let l = lex("// SAFETY: fine\nunsafe { }\n");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("SAFETY"));
        assert_eq!(l.toks[0].text, "unsafe");
        assert_eq!(l.toks[0].line, 2);
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let l = lex("/* a /* b */ c */ r#\"quote \" inside\"# ident");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.toks.len(), 2);
        assert_eq!(l.toks[0].kind, TokKind::Str);
        assert!(l.toks[0].text.contains("quote"));
        assert_eq!(l.toks[1].text, "ident");
    }

    #[test]
    fn range_syntax_survives_number_lexing() {
        let t = kinds("for i in 0..10 {}");
        assert!(t.iter().any(|(_, s)| s == "0"));
        assert!(t.iter().any(|(_, s)| s == "10"));
        assert_eq!(t.iter().filter(|(_, s)| s == ".").count(), 2);
    }
}
