//! The fixture corpus: a known-bad tree where every rule must fire,
//! and a known-good tree (including one waivered site) that must come
//! back clean. Both trees mirror the real workspace layout
//! (`crates/…/src`, `crates/…/tests`, `README.md`,
//! `.github/workflows/`) so [`softhw_lint::analyze`] runs on them
//! unchanged; the real analyzer skips any directory named `fixtures`,
//! so the deliberate violations never count against the actual tree.

use softhw_lint::rules;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_tree_trips_every_rule() {
    let report = softhw_lint::analyze(&fixture("bad")).expect("fixture tree loads");
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in [
        rules::PANIC_FREE_SERVICE,
        rules::BUDGET_TICK,
        rules::SAFETY_COMMENT,
        rules::NO_BLOCKING_IN_EVENT_LOOP,
        rules::NO_DEPRECATED_INTERNAL,
        rules::CROSS_ARTIFACT_SYNC,
        rules::WAIVER_JUSTIFICATION,
    ] {
        assert!(
            fired.contains(rule),
            "rule {rule} did not fire on the known-bad tree; fired: {fired:?}"
        );
    }
}

#[test]
fn bad_tree_panic_sites_are_attributed() {
    let report = softhw_lint::analyze(&fixture("bad")).expect("fixture tree loads");
    let in_state: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == rules::PANIC_FREE_SERVICE)
        .collect();
    // v[0], .unwrap(), .expect(…), panic! — and nothing from the
    // #[cfg(test)] module, which indexes and unwraps legally.
    assert_eq!(in_state.len(), 4, "findings: {in_state:#?}");
    assert!(in_state.iter().all(|f| f.rel == "crates/service/src/state.rs"));
}

#[test]
fn bad_tree_cross_artifact_names_every_drift() {
    let report = softhw_lint::analyze(&fixture("bad")).expect("fixture tree loads");
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == rules::CROSS_ARTIFACT_SYNC)
        .map(|f| f.msg.as_str())
        .collect();
    for needle in [
        "verb BOGUS advertised by PROTOCOL_VERBS but not parsed",
        "verb EXTRA parsed by RequestHeader::parse but missing",
        "RequestClass::Orphan is parsed by the wire but never dispatched",
        "verb STATS missing from the README banner line",
        "verb BOGUS missing from the README banner line",
        "verb STATS never appears quoted in the README wire grammar",
        "test masks STATS row \"ghost_row\"",
        "CI parses STATS row \"ghost_row\"",
        "metric softhw_phantom_metric_total emitted by METRICS but missing from the README metrics table",
    ] {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "missing drift {needle:?}; got: {msgs:#?}"
        );
    }
}

#[test]
fn bad_tree_flags_bad_waivers() {
    let report = softhw_lint::analyze(&fixture("bad")).expect("fixture tree loads");
    let waiver_findings: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == rules::WAIVER_JUSTIFICATION)
        .map(|f| f.msg.as_str())
        .collect();
    assert!(
        waiver_findings.iter().any(|m| m.contains("no justification")),
        "unjustified waiver not flagged: {waiver_findings:#?}"
    );
    assert!(
        waiver_findings.iter().any(|m| m.contains("unknown rule `made-up-rule`")),
        "unknown-rule waiver not flagged: {waiver_findings:#?}"
    );
}

#[test]
fn good_tree_is_clean_and_respects_the_waiver() {
    let report = softhw_lint::analyze(&fixture("good")).expect("fixture tree loads");
    assert!(
        report.clean(),
        "known-good tree has findings: {:#?}",
        report.findings
    );
    // The waivered index in server.rs was found, then silenced.
    assert_eq!(report.waived.len(), 1, "waived: {:#?}", report.waived);
    assert_eq!(report.waived[0].rule, rules::PANIC_FREE_SERVICE);
    assert_eq!(report.waivers.len(), 1);
    assert!(
        !report.waivers[0].3.is_empty(),
        "the good tree's one waiver must carry a justification"
    );
}
