//! Fixture: the budgeted loop ticks its budget every iteration.

pub fn drain(n_max: usize, budget: &Budget) -> Result<usize, DecompError> {
    let mut n = 0;
    while n < n_max {
        budget.tick(1)?;
        n += 1;
    }
    Ok(n)
}
