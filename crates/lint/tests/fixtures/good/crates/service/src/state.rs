//! Fixture: every class dispatched, no panic paths, rows emitted for
//! everything the tests and CI read.

use super::wire::RequestClass;

pub fn dispatch(c: RequestClass) -> u32 {
    match c {
        RequestClass::Ping => 1,
        RequestClass::Stats => 2,
    }
}

pub fn stats_response() -> String {
    let mut s = String::new();
    s.push_str("requests_total");
    s.push_str("uptime_ms");
    s
}

pub fn metric_registry() -> Vec<(&'static str, &'static str)> {
    vec![("softhw_requests_total", "requests_total")]
}

pub fn metrics_response() -> String {
    let mut s = String::new();
    s.push_str("# TYPE softhw_requests_total counter\n");
    s.push_str("softhw_uptime_ms 0\n");
    s
}

pub fn safe(v: &[u32]) -> u32 {
    let first = v.first().copied().unwrap_or(0);
    let second = v.get(1).copied().unwrap_or(0);
    first + second
}
