//! Fixture: documented `unsafe`, a non-blocking event loop, and one
//! waivered index proving waivers silence findings.

pub struct Server;

impl Server {
    pub fn event_loop(&mut self) {
        let _ready = self.poll_once();
        // SAFETY: the fd table outlives the call and every entry was
        // initialized at registration; poll_raw only reads it.
        let _n = unsafe { poll_raw(self.fds.as_mut_ptr(), self.fds.len()) };
        let _first = self.out[0]; // lint:allow(panic-free-service): fixture site proving waivers silence findings
    }
}
