//! Fixture: verbs, parser, and class enum in lockstep.

pub const PROTOCOL_VERBS: &str = "PING,STATS";

pub fn parse(verb: &str) -> Option<&'static str> {
    match verb {
        "PING" => Some("PING"),
        "STATS" => Some("STATS"),
        _ => None,
    }
}

pub enum RequestClass {
    Ping,
    Stats,
}
