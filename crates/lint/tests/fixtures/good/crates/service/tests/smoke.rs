//! Fixture: the test only masks rows stats_response actually emits.

fn mask_rows(s: &str) -> String {
    s.replace("requests_total", "N").replace("uptime_", "N")
}

#[test]
fn masked() {
    assert_eq!(mask_rows("requests_total"), "N");
}
