//! Fixture: a deprecated wrapper call, an unjustified waiver, and a
//! waiver naming a rule that does not exist.

pub fn shw_cached(cache: &mut DecompCache, h: &Hypergraph) -> (usize, Td) {
    cache.shw(h)
}

// lint:allow(budget-tick)
pub const UNRELATED_A: u32 = 1;

// lint:allow(made-up-rule): the rule name is wrong on purpose
pub const UNRELATED_B: u32 = 2;
