//! Fixture: a budgeted fn that never consumes its budget, whose
//! unbounded loop never ticks.

pub fn drain(n_max: usize, budget: &Budget) -> usize {
    let mut n = 0;
    while n < n_max {
        n += 1;
    }
    n
}
