//! Fixture: the test masks a STATS row stats_response never emits.

fn mask_rows(s: &str) -> String {
    s.replace("requests_total", "N").replace("ghost_row", "N")
}

#[test]
fn masked() {
    assert_eq!(mask_rows("ghost_row"), "N");
}
