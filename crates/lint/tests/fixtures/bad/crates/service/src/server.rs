//! Fixture: an undocumented `unsafe` and a blocking event loop.

pub struct Server;

impl Server {
    pub fn event_loop(&mut self) {
        let _guard = self.state.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _n = unsafe { poll_raw() };
    }
}
