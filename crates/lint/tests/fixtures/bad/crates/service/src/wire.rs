//! Fixture: the verb const advertises BOGUS (never parsed) and the
//! parser accepts EXTRA (never advertised); RequestClass has an Orphan
//! variant state.rs never dispatches.

pub const PROTOCOL_VERBS: &str = "PING,STATS,BOGUS";

pub fn parse(verb: &str) -> Option<&'static str> {
    match verb {
        "PING" => Some("PING"),
        "STATS" => Some("STATS"),
        "EXTRA" => Some("EXTRA"),
        _ => None,
    }
}

pub enum RequestClass {
    Ping,
    Stats,
    Orphan,
}
