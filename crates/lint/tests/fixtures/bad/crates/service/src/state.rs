//! Fixture: panic paths on the service files, plus a dispatch that
//! skips RequestClass::Orphan.

use super::wire::RequestClass;

pub fn dispatch(c: RequestClass) -> u32 {
    match c {
        RequestClass::Ping => 1,
        RequestClass::Stats => 2,
    }
}

pub fn stats_response() -> String {
    let mut s = String::new();
    s.push_str("requests_total");
    s.push_str("uptime_ms");
    s
}

pub fn metric_registry() -> Vec<(&'static str, &'static str)> {
    // The metric name is absent from README.md: sub-check 5 must fire.
    vec![("softhw_phantom_metric_total", "requests_total")]
}

pub fn broken(v: &[u32]) -> u32 {
    let first = v[0];
    let second = v.get(1).unwrap();
    let third = v.get(2).expect("fixture");
    if first > second {
        panic!("fixture");
    }
    first + second + third
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_legal() {
        let v = vec![1u32];
        assert_eq!(v[0], 1);
        v.get(0).unwrap();
    }
}
