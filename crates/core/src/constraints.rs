//! The constraint and preference library of Section 6: connected covers
//! (`ConCov`), shallow cyclicity (`ShallowCyc_d`), partition clustering
//! (`PartClust`), cost-based preferences (the opt-k-decomp-style node +
//! edge cost model), and combinators.
//!
//! All of these implement [`TdEvaluator`], the paper's
//! "tractable constraint + preference-complete toptd" interface.

use crate::cover;
use crate::ctd_opt::TdEvaluator;
use softhw_hypergraph::{BitSet, Hypergraph};

/// The trivial evaluator: no constraint, no preference. With it,
/// Algorithm 2 degenerates to Algorithm 1.
pub struct Trivial;

impl TdEvaluator for Trivial {
    type Summary = ();

    fn eval(&self, _h: &Hypergraph, _bag: &BitSet, _children: &[()]) -> Option<()> {
        Some(())
    }

    fn better(&self, _a: &(), _b: &()) -> bool {
        false
    }
}

/// Summary for additive cost evaluators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostSummary {
    /// Accumulated cost of the partial decomposition.
    pub cost: f64,
}

/// Additive per-bag cost: `cost(T_u) = f(B(u)) + Σ cost(T_c)`.
/// A strongly monotone toptd in the paper's sense.
pub struct BagCost<F> {
    f: F,
}

impl<F: Fn(&BitSet) -> f64> BagCost<F> {
    /// Creates the evaluator from a per-bag cost function.
    pub fn new(f: F) -> Self {
        BagCost { f }
    }
}

impl<F: Fn(&BitSet) -> f64> TdEvaluator for BagCost<F> {
    type Summary = CostSummary;

    fn eval(&self, _h: &Hypergraph, bag: &BitSet, children: &[CostSummary]) -> Option<CostSummary> {
        let cost = (self.f)(bag) + children.iter().map(|c| c.cost).sum::<f64>();
        Some(CostSummary { cost })
    }

    fn better(&self, a: &CostSummary, b: &CostSummary) -> bool {
        a.cost < b.cost - 1e-12
    }
}

/// Summary for [`JoinCost`]: cost plus the root bag of the partial
/// decomposition (needed to price the (semi-)join between a node and its
/// parent, as in opt-k-decomp / Scarcello et al. \[30\]).
#[derive(Clone, Debug)]
pub struct JoinCostSummary {
    /// Accumulated cost.
    pub cost: f64,
    /// Bag at the root of the summarised partial decomposition.
    pub root_bag: BitSet,
}

/// The weighted-HD cost model: each node pays `node(bag)` and each tree
/// edge pays `edge(parent_bag, child_bag)`; costs add up over the tree.
pub struct JoinCost<N, E> {
    node: N,
    edge: E,
}

impl<N, E> JoinCost<N, E>
where
    N: Fn(&BitSet) -> f64,
    E: Fn(&BitSet, &BitSet) -> f64,
{
    /// Creates the evaluator from a node cost and a parent/child edge cost.
    pub fn new(node: N, edge: E) -> Self {
        JoinCost { node, edge }
    }
}

impl<N, E> TdEvaluator for JoinCost<N, E>
where
    N: Fn(&BitSet) -> f64,
    E: Fn(&BitSet, &BitSet) -> f64,
{
    type Summary = JoinCostSummary;

    fn eval(
        &self,
        _h: &Hypergraph,
        bag: &BitSet,
        children: &[JoinCostSummary],
    ) -> Option<JoinCostSummary> {
        let mut cost = (self.node)(bag);
        for c in children {
            cost += c.cost + (self.edge)(bag, &c.root_bag);
        }
        Some(JoinCostSummary {
            cost,
            root_bag: bag.clone(),
        })
    }

    fn better(&self, a: &JoinCostSummary, b: &JoinCostSummary) -> bool {
        a.cost < b.cost - 1e-12
    }
}

/// Filters a candidate bag set down to the bags admitting a *connected*
/// edge cover with at most `k` edges — the `ConCov` constraint of
/// Section 6 applied as a pre-filter (this is how the paper's prototype
/// counts `ConCov-Soft_{H,k}` in Table 1).
pub fn concov_filter(h: &Hypergraph, k: usize, bags: &[BitSet]) -> Vec<BitSet> {
    bags.iter()
        .filter(|b| cover::find_connected_cover(h, b, k).is_some())
        .cloned()
        .collect()
}

/// Filters candidate bags by the *prototype's* ConCov notion: a bag
/// counts iff one of its generating covers (union exactly the bag) is
/// connected. Reproduces the `ConCov-Soft_{H,k}` column of Table 1.
pub fn concov_exact_filter(h: &Hypergraph, k: usize, bags: &[BitSet]) -> Vec<BitSet> {
    bags.iter()
        .filter(|b| cover::find_exact_connected_cover(h, b, k).is_some())
        .cloned()
        .collect()
}

/// `ConCov` as an evaluator (per-bag constraint, no preference).
pub struct ConCov {
    /// Width bound for the connected cover.
    pub k: usize,
}

impl TdEvaluator for ConCov {
    type Summary = ();

    fn eval(&self, h: &Hypergraph, bag: &BitSet, _children: &[()]) -> Option<()> {
        cover::find_connected_cover(h, bag, self.k).map(|_| ())
    }

    fn better(&self, _a: &(), _b: &()) -> bool {
        false
    }
}

/// `ShallowCyc_d` (Section 6): the bag of every node at depth greater
/// than `d` must be coverable by a single edge. The summary is the depth
/// of the deepest "cyclic" (not single-edge-coverable) node measured from
/// the subtree root, `-1` when the whole subtree is single-edge; the
/// preference orders partial decompositions by this depth, which is the
/// preference-complete toptd of Example 5.
pub struct ShallowCyc {
    /// The cyclicity-depth bound `d`.
    pub d: i64,
}

impl TdEvaluator for ShallowCyc {
    type Summary = i64;

    fn eval(&self, h: &Hypergraph, bag: &BitSet, children: &[i64]) -> Option<i64> {
        let self_cyclic = !(0..h.num_edges()).any(|e| bag.is_subset(h.edge(e)));
        let mut deepest: i64 = if self_cyclic { 0 } else { -1 };
        for &c in children {
            if c >= 0 {
                deepest = deepest.max(c + 1);
            }
        }
        if deepest > self.d {
            None
        } else {
            Some(deepest)
        }
    }

    fn better(&self, a: &i64, b: &i64) -> bool {
        a < b
    }
}

/// Summary for [`PartClust`]: the feasible `(root partition, closed
/// partitions)` options of a partial decomposition. A partition is
/// *closed* once used strictly below a node of another partition — it may
/// never appear again higher up (the induced-subtree condition).
#[derive(Clone, Debug)]
pub struct PartClustSummary {
    /// Feasible options `(partition of the root node, closed partitions)`.
    pub options: Vec<(usize, BitSet)>,
}

/// `PartClust` (Section 6): every bag must be coverable by edges of a
/// single partition, and each partition's nodes must form one connected
/// subtree. `labels[e]` is the partition of edge `e`.
///
/// Child options are combined with the preference noted in the paper
/// ("prefer the root to share a child's partition over introducing a new
/// one"): for each candidate root partition the evaluator picks, per
/// child, a same-partition option when available and otherwise the option
/// with the fewest closed partitions. This is exact for two partitions
/// (the experimental setting) and a sound under-approximation beyond.
pub struct PartClust {
    /// Width bound for the per-partition covers.
    pub k: usize,
    /// Edge id → partition id.
    pub labels: Vec<usize>,
    /// Number of partitions.
    pub num_partitions: usize,
}

impl PartClust {
    fn partition_cover(&self, h: &Hypergraph, bag: &BitSet, p: usize) -> bool {
        // Cover search restricted to edges of partition p.
        fn rec(
            h: &Hypergraph,
            labels: &[usize],
            p: usize,
            uncovered: &BitSet,
            k: usize,
            chosen: &mut Vec<usize>,
        ) -> bool {
            let Some(pivot) = uncovered.first() else {
                return true;
            };
            if k == 0 {
                return false;
            }
            for &e in h.incident_edges(pivot) {
                if labels[e] == p && !chosen.contains(&e) {
                    let rest = uncovered.difference(h.edge(e));
                    chosen.push(e);
                    if rec(h, labels, p, &rest, k - 1, chosen) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        let mut chosen = Vec::with_capacity(self.k);
        rec(h, &self.labels, p, bag, self.k, &mut chosen)
    }
}

impl TdEvaluator for PartClust {
    type Summary = PartClustSummary;

    fn eval(
        &self,
        h: &Hypergraph,
        bag: &BitSet,
        children: &[PartClustSummary],
    ) -> Option<PartClustSummary> {
        let mut options = Vec::new();
        'parts: for p in 0..self.num_partitions {
            if !self.partition_cover(h, bag, p) {
                continue;
            }
            let mut closed = BitSet::empty(self.num_partitions);
            for child in children {
                // Prefer a same-partition option; otherwise the smallest
                // closure. Either way the contribution must avoid p and be
                // disjoint from what is already closed.
                let mut picked: Option<BitSet> = None;
                let mut candidates: Vec<&(usize, BitSet)> = child.options.iter().collect();
                candidates.sort_by_key(|(q, cl)| (*q != p, cl.len()));
                for (q, cl) in candidates {
                    let mut contribution = cl.clone();
                    if *q != p {
                        contribution.insert(*q);
                    }
                    if contribution.contains(p) || contribution.intersects(&closed) {
                        continue;
                    }
                    picked = Some(contribution);
                    break;
                }
                match picked {
                    Some(c) => closed.union_with(&c),
                    None => continue 'parts,
                }
            }
            options.push((p, closed));
        }
        if options.is_empty() {
            None
        } else {
            Some(PartClustSummary { options })
        }
    }

    fn better(&self, a: &PartClustSummary, b: &PartClustSummary) -> bool {
        let score = |s: &PartClustSummary| {
            s.options
                .iter()
                .map(|(_, cl)| cl.len())
                .min()
                .unwrap_or(usize::MAX)
        };
        score(a) < score(b)
    }
}

/// Lexicographic combination: constraint/preference `A` first, `B` as a
/// tie-breaker. Used e.g. for "`ConCov` plus cost" — the paper's
/// `{ConCov, ≤_cost}` combination.
pub struct Lexi<A, B> {
    a: A,
    b: B,
}

impl<A, B> Lexi<A, B> {
    /// Combines two evaluators lexicographically.
    pub fn new(a: A, b: B) -> Self {
        Lexi { a, b }
    }
}

impl<A: TdEvaluator, B: TdEvaluator> TdEvaluator for Lexi<A, B> {
    type Summary = (A::Summary, B::Summary);

    fn eval(
        &self,
        h: &Hypergraph,
        bag: &BitSet,
        children: &[(A::Summary, B::Summary)],
    ) -> Option<(A::Summary, B::Summary)> {
        let ca: Vec<A::Summary> = children.iter().map(|(a, _)| a.clone()).collect();
        let cb: Vec<B::Summary> = children.iter().map(|(_, b)| b.clone()).collect();
        Some((self.a.eval(h, bag, &ca)?, self.b.eval(h, bag, &cb)?))
    }

    fn better(&self, x: &(A::Summary, B::Summary), y: &(A::Summary, B::Summary)) -> bool {
        if self.a.better(&x.0, &y.0) {
            return true;
        }
        if self.a.better(&y.0, &x.0) {
            return false;
        }
        self.b.better(&x.1, &y.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctd_opt::{best, enumerate_all, EnumerateOptions};
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn c5_concov_forces_width_3() {
        // Section 6: ConCov-shw(C5) = 3 while shw(C5) = 2.
        let h = named::cycle(5);
        let bags2 = concov_filter(&h, 2, &soft_bags(&h, 2));
        assert!(
            best(&h, &bags2, &Trivial).is_none(),
            "no ConCov CTD at width 2"
        );
        let bags3 = concov_filter(&h, 3, &soft_bags(&h, 3));
        let (td, _) = best(&h, &bags3, &Trivial).expect("ConCov-shw(C5) = 3");
        assert_eq!(td.validate(&h), Ok(()));
        for bag in td.bags() {
            assert!(cover::find_connected_cover(&h, bag, 3).is_some());
        }
    }

    #[test]
    fn concov_evaluator_agrees_with_filter() {
        let h = named::cycle(5);
        let bags = soft_bags(&h, 2);
        let via_eval = enumerate_all(&h, &bags, &ConCov { k: 2 }, &EnumerateOptions::default());
        assert!(via_eval.is_empty());
        let bags3 = soft_bags(&h, 3);
        let via_eval3 = enumerate_all(&h, &bags3, &ConCov { k: 3 }, &EnumerateOptions::default());
        assert!(!via_eval3.is_empty());
    }

    #[test]
    fn shallow_cyc_zero_requires_cyclic_root_only() {
        // triangle_star: a single central cyclic core with pendant
        // triangles; at d >= 0 it should admit decompositions whose deep
        // nodes are single-edge.
        let h = named::four_cycle_query();
        let bags = soft_bags(&h, 2);
        let deep = enumerate_all(
            &h,
            &bags,
            &ShallowCyc { d: 1 },
            &EnumerateOptions::default(),
        );
        assert!(!deep.is_empty(), "the 4-cycle has cyclicity depth <= 1");
        for (_, depth) in &deep {
            assert!(*depth <= 1);
        }
    }

    #[test]
    fn part_clust_on_example_4() {
        // Example 4: R,U,V on partition 0, S,T,W on partition 1.
        // A PartClust decomposition of width 2 exists (Figure 4c).
        let (h, labels) = named::example4_query();
        let bags = soft_bags(&h, 2);
        let eval = PartClust {
            k: 2,
            labels,
            num_partitions: 2,
        };
        let (td, summary) = best(&h, &bags, &eval).expect("Figure 4c exists");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(!summary.options.is_empty());
    }

    #[test]
    fn part_clust_rejects_impossible_labelling() {
        // Alternating partitions around a 4-cycle: bags of two adjacent
        // edges can never be covered within one partition.
        let h = named::four_cycle_query();
        let labels = vec![0, 1, 0, 1];
        let bags = soft_bags(&h, 2);
        let eval = PartClust {
            k: 2,
            labels,
            num_partitions: 2,
        };
        // Width-2 bags mixing partitions are rejected; since every CTD of
        // the 4-cycle needs a two-edge bag and opposite edges share no
        // vertex pairings across partitions, expect: either none, or all
        // results use single-partition covers only.
        if let Some((td, _)) = best(&h, &bags, &eval) {
            for bag in td.bags() {
                let cov0 = eval.partition_cover(&h, bag, 0);
                let cov1 = eval.partition_cover(&h, bag, 1);
                assert!(cov0 || cov1);
            }
        }
    }

    #[test]
    fn lexi_prefers_primary_then_secondary() {
        let h = named::cycle(6);
        let bags = soft_bags(&h, 2);
        let eval = Lexi::new(
            ShallowCyc { d: 10 },
            BagCost::new(|b: &BitSet| b.len() as f64),
        );
        let all = enumerate_all(&h, &bags, &eval, &EnumerateOptions::default());
        assert!(!all.is_empty());
        for w in all.windows(2) {
            let (d0, c0) = (&w[0].1 .0, w[0].1 .1.cost);
            let (d1, c1) = (&w[1].1 .0, w[1].1 .1.cost);
            assert!(
                d0 < d1 || (d0 == d1 && c0 <= c1 + 1e-9),
                "lexicographic order violated"
            );
        }
    }

    use crate::cover;
}
