//! **Algorithm 2**: the `{C, ≤}`-CandidateTD problem (Section 6).
//!
//! The boolean "satisfied" bit of Algorithm 1 is generalised to a DP value
//! produced by a [`TdEvaluator`]: `eval(bag, child summaries)` returns
//! `None` when the subtree constraint `C` is violated and otherwise a
//! summary of the partial tree decomposition; `better` is the strict part
//! of the total quasiordering (toptd) `≤`. The contract mirrors the
//! paper's *preference-complete* and *strongly monotone* assumptions:
//! improving a child's summary never worsens the parent's.
//!
//! Besides the polynomial best-decomposition DP ([`best`]), this module
//! provides what the paper's experimental prototype uses: exhaustive
//! enumeration of all constraint-satisfying CTDs ranked by preference
//! ([`enumerate_all`], with a cap), top-n extraction ([`top_n`]), and
//! uniform-ish random sampling ([`sample_random`]).
//!
//! All of them run against the instance's precomputed viable-candidate
//! tables (see [`crate::ctd`]): the preference DP is a dependency-driven
//! worklist like Algorithm 1's satisfaction engine — a block is
//! re-evaluated only when a child block's value changes — and
//! [`best_par`]/[`best_on_par`] fan each wave's block evaluations out
//! via [`par_map`] for evaluators whose summaries are `Send + Sync`.

use crate::ctd::CtdInstance;
use crate::td::TreeDecomposition;
use rand::Rng;
use softhw_hypergraph::par::par_map;
use softhw_hypergraph::{BitSet, Hypergraph};

/// Evaluation of partial tree decompositions: subtree constraint plus
/// total quasiordering, as in Section 6.1 of the paper.
///
/// The evaluator is called bottom-up: for a node with bag `bag` whose
/// children have already been summarised, it either rejects the partial
/// decomposition (constraint violated → `None`) or summarises it.
/// `better(a, b)` must implement the *strict* part of a total
/// quasiordering and be strongly monotone w.r.t. `eval`.
pub trait TdEvaluator {
    /// Summary of a partial tree decomposition rooted at some node.
    type Summary: Clone + std::fmt::Debug;

    /// Evaluates a node given its bag and the summaries of its children.
    fn eval(
        &self,
        h: &Hypergraph,
        bag: &BitSet,
        children: &[Self::Summary],
    ) -> Option<Self::Summary>;

    /// Strict preference: is `a` strictly better than `b`?
    fn better(&self, a: &Self::Summary, b: &Self::Summary) -> bool;
}

/// A decomposition together with its evaluator summary.
pub type Ranked<S> = (TreeDecomposition, S);

/// Runs the `{C, ≤}` dynamic program of Algorithm 2 and returns a globally
/// minimal constraint-satisfying CTD with its summary, or `None` if no
/// CTD satisfies the constraint.
///
/// The DP runs on the same dependency-driven worklist as Algorithm 1's
/// satisfaction engine: per-block candidate scans use the instance's
/// precomputed viable-candidate tables (coverage never re-checked), and a
/// block is re-evaluated only when a child block's value changed (via the
/// reverse index). The fixpoint is reached because summaries per block
/// strictly improve in a finite space of basis/children combinations.
/// Extraction guards against degenerate evaluator cycles (possible only
/// when `eval` is not strictly increasing, e.g. the trivial evaluator) by
/// falling back to the timestamp-ordered choice of the boolean DP.
pub fn best<E: TdEvaluator>(
    h: &Hypergraph,
    bags: &[BitSet],
    eval: &E,
) -> Option<Ranked<E::Summary>> {
    let inst = CtdInstance::new(h, bags);
    best_on(&inst, eval)
}

/// [`best`] with the per-wave block evaluations fanned out via
/// [`par_map`] (threaded under the `parallel` feature). Requires a
/// shareable evaluator; results are identical to [`best_on`] because
/// waves snapshot the value table and merge in block order either way.
pub fn best_par<E>(h: &Hypergraph, bags: &[BitSet], eval: &E) -> Option<Ranked<E::Summary>>
where
    E: TdEvaluator + Sync,
    E::Summary: Send + Sync,
{
    let inst = CtdInstance::new(h, bags);
    best_on_par(&inst, eval)
}

/// Evaluates every frontier block against the snapshot, serially.
fn wave_serial<E: TdEvaluator>(
    inst: &CtdInstance,
    eval: &E,
    value: &[Option<(usize, E::Summary)>],
    frontier: &[u32],
) -> Vec<Option<(usize, E::Summary)>> {
    frontier
        .iter()
        .map(|&b| best_candidate(inst, eval, value, b as usize))
        .collect()
}

/// [`wave_serial`] via [`par_map`] (requires shareable summaries).
fn wave_parallel<E>(
    inst: &CtdInstance,
    eval: &E,
    value: &[Option<(usize, E::Summary)>],
    frontier: &[u32],
) -> Vec<Option<(usize, E::Summary)>>
where
    E: TdEvaluator + Sync,
    E::Summary: Send + Sync,
{
    par_map(frontier.len(), |i| {
        best_candidate(inst, eval, value, frontier[i] as usize)
    })
}

/// [`best`] on a prepared instance.
pub fn best_on<E: TdEvaluator>(inst: &CtdInstance, eval: &E) -> Option<Ranked<E::Summary>> {
    best_worklist(inst, eval, wave_serial)
}

/// [`best_on`] with parallel wave fan-out; see [`best_par`].
pub fn best_on_par<E>(inst: &CtdInstance, eval: &E) -> Option<Ranked<E::Summary>>
where
    E: TdEvaluator + Sync,
    E::Summary: Send + Sync,
{
    best_worklist(inst, eval, wave_parallel)
}

/// The worklist driver shared by the serial and parallel variants: waves
/// of Jacobi-style re-evaluations over a frontier, seeded with all blocks;
/// after a wave, exactly the parents of changed blocks re-enter.
fn best_worklist<E: TdEvaluator>(
    inst: &CtdInstance,
    eval: &E,
    wave: impl Fn(
        &CtdInstance,
        &E,
        &[Option<(usize, E::Summary)>],
        &[u32],
    ) -> Vec<Option<(usize, E::Summary)>>,
) -> Option<Ranked<E::Summary>> {
    let nb = inst.blocks.len();
    let mut value: Vec<Option<(usize, E::Summary)>> = vec![None; nb];
    // Boolean reference DP for the acyclic fallback.
    let bool_sat = inst.satisfy();
    let mut frontier: Vec<u32> = (0..nb as u32).collect();
    let mut next: Vec<u32> = Vec::new();
    let mut queued = vec![false; nb];
    let mut guard = 0usize;
    while !frontier.is_empty() {
        let updates = wave(inst, eval, &value, &frontier);
        next.clear();
        for (i, upd) in updates.into_iter().enumerate() {
            let b = frontier[i] as usize;
            let Some((x, summary)) = upd else { continue };
            let replace = match &value[b] {
                None => true,
                Some((_, old)) => eval.better(&summary, old),
            };
            if replace {
                value[b] = Some((x, summary));
                inst.for_each_parent(b, |p| {
                    if !queued[p as usize] {
                        queued[p as usize] = true;
                        next.push(p);
                    }
                });
            }
        }
        next.sort_unstable();
        for &p in &next {
            queued[p as usize] = false;
        }
        std::mem::swap(&mut frontier, &mut next);
        guard += 1;
        assert!(
            guard <= 4 * nb * inst.num_bags() + 16,
            "Algorithm 2 failed to converge; evaluator is not strongly monotone"
        );
    }
    if !inst.root_blocks.iter().all(|&b| value[b].is_some()) {
        return None;
    }
    // Extract (with cycle guard; see module docs).
    let mut td: Option<TreeDecomposition> = None;
    let mut summaries: Vec<E::Summary> = Vec::new();
    for &rb in &inst.root_blocks {
        let mut visited = vec![false; nb];
        let (node_summary, built) =
            extract_best(inst, eval, &value, &bool_sat.basis, rb, &mut visited)?;
        match td.as_mut() {
            None => {
                td = Some(built);
            }
            Some(t) => {
                graft(t, t.root(), &built, built.root());
            }
        }
        summaries.push(node_summary);
    }
    let td = td?;
    // For a connected hypergraph (the common case) return the root summary;
    // otherwise re-evaluate the stitched tree bottom-up for a consistent
    // summary.
    let summary = if summaries.len() == 1 {
        summaries.pop().expect("one component")
    } else {
        evaluate_td(&inst.h, &td, eval)?
    };
    Some((td, summary))
}

/// The preference-minimal viable candidate of block `b` under the current
/// value table: scans the precomputed viable candidates in bag order
/// (coverage already verified at instance build), evaluates those whose
/// children all have values, and keeps the strictly best summary (first
/// wins ties, so the choice is deterministic).
fn best_candidate<E: TdEvaluator>(
    inst: &CtdInstance,
    eval: &E,
    value: &[Option<(usize, E::Summary)>],
    b: usize,
) -> Option<(usize, E::Summary)> {
    let mut best: Option<(usize, E::Summary)> = None;
    let mut child_summaries: Vec<E::Summary> = Vec::new();
    'cands: for (x, children) in inst.viable_candidates(b) {
        child_summaries.clear();
        for &b2 in children {
            match value[b2 as usize].as_ref() {
                Some((_, s)) => child_summaries.push(s.clone()),
                None => continue 'cands,
            }
        }
        let Some(summary) = eval.eval(&inst.h, inst.bag(x), &child_summaries) else {
            continue;
        };
        let replace = match &best {
            None => true,
            Some((_, old)) => eval.better(&summary, old),
        };
        if replace {
            best = Some((x, summary));
        }
    }
    best
}

/// Recursive extraction following the best-value table; on a cycle, falls
/// back to the boolean DP's timestamp-ordered basis (which is provably
/// acyclic).
fn extract_best<E: TdEvaluator>(
    inst: &CtdInstance,
    eval: &E,
    value: &[Option<(usize, E::Summary)>],
    bool_basis: &[Option<(usize, u32)>],
    b: usize,
    visited: &mut [bool],
) -> Option<(E::Summary, TreeDecomposition)> {
    #[allow(clippy::too_many_arguments)]
    fn rec<E: TdEvaluator>(
        inst: &CtdInstance,
        eval: &E,
        value: &[Option<(usize, E::Summary)>],
        bool_basis: &[Option<(usize, u32)>],
        b: usize,
        visited: &mut [bool],
        td: &mut TreeDecomposition,
        parent: Option<usize>,
    ) -> Option<E::Summary> {
        let x = if visited[b] {
            bool_basis[b].map(|(x, _)| x)?
        } else {
            value[b].as_ref().map(|(x, _)| *x)?
        };
        visited[b] = true;
        let node = match parent {
            None => td.root(),
            Some(p) => td.add_child(p, inst.bag(x).clone()),
        };
        let mut child_summaries = Vec::new();
        for &b2 in inst.child_blocks(b, x) {
            let s = rec(
                inst,
                eval,
                value,
                bool_basis,
                b2 as usize,
                visited,
                td,
                Some(node),
            )?;
            child_summaries.push(s);
        }
        eval.eval(&inst.h, inst.bag(x), &child_summaries)
    }
    let x = value[b].as_ref().map(|(x, _)| *x)?;
    let mut td = TreeDecomposition::new(inst.bag(x).clone());
    let s = rec(inst, eval, value, bool_basis, b, visited, &mut td, None)?;
    Some((s, td))
}

/// Copies the subtree of `src` rooted at `src_node` under `dst_node`.
fn graft(dst: &mut TreeDecomposition, dst_node: usize, src: &TreeDecomposition, src_node: usize) {
    let new = dst.add_child(dst_node, src.bag(src_node).clone());
    for &c in src.children(src_node) {
        graft(dst, new, src, c);
    }
}

/// Evaluates a complete decomposition bottom-up with an evaluator;
/// `None` if any node violates the constraint.
pub fn evaluate_td<E: TdEvaluator>(
    h: &Hypergraph,
    td: &TreeDecomposition,
    eval: &E,
) -> Option<E::Summary> {
    fn rec<E: TdEvaluator>(
        h: &Hypergraph,
        td: &TreeDecomposition,
        eval: &E,
        u: usize,
    ) -> Option<E::Summary> {
        let mut children = Vec::new();
        for &c in td.children(u) {
            children.push(rec(h, td, eval, c)?);
        }
        eval.eval(h, td.bag(u), &children)
    }
    rec(h, td, eval, td.root())
}

/// Options for [`enumerate_all`].
#[derive(Clone, Debug)]
pub struct EnumerateOptions {
    /// Hard cap on the number of alternatives kept per block (and on the
    /// final result list). `usize::MAX` enumerates everything.
    pub cap_per_block: usize,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            cap_per_block: 10_000,
        }
    }
}

struct TdNode {
    bag: usize,
    children: Vec<TdNode>,
}

/// Enumerates constraint-satisfying CTDs ranked best-first by the
/// evaluator. With `cap_per_block >= n` and a strongly monotone evaluator,
/// the first `n` results are exactly the top-n decompositions (the
/// paper's Table 1 "top-10 best TDs" workload).
pub fn enumerate_all<E: TdEvaluator>(
    h: &Hypergraph,
    bags: &[BitSet],
    eval: &E,
    opts: &EnumerateOptions,
) -> Vec<Ranked<E::Summary>> {
    let inst = CtdInstance::new(h, bags);
    enumerate_on(&inst, eval, opts)
}

/// [`enumerate_all`] on a prepared instance.
pub fn enumerate_on<E: TdEvaluator>(
    inst: &CtdInstance,
    eval: &E,
    opts: &EnumerateOptions,
) -> Vec<Ranked<E::Summary>> {
    let sat = inst.satisfy();
    if !sat.accept {
        return Vec::new();
    }
    let satisfied: Vec<bool> = sat.basis.iter().map(Option::is_some).collect();
    let mut visited = vec![false; inst.blocks.len()];
    // Enumerate per root block, then combine across connected components.
    let mut per_root: Vec<Vec<(TdNode, E::Summary)>> = Vec::new();
    for &rb in &inst.root_blocks {
        per_root.push(enum_block(inst, eval, &satisfied, rb, &mut visited, opts));
    }
    if per_root.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    // Cartesian combination across components (almost always a single one).
    type Combo<'a, S> = Vec<&'a (TdNode, S)>;
    let mut combos: Vec<Combo<'_, E::Summary>> = vec![Vec::new()];
    for options in &per_root {
        let mut next = Vec::new();
        for combo in &combos {
            for opt in options {
                let mut c = combo.clone();
                c.push(opt);
                next.push(c);
                if next.len() >= opts.cap_per_block {
                    break;
                }
            }
        }
        combos = next;
    }
    let mut out: Vec<Ranked<E::Summary>> = Vec::new();
    for combo in combos {
        let mut td: Option<TreeDecomposition> = None;
        for (node, _) in &combo {
            materialise(inst, node, &mut td);
        }
        let td = td.expect("non-empty combo");
        // Summary of the first component's root (single-component case) or
        // a re-evaluation for stitched trees.
        let summary = if combo.len() == 1 {
            combo[0].1.clone()
        } else {
            match evaluate_td(&inst.h, &td, eval) {
                Some(s) => s,
                None => continue,
            }
        };
        out.push((td, summary));
    }
    out.sort_by(|a, b| {
        if eval.better(&a.1, &b.1) {
            std::cmp::Ordering::Less
        } else if eval.better(&b.1, &a.1) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
    out.truncate(opts.cap_per_block);
    out
}

fn materialise(inst: &CtdInstance, node: &TdNode, td: &mut Option<TreeDecomposition>) {
    fn rec(inst: &CtdInstance, node: &TdNode, td: &mut TreeDecomposition, parent: usize) {
        let id = td.add_child(parent, inst.bag(node.bag).clone());
        for c in &node.children {
            rec(inst, c, td, id);
        }
    }
    match td.as_mut() {
        None => {
            let mut fresh = TreeDecomposition::new(inst.bag(node.bag).clone());
            let root = fresh.root();
            for c in &node.children {
                rec(inst, c, &mut fresh, root);
            }
            *td = Some(fresh);
        }
        Some(t) => {
            let at = t.root();
            rec(inst, node, t, at);
        }
    }
}

fn clone_node(n: &TdNode) -> TdNode {
    TdNode {
        bag: n.bag,
        children: n.children.iter().map(clone_node).collect(),
    }
}

fn enum_block<E: TdEvaluator>(
    inst: &CtdInstance,
    eval: &E,
    satisfied: &[bool],
    b: usize,
    visited: &mut [bool],
    opts: &EnumerateOptions,
) -> Vec<(TdNode, E::Summary)> {
    let mut results: Vec<(TdNode, E::Summary)> = Vec::new();
    // Viable candidates carry their precomputed child lists; coverage was
    // verified at instance build, so only the satisfaction/cycle state is
    // checked here.
    'bags: for (x, child_blocks) in inst.viable_candidates(b) {
        for &b2 in child_blocks {
            if !satisfied[b2 as usize] || visited[b2 as usize] {
                continue 'bags; // unsatisfiable child, or cyclic reconstruction
            }
        }
        // Recurse into children; each list comes back best-first and
        // truncated to the cap (sound for top-n under strong monotonicity:
        // a top-n parent combination only uses top-n child entries).
        let mut child_options: Vec<Vec<(TdNode, E::Summary)>> = Vec::new();
        for &b2 in child_blocks {
            visited[b2 as usize] = true;
        }
        let mut ok = true;
        for &b2 in child_blocks {
            let opt = enum_block(inst, eval, satisfied, b2 as usize, visited, opts);
            if opt.is_empty() {
                ok = false;
                break;
            }
            child_options.push(opt);
        }
        for &b2 in child_blocks {
            visited[b2 as usize] = false;
        }
        if !ok {
            continue;
        }
        // Best-first combination of children alternatives: start from the
        // all-best index vector and expand one coordinate at a time. With
        // a strongly monotone evaluator, emitted summaries are
        // nondecreasing, so collecting the first `cap` yields the true
        // per-basis top list. Constraint-violating combos (eval = None)
        // are expanded but not emitted.
        let mut frontier: Vec<(Vec<usize>, Option<E::Summary>)> = Vec::new();
        let mut seen: softhw_hypergraph::FxHashSet<Vec<usize>> =
            softhw_hypergraph::FxHashSet::default();
        let evaluate = |idxs: &[usize]| -> Option<E::Summary> {
            let sums: Vec<E::Summary> = idxs
                .iter()
                .enumerate()
                .map(|(ci, &j)| child_options[ci][j].1.clone())
                .collect();
            eval.eval(&inst.h, inst.bag(x), &sums)
        };
        let start = vec![0usize; child_options.len()];
        frontier.push((start.clone(), evaluate(&start)));
        seen.insert(start);
        let mut emitted = 0usize;
        while !frontier.is_empty() && emitted < opts.cap_per_block {
            // Pop the best frontier entry: None summaries (violations)
            // first so their successors get explored, then the summary-
            // minimal one.
            let mut best_i = 0usize;
            for i in 1..frontier.len() {
                let better = match (&frontier[i].1, &frontier[best_i].1) {
                    (None, _) => true,
                    (_, None) => false,
                    (Some(a), Some(b)) => eval.better(a, b),
                };
                if better {
                    best_i = i;
                }
            }
            let (idxs, summary) = frontier.swap_remove(best_i);
            if let Some(summary) = summary {
                let children: Vec<TdNode> = idxs
                    .iter()
                    .enumerate()
                    .map(|(ci, &j)| clone_node(&child_options[ci][j].0))
                    .collect();
                results.push((TdNode { bag: x, children }, summary));
                emitted += 1;
            }
            for ci in 0..idxs.len() {
                if idxs[ci] + 1 < child_options[ci].len() {
                    let mut nxt = idxs.clone();
                    nxt[ci] += 1;
                    if seen.insert(nxt.clone()) {
                        let s = evaluate(&nxt);
                        frontier.push((nxt, s));
                    }
                }
            }
        }
    }
    // Keep the block's alternatives ordered best-first and capped.
    results.sort_by(|a, b| {
        if eval.better(&a.1, &b.1) {
            std::cmp::Ordering::Less
        } else if eval.better(&b.1, &a.1) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
    results.truncate(opts.cap_per_block);
    results
}

/// The `n` best constraint-satisfying CTDs under the evaluator's
/// preference (ties broken arbitrarily).
pub fn top_n<E: TdEvaluator>(
    h: &Hypergraph,
    bags: &[BitSet],
    eval: &E,
    n: usize,
) -> Vec<Ranked<E::Summary>> {
    let mut out = enumerate_all(
        h,
        bags,
        eval,
        &EnumerateOptions {
            cap_per_block: n.max(64),
        },
    );
    out.truncate(n);
    out
}

/// Samples a random CTD by walking the satisfaction table with random
/// basis choices. Returns `None` when no CTD exists (or after repeated
/// dead ends, which cannot happen on satisfiable instances because every
/// satisfiable block retains at least its DP basis).
pub fn sample_random<R: Rng>(
    h: &Hypergraph,
    bags: &[BitSet],
    rng: &mut R,
) -> Option<TreeDecomposition> {
    let inst = CtdInstance::new(h, bags);
    let sat = inst.satisfy();
    if !sat.accept {
        return None;
    }
    let satisfied: Vec<bool> = sat.basis.iter().map(Option::is_some).collect();
    'attempt: for _ in 0..64 {
        let mut td: Option<TreeDecomposition> = None;
        for &rb in &inst.root_blocks {
            let mut visited = vec![false; inst.blocks.len()];
            if !sample_block(&inst, &satisfied, rb, &mut visited, rng, &mut td, None) {
                continue 'attempt;
            }
        }
        return td;
    }
    // Deterministic fallback: the DP extraction always works.
    inst.extract(&sat)
}

fn sample_block<R: Rng>(
    inst: &CtdInstance,
    satisfied: &[bool],
    b: usize,
    visited: &mut [bool],
    rng: &mut R,
    td: &mut Option<TreeDecomposition>,
    parent: Option<usize>,
) -> bool {
    visited[b] = true;
    // Collect valid bases under the satisfaction table: viable candidates
    // (coverage precomputed) whose children are satisfied and acyclic.
    let candidates: Vec<usize> = inst
        .viable_candidates(b)
        .filter(|(_, children)| {
            children
                .iter()
                .all(|&b2| satisfied[b2 as usize] && !visited[b2 as usize])
        })
        .map(|(x, _)| x)
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let x = candidates[rng.gen_range(0..candidates.len())];
    let node = match (td.as_mut(), parent) {
        (None, _) => {
            *td = Some(TreeDecomposition::new(inst.bag(x).clone()));
            td.as_ref().expect("just set").root()
        }
        (Some(t), Some(p)) => t.add_child(p, inst.bag(x).clone()),
        (Some(t), None) => {
            let r = t.root();
            t.add_child(r, inst.bag(x).clone())
        }
    };
    for &b2 in inst.child_blocks(b, x) {
        if !sample_block(inst, satisfied, b2 as usize, visited, rng, td, Some(node)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{BagCost, Trivial};
    use crate::soft::soft_bags;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use softhw_hypergraph::named;

    #[test]
    fn best_with_trivial_evaluator_matches_algorithm_1() {
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let (td, _) = best(&h, &bags, &Trivial).expect("shw(H2)=2");
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn best_minimises_bag_cost() {
        // Cost = total bag cardinality; the best decomposition cannot be
        // beaten by any enumerated one.
        let h = named::cycle(6);
        let bags = soft_bags(&h, 2);
        let cost = BagCost::new(|bag: &BitSet| bag.len() as f64);
        let (btd, bsum) = best(&h, &bags, &cost).expect("exists");
        assert_eq!(btd.validate(&h), Ok(()));
        let all = enumerate_all(&h, &bags, &cost, &EnumerateOptions::default());
        assert!(!all.is_empty());
        for (td, s) in &all {
            assert_eq!(td.validate(&h), Ok(()));
            assert!(
                s.cost + 1e-9 >= bsum.cost,
                "enumeration found cheaper ({} < {})",
                s.cost,
                bsum.cost
            );
        }
        // and the cheapest enumerated equals the DP's optimum
        assert!((all[0].1.cost - bsum.cost).abs() < 1e-9);
    }

    #[test]
    fn enumeration_is_ranked() {
        let h = named::cycle(5);
        let bags = soft_bags(&h, 2);
        let cost = BagCost::new(|bag: &BitSet| bag.len() as f64);
        let all = enumerate_all(&h, &bags, &cost, &EnumerateOptions::default());
        for w in all.windows(2) {
            assert!(w[0].1.cost <= w[1].1.cost + 1e-9);
        }
    }

    #[test]
    fn top_n_truncates() {
        let h = named::cycle(5);
        let bags = soft_bags(&h, 2);
        let cost = BagCost::new(|bag: &BitSet| bag.len() as f64);
        let t3 = top_n(&h, &bags, &cost, 3);
        assert!(t3.len() <= 3);
        assert!(!t3.is_empty());
    }

    #[test]
    fn sample_random_produces_valid_ctds() {
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            let td = sample_random(&h, &bags, &mut rng).expect("satisfiable");
            assert_eq!(td.validate(&h), Ok(()));
            for bag in td.bags() {
                assert!(bags.contains(bag), "sampled bag must be a candidate");
            }
        }
    }

    #[test]
    fn unsatisfiable_instances_yield_nothing() {
        let h = named::cycle(4);
        let bags = vec![h.vset(&["v0", "v1"])];
        assert!(best(&h, &bags, &Trivial).is_none());
        assert!(enumerate_all(&h, &bags, &Trivial, &EnumerateOptions::default()).is_empty());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(sample_random(&h, &bags, &mut rng).is_none());
    }
}
