//! Generation of the candidate bag set `Soft_{H,k}` (Definition 3):
//!
//! ```text
//! Soft_{H,k} = { (⋃λ1) ∩ (⋃C) | C a [λ2]-component of H,
//!                               λ1, λ2 ⊆ E(H), |λ1| ≤ k, |λ2| ≤ k }
//! ```
//!
//! The generator factors the definition into its two independent sides:
//! the `W`-side (`⋃λ1`, all unions of up to `k` edges) and the `U`-side
//! (`⋃C` over all `[λ2]`-components, λ2 ranging over up to `k` edges
//! *including the empty set*, which yields `⋃C = V(H)` on connected
//! hypergraphs). Both sides are deduplicated before taking pairwise
//! intersections, which is what keeps the generator practical.
//!
//! Deduplication and storage route through the
//! [`BagArena`]/[`BlockIndex`] of `softhw-hypergraph`: candidate bags are
//! emitted as dense [`BagId`]s, dedup is arena interning (word-level, no
//! per-candidate boxed allocation), and the `U`-side's components and
//! component unions are answered from the index's cache — shared across
//! widths `k` and across solver calls on the same hypergraph. The
//! `W`-side enumeration fans out over first-λ1-element chunks via
//! [`softhw_hypergraph::par::par_chunks`] (threaded under the `parallel`
//! feature) into per-worker shards of a [`ShardedArena`] — each worker
//! owns its slice of the id space (high bits = shard id), so the merge is
//! lock-free concatenation plus one content sort, with no re-interning of
//! worker results into the shared arena. Only the final deduplicated
//! candidate set is interned into the [`BlockIndex`] arena, once.
//!
//! The seed's direct `FxHashSet<BitSet>` generator is preserved verbatim
//! in [`reference`] as the cross-check and benchmark baseline.

use crate::budget::Budget;
use crate::error::DecompError;
use softhw_hypergraph::arena::{words_empty, words_intersect_into, IdSet};
use softhw_hypergraph::par::par_chunks;
use softhw_hypergraph::{BagArena, BagId, BitSet, BlockIndex, Hypergraph, ShardedArena};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Guards against combinatorial blow-up of candidate-bag generation.
#[derive(Clone, Debug)]
pub struct SoftLimits {
    /// Upper bound on the number of λ-subsets enumerated per side (one
    /// global counter per side, shared across parallel workers).
    pub max_lambda_sets: usize,
    /// Upper bound on the number of distinct candidate bags produced.
    pub max_bags: usize,
}

impl Default for SoftLimits {
    fn default() -> Self {
        SoftLimits {
            max_lambda_sets: 2_000_000,
            max_bags: 1_000_000,
        }
    }
}

/// Error raised when [`SoftLimits`] are exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitExceeded {
    /// Which guard tripped.
    pub what: &'static str,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "soft bag generation limit exceeded: {}", self.what)
    }
}

impl std::error::Error for LimitExceeded {}

/// Maps a [`DecompError`] raised under the *unlimited* budget back to
/// the pre-budget `LimitExceeded` signature of the public generators.
/// The unlimited budget cannot trip, so every error reaching here is a
/// limit (shard overflows are folded into `LimitExceeded` at their
/// raise sites); a non-limit error degrades to a generic limit rather
/// than panicking.
fn demote(e: DecompError) -> LimitExceeded {
    match e {
        DecompError::Limit(l) => l,
        _ => LimitExceeded {
            what: "non-limit error under unlimited budget",
        },
    }
}

/// Interns into a worker-local shard, erroring out *before* the shard
/// outgrows its slice of the sharded id space. An over-full shard would
/// wrap local ids into the next shard's range ([`ShardedArena`] high-bit
/// encoding) and silently alias unrelated bags; with this guard the
/// enumeration instead degrades to the same graceful failure as any
/// other blown limit.
#[inline]
fn shard_checked_intern(local: &mut BagArena, words: &[u64]) -> Result<BagId, LimitExceeded> {
    if local.len() >= softhw_hypergraph::arena::MAX_BAGS_PER_SHARD {
        return Err(LimitExceeded {
            what: "shard capacity (MAX_BAGS_PER_SHARD)",
        });
    }
    Ok(local.intern_words(words))
}

/// Depth-first λ-union enumeration below one fixed first element,
/// deduplicating into a worker-local arena. `pool[d]` holds the running
/// union at depth `d`; the recursion writes depth `d+1` in place, so the
/// whole subtree enumeration allocates nothing after the pool. The
/// budget counter is shared across all workers (a relaxed atomic), so
/// the `max_lambda_sets` bound is global exactly as in the serial path —
/// and deterministic, because the total node count of the enumeration
/// does not depend on scheduling.
#[allow(clippy::too_many_arguments)]
fn lambda_rec(
    arena: &BagArena,
    elements: &[BagId],
    start: usize,
    depth: usize,
    max_depth: usize,
    pool: &mut [Vec<u64>],
    local: &mut BagArena,
    sets: &AtomicUsize,
    max_sets: usize,
    budget: &Budget,
) -> Result<(), DecompError> {
    for i in start..elements.len() {
        budget.tick()?;
        if sets.fetch_add(1, Ordering::Relaxed) >= max_sets {
            return Err(LimitExceeded {
                what: "max_lambda_sets",
            }
            .into());
        }
        let (prev, next) = pool.split_at_mut(depth);
        let buf = &mut next[0];
        buf.clear();
        buf.extend_from_slice(&prev[depth - 1]);
        arena.union_into(elements[i], buf);
        shard_checked_intern(local, buf)?;
        if depth < max_depth {
            lambda_rec(
                arena,
                elements,
                i + 1,
                depth + 1,
                max_depth,
                pool,
                local,
                sets,
                max_sets,
                budget,
            )?;
        }
    }
    Ok(())
}

/// Serial λ-union enumeration directly into the shared arena: no local
/// arenas, no re-interning, the per-node cost is one pooled word-union
/// plus one intern probe. The `max_lambda_sets` budget is one global
/// counter over all enumeration nodes, matching the seed's semantics
/// and the shared atomic counter of the parallel path.
fn lambda_unions_direct(
    arena: &mut BagArena,
    elements: &[BagId],
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Vec<BagId>, DecompError> {
    let words = arena.words_per_bag();
    let mut out: Vec<BagId> = Vec::new();
    let mut seen = IdSet::new();
    let mut pool: Vec<Vec<u64>> = (0..=k).map(|_| vec![0u64; words]).collect();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        arena: &mut BagArena,
        elements: &[BagId],
        start: usize,
        depth: usize,
        max_depth: usize,
        pool: &mut [Vec<u64>],
        seen: &mut IdSet,
        out: &mut Vec<BagId>,
        sets: &mut usize,
        budget: &Budget,
    ) -> Result<(), DecompError> {
        for i in start..elements.len() {
            budget.tick()?;
            if *sets == 0 {
                return Err(LimitExceeded {
                    what: "max_lambda_sets",
                }
                .into());
            }
            *sets -= 1;
            let (prev, next) = pool.split_at_mut(depth);
            let buf = &mut next[0];
            buf.clear();
            buf.extend_from_slice(&prev[depth - 1]);
            arena.union_into(elements[i], buf);
            let id = arena.intern_words(buf);
            if seen.insert(id) {
                out.push(id);
            }
            if depth < max_depth {
                rec(
                    arena,
                    elements,
                    i + 1,
                    depth + 1,
                    max_depth,
                    pool,
                    seen,
                    out,
                    sets,
                    budget,
                )?;
            }
        }
        Ok(())
    }
    let mut sets = limits.max_lambda_sets;
    rec(
        arena, elements, 0, 1, k, &mut pool, &mut seen, &mut out, &mut sets, budget,
    )?;
    Ok(out)
}

/// The parallel `W`-side enumeration: one shard of a [`ShardedArena`] per
/// worker (ids partitioned by high bits), merged by concatenation and
/// deduplicated across shards during the content sort. Returns the
/// sharded storage plus the content-sorted unique ids into it — no bag is
/// interned into any shared arena, so downstream stages can stream the
/// words straight out of the worker shards.
fn lambda_unions_sharded(
    arena: &BagArena,
    elements: &[BagId],
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<(ShardedArena, Vec<BagId>), DecompError> {
    let shard_cap = elements
        .len()
        .clamp(1, softhw_hypergraph::arena::MAX_SHARDS);
    let workers = softhw_hypergraph::par::num_workers().clamp(1, shard_cap);
    let universe = arena.universe();
    let words = arena.words_per_bag();
    let sets = AtomicUsize::new(0);
    let max_sets = limits.max_lambda_sets;
    let per_chunk: Vec<Result<BagArena, DecompError>> =
        par_chunks(elements.len(), workers, |range| {
            let mut local = BagArena::new(universe);
            let mut pool: Vec<Vec<u64>> = (0..=k).map(|_| vec![0u64; words]).collect();
            for first in range {
                budget.tick()?;
                if sets.fetch_add(1, Ordering::Relaxed) >= max_sets {
                    return Err(LimitExceeded {
                        what: "max_lambda_sets",
                    }
                    .into());
                }
                let first_words = arena.words(elements[first]);
                pool[1].copy_from_slice(first_words);
                shard_checked_intern(&mut local, first_words)?;
                if k > 1 {
                    lambda_rec(
                        arena,
                        elements,
                        first + 1,
                        2,
                        k,
                        &mut pool,
                        &mut local,
                        &sets,
                        max_sets,
                        budget,
                    )?;
                }
            }
            Ok(local)
        });
    // A budget error wins over any limit error from another worker: the
    // trip is sticky (cancel flag / spent cap / past deadline), so the
    // caller's retry semantics stay deterministic no matter which worker
    // surfaced its error first.
    budget.check()?;
    let mut shards = Vec::with_capacity(per_chunk.len());
    for r in per_chunk {
        shards.push(r?);
    }
    let sharded =
        ShardedArena::try_from_shards(shards).map_err(|e| LimitExceeded { what: e.what() })?;
    let ids = sharded.sorted_unique_ids();
    Ok((sharded, ids))
}

/// Enumerates all distinct unions of 1..=`k` bags drawn from `elements`
/// (the `⋃λ1` side of Definition 3), interned into `arena` and returned
/// in content order. Serial builds enumerate directly into the shared
/// arena; under the `parallel` feature the first-element range is split
/// into one chunk per core, each worker filling its own shard of the id
/// space ([`lambda_unions_sharded`]), and only the deduplicated result is
/// interned into the shared arena. Both paths charge one global
/// `max_lambda_sets` budget (the parallel workers share a relaxed atomic
/// counter), so the sorted result — and the accept/`LimitExceeded`
/// outcome — is identical either way.
pub fn lambda_union_ids(
    arena: &mut BagArena,
    elements: &[BagId],
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BagId>, LimitExceeded> {
    lambda_union_ids_budgeted(arena, elements, k, limits, &Budget::unlimited()).map_err(demote)
}

/// [`lambda_union_ids`] with a cooperative [`Budget`]: the enumeration
/// ticks the budget once per node (serial and parallel workers alike)
/// and aborts with [`DecompError::DeadlineExceeded`] /
/// [`DecompError::Canceled`] when it trips. The shared arena only ever
/// receives fully-enumerated, deduplicated results, so an abort leaves
/// it with at most already-valid interned bags — safe to retry against.
pub fn lambda_union_ids_budgeted(
    arena: &mut BagArena,
    elements: &[BagId],
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Vec<BagId>, DecompError> {
    if k == 0 || elements.is_empty() {
        return Ok(Vec::new());
    }
    let workers = softhw_hypergraph::par::num_workers().min(elements.len());
    if workers <= 1 {
        let mut out = lambda_unions_direct(arena, elements, k, limits, budget)?;
        out.sort_unstable_by(|&a, &b| arena.cmp_bags(a, b));
        Ok(out)
    } else {
        let (sharded, ids) = lambda_unions_sharded(arena, elements, k, limits, budget)?;
        // Already content-sorted and unique: a single interning pass maps
        // the sharded ids into the shared arena's id space.
        Ok(ids
            .into_iter()
            .map(|id| arena.intern_words(sharded.words(id)))
            .collect())
    }
}

/// Number of edge subsets of size `0..=k` out of `n` edges — the exact
/// count of λ2 candidates the sweep below visits — saturating at
/// `usize::MAX` so callers can feed it straight into capacity hints.
fn lambda_count_bound(n: usize, k: usize) -> usize {
    let mut total: usize = 1;
    let mut term: usize = 1;
    for i in 1..=k {
        if i > n {
            break;
        }
        term = term.saturating_mul(n - i + 1) / i;
        total = total.saturating_add(term);
    }
    total
}

/// Enumerates all distinct `⋃C` for `C` a `[λ2]`-component of the
/// hypergraph, with `λ2` ranging over edge subsets of size 0..=`k` (the
/// `⋃C` side of Definition 3). Every separator's components and unions
/// come from — and stay in — the index's cache, so repeated calls across
/// widths and solvers only pay for separators never seen before.
pub fn component_union_ids(
    index: &mut BlockIndex,
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BagId>, LimitExceeded> {
    component_union_ids_budgeted(index, k, limits, &Budget::unlimited()).map_err(demote)
}

/// [`component_union_ids`] with a cooperative [`Budget`] (one tick per
/// λ2 enumeration node). An abort leaves the index's separator and
/// component caches holding only fully-computed entries, which a retry
/// reuses.
pub fn component_union_ids_budgeted(
    index: &mut BlockIndex,
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Vec<BagId>, DecompError> {
    let h = index.hypergraph();
    let num_edges = h.num_edges();
    let words = index.arena.words_per_bag();
    // `|E|^k`-scale pre-sizing: the sweep interns about one separator per
    // λ2 subset (components and unions share the same id table), so grow
    // the arena's intern table and the dedup sets to their final size up
    // front instead of rehashing repeatedly through the loop.
    let est = lambda_count_bound(num_edges, k).min(limits.max_lambda_sets.saturating_add(1));
    index.arena.reserve(est);
    let mut out: Vec<BagId> = Vec::new();
    let mut seen = IdSet::with_capacity(est);
    // Distinct λ2 subsets frequently produce the same separator union
    // (overlapping edges); a repeated separator has nothing new to
    // offer, so it is deduplicated *before* the component BFS / cache
    // probes rather than per component behind them.
    let mut sep_seen = IdSet::with_capacity(est);
    let mut comp_scratch: Vec<BagId> = Vec::new();

    let mut collect = |index: &mut BlockIndex,
                       sep: BagId,
                       out: &mut Vec<BagId>,
                       seen: &mut IdSet,
                       comp_scratch: &mut Vec<BagId>| {
        let r = index.components(sep);
        comp_scratch.clear();
        comp_scratch.extend_from_slice(index.comps(r));
        for &c in comp_scratch.iter() {
            let u = index.component_union(c);
            if seen.insert(u) {
                out.push(u);
            }
        }
    };

    // λ2 = ∅ first.
    let empty = index.empty();
    sep_seen.insert(empty);
    collect(index, empty, &mut out, &mut seen, &mut comp_scratch);

    // DFS over non-empty λ2, maintaining the separator union per depth.
    let mut pool: Vec<Vec<u64>> = (0..=k).map(|_| vec![0u64; words]).collect();
    let mut sets = limits.max_lambda_sets;
    #[allow(clippy::too_many_arguments)]
    fn rec(
        index: &mut BlockIndex,
        num_edges: usize,
        start: usize,
        depth: usize,
        max_depth: usize,
        pool: &mut [Vec<u64>],
        sets: &mut usize,
        budget: &Budget,
        out: &mut Vec<BagId>,
        seen: &mut IdSet,
        sep_seen: &mut IdSet,
        comp_scratch: &mut Vec<BagId>,
        collect: &mut impl FnMut(&mut BlockIndex, BagId, &mut Vec<BagId>, &mut IdSet, &mut Vec<BagId>),
    ) -> Result<(), DecompError> {
        for e in start..num_edges {
            budget.tick()?;
            if *sets == 0 {
                return Err(LimitExceeded {
                    what: "max_lambda_sets",
                }
                .into());
            }
            *sets -= 1;
            let h = index.hypergraph();
            let edge_words = h.edge(e).blocks();
            let (prev, next) = pool.split_at_mut(depth);
            let buf = &mut next[0];
            buf.clear();
            buf.extend_from_slice(&prev[depth - 1]);
            softhw_hypergraph::arena::words_union_into(edge_words, buf);
            let sep = index.arena.intern_words(buf);
            // A repeated separator union contributes nothing new, but a
            // *deeper* subset extending it still can — skip only the
            // component queries, not the recursion.
            if sep_seen.insert(sep) {
                collect(index, sep, out, seen, comp_scratch);
            }
            if depth < max_depth {
                rec(
                    index,
                    num_edges,
                    e + 1,
                    depth + 1,
                    max_depth,
                    pool,
                    sets,
                    budget,
                    out,
                    seen,
                    sep_seen,
                    comp_scratch,
                    collect,
                )?;
            }
        }
        Ok(())
    }
    if k > 0 {
        rec(
            index,
            num_edges,
            0,
            1,
            k,
            &mut pool,
            &mut sets,
            budget,
            &mut out,
            &mut seen,
            &mut sep_seen,
            &mut comp_scratch,
            &mut collect,
        )?;
    }
    out.sort_unstable_by(|&a, &b| index.arena.cmp_bags(a, b));
    Ok(out)
}

/// Computes `Soft_{H,k}` as interned [`BagId`]s, given a pre-computed
/// `λ1`-element pool (for Definition 3 this is `E(H)`; the iterated
/// hierarchy of Definition 6 passes `E^(i)`). The pairwise
/// `W`-side × `U`-side intersection fans out over the `W`-side.
pub fn soft_bag_ids_from_elements(
    index: &mut BlockIndex,
    elements: &[BagId],
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BagId>, LimitExceeded> {
    soft_bag_ids_from_elements_budgeted(index, elements, k, limits, &Budget::unlimited())
        .map_err(demote)
}

/// [`soft_bag_ids_from_elements`] with a cooperative [`Budget`]: both
/// enumeration sides tick per node and the `W × U` intersection ticks
/// per `W`-side element. On abort the shared arena holds only valid
/// interned bags (possibly fewer than a full run would produce), so the
/// caller can retry or discard without poisoning the index.
pub fn soft_bag_ids_from_elements_budgeted(
    index: &mut BlockIndex,
    elements: &[BagId],
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Vec<BagId>, DecompError> {
    let u_side = component_union_ids_budgeted(index, k, limits, budget)?;
    let words = index.arena.words_per_bag();
    let workers = softhw_hypergraph::par::num_workers();
    if workers <= 1 {
        // Serial: enumerate and intersect straight into the shared arena.
        let w_side = lambda_union_ids_budgeted(&mut index.arena, elements, k, limits, budget)?;
        let arena = &mut index.arena;
        let mut out: Vec<BagId> = Vec::new();
        let mut seen = IdSet::new();
        let mut w_buf = vec![0u64; words];
        let mut buf = vec![0u64; words];
        for &w in &w_side {
            budget.tick()?;
            w_buf.copy_from_slice(arena.words(w));
            if words_empty(&w_buf) {
                continue; // an empty element yields only empty intersections
            }
            for &u in &u_side {
                // w ⊆ u ⇒ w ∩ u = w, already interned: skip the probe.
                let id = if softhw_hypergraph::arena::words_subset(&w_buf, arena.words(u)) {
                    w
                } else {
                    buf.copy_from_slice(&w_buf);
                    words_intersect_into(arena.words(u), &mut buf);
                    if words_empty(&buf) {
                        continue;
                    }
                    arena.intern_words(&buf)
                };
                if seen.insert(id) {
                    out.push(id);
                    if out.len() > limits.max_bags {
                        return Err(LimitExceeded { what: "max_bags" }.into());
                    }
                }
            }
        }
        out.sort_unstable_by(|&a, &b| index.arena.cmp_bags(a, b));
        Ok(out)
    } else {
        // Parallel: the W-side stays in its worker shards (never touches
        // the shared arena), the W×U intersections land in a second set
        // of shards, and only the final deduplicated candidate set is
        // interned — in content order, so ids are deterministic.
        let (w_sharded, w_ids) = lambda_unions_sharded(&index.arena, elements, k, limits, budget)?;
        let universe = index.arena.universe();
        let shared: &BagArena = &index.arena;
        let inter_workers = workers
            .min(w_ids.len().max(1))
            .min(softhw_hypergraph::arena::MAX_SHARDS);
        let per_chunk: Vec<Result<BagArena, DecompError>> =
            par_chunks(w_ids.len(), inter_workers, |range| {
                let mut local = BagArena::new(universe);
                let mut buf = vec![0u64; words];
                for wi in range {
                    budget.tick()?;
                    let w_words = w_sharded.words(w_ids[wi]);
                    if words_empty(w_words) {
                        continue; // an empty element yields only empty intersections
                    }
                    for &u in &u_side {
                        buf.copy_from_slice(w_words);
                        words_intersect_into(shared.words(u), &mut buf);
                        if !words_empty(&buf) {
                            shard_checked_intern(&mut local, &buf)?;
                            // Per-worker guard so a blow-up aborts during the
                            // fan-out, not only at the merge: worker memory
                            // stays bounded by max_bags.
                            if local.len() > limits.max_bags {
                                return Err(LimitExceeded { what: "max_bags" }.into());
                            }
                        }
                    }
                }
                Ok(local)
            });
        budget.check()?;
        let mut shards = Vec::with_capacity(per_chunk.len());
        for r in per_chunk {
            shards.push(r?);
        }
        let inter =
            ShardedArena::try_from_shards(shards).map_err(|e| LimitExceeded { what: e.what() })?;
        let final_ids = inter.sorted_unique_ids();
        if final_ids.len() > limits.max_bags {
            return Err(LimitExceeded { what: "max_bags" }.into());
        }
        Ok(final_ids
            .into_iter()
            .map(|id| index.arena.intern_words(inter.words(id)))
            .collect())
    }
}

/// `Soft_{H,k}` as interned ids, with the `λ1` pool being `E(H)` itself.
pub fn soft_bag_ids(
    index: &mut BlockIndex,
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BagId>, LimitExceeded> {
    soft_bag_ids_budgeted(index, k, limits, &Budget::unlimited()).map_err(demote)
}

/// [`soft_bag_ids`] with a cooperative [`Budget`] — the budgeted entry
/// point the deadline-aware solvers call.
pub fn soft_bag_ids_budgeted(
    index: &mut BlockIndex,
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Vec<BagId>, DecompError> {
    let _span = softhw_obs::span(softhw_obs::stage::ENUMERATE);
    let h = index.hypergraph_arc().clone();
    let elements: Vec<BagId> = (0..h.num_edges())
        .map(|e| index.arena.intern_words(h.edge(e).blocks()))
        .collect();
    soft_bag_ids_from_elements_budgeted(index, &elements, k, limits, budget)
}

/// Enumerates all unions of between 1 and `k` sets drawn from `elements`,
/// deduplicated ([`BitSet`] convenience wrapper over
/// [`lambda_union_ids`]).
pub fn lambda_unions(
    universe: usize,
    elements: &[BitSet],
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    let mut arena = BagArena::new(universe);
    let ids: Vec<BagId> = elements.iter().map(|e| arena.intern(e)).collect();
    let out = lambda_union_ids(&mut arena, &ids, k, limits)?;
    Ok(out.into_iter().map(|id| arena.to_bitset(id)).collect())
}

/// Enumerates all distinct `⋃C` for `C` a `[λ2]`-component of `h`
/// ([`BitSet`] convenience wrapper over [`component_union_ids`]).
pub fn component_unions(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    let mut index = BlockIndex::new(h);
    let out = component_union_ids(&mut index, k, limits)?;
    Ok(out
        .into_iter()
        .map(|id| index.arena.to_bitset(id))
        .collect())
}

/// Computes `Soft_{H,k}` with explicit guards, given a pre-computed
/// `λ1`-element pool ([`BitSet`] convenience wrapper).
pub fn soft_bags_from_elements(
    h: &Hypergraph,
    elements: &[BitSet],
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    let mut index = BlockIndex::new(h);
    let ids: Vec<BagId> = elements.iter().map(|e| index.arena.intern(e)).collect();
    let out = soft_bag_ids_from_elements(&mut index, &ids, k, limits)?;
    Ok(out
        .into_iter()
        .map(|id| index.arena.to_bitset(id))
        .collect())
}

/// `Soft_{H,k}` per Definition 3, with default limits. Panics if the
/// default limits are exceeded; use [`soft_bags_with`] for explicit
/// handling.
pub fn soft_bags(h: &Hypergraph, k: usize) -> Vec<BitSet> {
    soft_bags_with(h, k, &SoftLimits::default()).expect("Soft_{H,k} generation exceeded limits")
}

/// The *cover bags*: the distinct unions `⋃λ` of 1..k edges — the
/// candidate set the paper's prototype enumerates ("the possible covers,
/// i.e., hypertree nodes", Appendix C.1), whose sizes are what Table 1
/// reports as `|Soft_{H,k}|`. This is the subset of `Soft_{H,k}`
/// obtained with `λ2 = ∅` on connected hypergraphs.
///
/// With `drop_edge_subsumed`, bags strictly contained in a single edge of
/// `H` are removed (the prototype's treatment of subsumed atoms such as
/// `customer_address` in `q_ds`).
pub fn cover_bags(h: &Hypergraph, k: usize, drop_edge_subsumed: bool) -> Vec<BitSet> {
    let mut bags = lambda_unions(h.num_vertices(), h.edges(), k, &SoftLimits::default())
        .expect("cover bag generation exceeded limits");
    if drop_edge_subsumed {
        bags.retain(|b| !h.edges().iter().any(|e| b.is_subset(e) && b != e));
    }
    bags
}

/// `Soft_{H,k}` per Definition 3 with explicit limits.
pub fn soft_bags_with(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    soft_bags_from_elements(h, h.edges(), k, limits)
}

/// Checks whether `bag ∈ Soft_{H,k}` and returns a witness
/// `(λ1, λ2, component-vertex-union)` when it is. This is a *search over
/// the same space* as the generator but short-circuits on the target bag,
/// so it works on hypergraphs where full generation would be too big.
pub fn soft_witness(
    h: &Hypergraph,
    k: usize,
    bag: &BitSet,
    limits: &SoftLimits,
) -> Option<(Vec<usize>, BitSet)> {
    let u_side = component_unions(h, k, limits).ok()?;
    // For each ⋃C ⊇ bag, find ≤ k edges whose union intersected with ⋃C is
    // exactly `bag`: each chosen edge e must have e ∩ ⋃C ⊆ bag, and the
    // chosen edges must cover `bag`.
    for u in &u_side {
        if !bag.is_subset(u) {
            continue;
        }
        let candidates: Vec<usize> = (0..h.num_edges())
            .filter(|&e| {
                let inside = h.edge(e).intersection(u);
                !inside.is_empty() && inside.is_subset(bag) && inside.intersects(bag)
            })
            .collect();
        if let Some(lambda1) = cover_exactly(h, bag, &candidates, k) {
            return Some((lambda1, u.clone()));
        }
    }
    None
}

/// Set-cover of `bag` with at most `k` edges drawn from `candidates`
/// (whose intersections with the relevant region are already known to be
/// within `bag`).
fn cover_exactly(
    h: &Hypergraph,
    bag: &BitSet,
    candidates: &[usize],
    k: usize,
) -> Option<Vec<usize>> {
    fn rec(
        h: &Hypergraph,
        uncovered: &BitSet,
        candidates: &[usize],
        k: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        let Some(pivot) = uncovered.first() else {
            return true;
        };
        if k == 0 {
            return false;
        }
        for &e in candidates {
            if h.edge(e).contains(pivot) && !chosen.contains(&e) {
                let rest = uncovered.difference(h.edge(e));
                chosen.push(e);
                if rec(h, &rest, candidates, k - 1, chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    let mut chosen = Vec::with_capacity(k);
    if rec(h, bag, candidates, k, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

/// The seed's direct `FxHashSet<BitSet>`-based generator, kept as the
/// cross-validation oracle for the arena path (property tests assert the
/// two agree) and as the benchmark baseline the arena speedup is measured
/// against. Not used by any solver.
pub mod reference {
    use super::{LimitExceeded, SoftLimits};
    use softhw_hypergraph::{BitSet, FxHashSet, Hypergraph};

    /// Pre-arena λ-union enumeration (fresh `BitSet` per node, hash-set
    /// dedup).
    pub fn lambda_unions(
        universe: usize,
        elements: &[BitSet],
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Vec<BitSet>, LimitExceeded> {
        let mut seen: FxHashSet<BitSet> = FxHashSet::default();
        let mut budget = limits.max_lambda_sets;
        fn rec(
            elements: &[BitSet],
            start: usize,
            depth_left: usize,
            current: &BitSet,
            seen: &mut FxHashSet<BitSet>,
            budget: &mut usize,
        ) -> Result<(), LimitExceeded> {
            for i in start..elements.len() {
                if *budget == 0 {
                    return Err(LimitExceeded {
                        what: "max_lambda_sets",
                    });
                }
                *budget -= 1;
                let u = current.union(&elements[i]);
                seen.insert(u.clone());
                if depth_left > 1 {
                    rec(elements, i + 1, depth_left - 1, &u, seen, budget)?;
                }
            }
            Ok(())
        }
        if k > 0 {
            rec(
                elements,
                0,
                k,
                &BitSet::empty(universe),
                &mut seen,
                &mut budget,
            )?;
        }
        let mut out: Vec<BitSet> = seen.into_iter().collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Pre-arena `⋃C` enumeration (components recomputed per separator).
    pub fn component_unions(
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Vec<BitSet>, LimitExceeded> {
        let mut seen: FxHashSet<BitSet> = FxHashSet::default();
        let mut budget = limits.max_lambda_sets;
        for comp in h.edge_components(&h.empty_vertex_set()) {
            seen.insert(h.union_of_edge_set(&comp));
        }
        fn rec(
            h: &Hypergraph,
            start: usize,
            depth_left: usize,
            sep: &BitSet,
            seen: &mut FxHashSet<BitSet>,
            budget: &mut usize,
        ) -> Result<(), LimitExceeded> {
            for e in start..h.num_edges() {
                if *budget == 0 {
                    return Err(LimitExceeded {
                        what: "max_lambda_sets",
                    });
                }
                *budget -= 1;
                let s = sep.union(h.edge(e));
                for comp in h.edge_components(&s) {
                    seen.insert(h.union_of_edge_set(&comp));
                }
                if depth_left > 1 {
                    rec(h, e + 1, depth_left - 1, &s, seen, budget)?;
                }
            }
            Ok(())
        }
        if k > 0 {
            rec(h, 0, k, &h.empty_vertex_set(), &mut seen, &mut budget)?;
        }
        let mut out: Vec<BitSet> = seen.into_iter().collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Pre-arena `Soft_{H,k}` generation.
    pub fn soft_bags_with(
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Vec<BitSet>, LimitExceeded> {
        let w_side = lambda_unions(h.num_vertices(), h.edges(), k, limits)?;
        let u_side = component_unions(h, k, limits)?;
        let mut seen: FxHashSet<BitSet> = FxHashSet::default();
        for w in &w_side {
            for u in &u_side {
                let b = w.intersection(u);
                if !b.is_empty() {
                    seen.insert(b);
                    if seen.len() > limits.max_bags {
                        return Err(LimitExceeded { what: "max_bags" });
                    }
                }
            }
        }
        let mut out: Vec<BitSet> = seen.into_iter().collect();
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;

    #[test]
    fn soft_contains_all_small_unions() {
        // Every union of up to k edges is in Soft_{H,k} (λ2 = ∅ gives
        // ⋃C = V on connected H).
        let h = named::cycle(5);
        let bags = soft_bags(&h, 2);
        for e1 in 0..h.num_edges() {
            for e2 in 0..h.num_edges() {
                let u = h.union_of_edges([e1, e2]);
                assert!(bags.contains(&u), "missing union of edges {e1},{e2}");
            }
        }
    }

    #[test]
    fn example1_bags_present() {
        // The four bags of the Figure 1b soft HD of H2 are in Soft_{H2,2}.
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        for target in [
            h.vset(&["2", "6", "7", "a", "b"]),
            h.vset(&["2", "5", "6", "a", "b"]),
            h.vset(&["2", "3", "4", "5", "a", "b"]),
            h.vset(&["1", "2", "7", "8", "a", "b"]),
        ] {
            assert!(
                bags.contains(&target),
                "missing bag {}",
                h.render_vertex_set(&target)
            );
        }
    }

    #[test]
    fn example1_witness_found() {
        // The paper derives {2,6,7,a,b} via λ2 = {{3,4},{2,3,b}} and
        // λ1 = {{2,3,b},{6,7,a}}; our witness search must find *some*
        // witness.
        let h = named::h2();
        let bag = h.vset(&["2", "6", "7", "a", "b"]);
        let (lambda1, u) = soft_witness(&h, 2, &bag, &SoftLimits::default()).expect("witness");
        assert!(lambda1.len() <= 2);
        // witness reconstructs the bag
        let mut w = h.union_of_edges(lambda1);
        w.intersect_with(&u);
        assert_eq!(w, bag);
    }

    #[test]
    fn non_member_rejected() {
        let h = named::h2();
        // {1, 5} is not a bag of Soft_{H2,1}: no single edge contains both.
        let bag = h.vset(&["1", "5"]);
        assert!(soft_witness(&h, 1, &bag, &SoftLimits::default()).is_none());
    }

    #[test]
    fn witness_agrees_with_generator_on_small_graphs() {
        let h = named::cycle(6);
        let bags = soft_bags(&h, 2);
        let limits = SoftLimits::default();
        for bag in &bags {
            assert!(
                soft_witness(&h, 2, bag, &limits).is_some(),
                "generator produced a bag the witness search rejects: {bag:?}"
            );
        }
    }

    #[test]
    fn limits_are_enforced() {
        let h = named::h2();
        let limits = SoftLimits {
            max_lambda_sets: 3,
            max_bags: 1_000,
        };
        assert!(soft_bags_with(&h, 3, &limits).is_err());
    }

    #[test]
    fn soft_monotone_in_k() {
        let h = named::h2();
        let s1 = soft_bags(&h, 1);
        let s2 = soft_bags(&h, 2);
        for b in &s1 {
            assert!(s2.contains(b));
        }
        assert!(s2.len() > s1.len());
    }

    #[test]
    fn arena_generator_agrees_with_reference() {
        // The arena path and the seed's hash-set path must produce the
        // same sorted candidate sets on the paper's named instances.
        for (h, k) in [
            (named::h2(), 1),
            (named::h2(), 2),
            (named::cycle(6), 2),
            (named::grid(3, 3), 2),
            (named::triangle_star(3), 2),
        ] {
            let limits = SoftLimits::default();
            let fast = soft_bags_with(&h, k, &limits).unwrap();
            let slow = reference::soft_bags_with(&h, k, &limits).unwrap();
            assert_eq!(fast, slow, "k = {k}");
            let fast_u = component_unions(&h, k, &limits).unwrap();
            let slow_u = reference::component_unions(&h, k, &limits).unwrap();
            assert_eq!(fast_u, slow_u, "component unions, k = {k}");
            let fast_w = lambda_unions(h.num_vertices(), h.edges(), k, &limits).unwrap();
            let slow_w = reference::lambda_unions(h.num_vertices(), h.edges(), k, &limits).unwrap();
            assert_eq!(fast_w, slow_w, "lambda unions, k = {k}");
        }
    }

    #[test]
    fn canceled_budget_aborts_and_retry_succeeds() {
        let h = named::h2();
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let budget = Budget::cancellable();
        budget.cancel();
        let err = soft_bag_ids_budgeted(&mut index, 2, &limits, &budget).unwrap_err();
        assert!(err.is_budget());
        // Retrying on the *same* index with a fresh budget yields the
        // same candidate set (as vertex sets) as a cold run: the abort
        // left only valid interned bags behind.
        let retry = soft_bag_ids_budgeted(&mut index, 2, &limits, &Budget::unlimited()).unwrap();
        let mut retry: Vec<BitSet> = retry
            .into_iter()
            .map(|id| index.arena.to_bitset(id))
            .collect();
        retry.sort_unstable();
        let mut cold = soft_bags_with(&h, 2, &limits).unwrap();
        cold.sort_unstable();
        assert_eq!(retry, cold);
    }

    #[test]
    fn work_cap_trips_generation_deterministically() {
        let h = named::h2();
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let err =
            soft_bag_ids_budgeted(&mut index, 2, &limits, &Budget::with_work_cap(3)).unwrap_err();
        assert_eq!(err, DecompError::DeadlineExceeded);
    }

    #[test]
    fn shared_index_reuses_component_cache_across_k() {
        let h = named::h2();
        let mut index = BlockIndex::new(&h);
        let limits = SoftLimits::default();
        let _ = soft_bag_ids(&mut index, 1, &limits).unwrap();
        let misses_after_k1 = index.stats().comp_misses;
        let _ = soft_bag_ids(&mut index, 2, &limits).unwrap();
        let stats = index.stats();
        // k = 2 re-enumerates every k = 1 separator; those must all hit.
        assert!(stats.comp_hits > 0, "expected cache hits at k = 2");
        assert!(
            stats.comp_misses > misses_after_k1,
            "k = 2 also explores new separators"
        );
    }
}
