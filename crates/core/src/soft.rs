//! Generation of the candidate bag set `Soft_{H,k}` (Definition 3):
//!
//! ```text
//! Soft_{H,k} = { (⋃λ1) ∩ (⋃C) | C a [λ2]-component of H,
//!                               λ1, λ2 ⊆ E(H), |λ1| ≤ k, |λ2| ≤ k }
//! ```
//!
//! The generator factors the definition into its two independent sides:
//! the `W`-side (`⋃λ1`, all unions of up to `k` edges) and the `U`-side
//! (`⋃C` over all `[λ2]`-components, λ2 ranging over up to `k` edges
//! *including the empty set*, which yields `⋃C = V(H)` on connected
//! hypergraphs). Both sides are deduplicated before taking pairwise
//! intersections, which is what keeps the generator practical.

use softhw_hypergraph::{BitSet, FxHashSet, Hypergraph};

/// Guards against combinatorial blow-up of candidate-bag generation.
#[derive(Clone, Debug)]
pub struct SoftLimits {
    /// Upper bound on the number of λ-subsets enumerated per side.
    pub max_lambda_sets: usize,
    /// Upper bound on the number of distinct candidate bags produced.
    pub max_bags: usize,
}

impl Default for SoftLimits {
    fn default() -> Self {
        SoftLimits {
            max_lambda_sets: 2_000_000,
            max_bags: 1_000_000,
        }
    }
}

/// Error raised when [`SoftLimits`] are exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitExceeded {
    /// Which guard tripped.
    pub what: &'static str,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "soft bag generation limit exceeded: {}", self.what)
    }
}

impl std::error::Error for LimitExceeded {}

/// Enumerates all unions of between 1 and `k` sets drawn from `elements`,
/// deduplicated. This is the `⋃λ1` side of Definition 3 (and, for the
/// iterated variant of Definition 6, `elements` is `E^(i)`).
pub fn lambda_unions(
    universe: usize,
    elements: &[BitSet],
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    let mut seen: FxHashSet<BitSet> = FxHashSet::default();
    let mut budget = limits.max_lambda_sets;
    // DFS with a running union; prune branches whose union has already been
    // produced *at the same remaining depth or deeper* is not sound in
    // general, so we only dedupe final results.
    fn rec(
        elements: &[BitSet],
        start: usize,
        depth_left: usize,
        current: &BitSet,
        seen: &mut FxHashSet<BitSet>,
        budget: &mut usize,
    ) -> Result<(), LimitExceeded> {
        for i in start..elements.len() {
            if *budget == 0 {
                return Err(LimitExceeded {
                    what: "max_lambda_sets",
                });
            }
            *budget -= 1;
            let u = current.union(&elements[i]);
            seen.insert(u.clone());
            if depth_left > 1 {
                rec(elements, i + 1, depth_left - 1, &u, seen, budget)?;
            }
        }
        Ok(())
    }
    if k > 0 {
        rec(
            elements,
            0,
            k,
            &BitSet::empty(universe),
            &mut seen,
            &mut budget,
        )?;
    }
    let mut out: Vec<BitSet> = seen.into_iter().collect();
    out.sort_unstable();
    Ok(out)
}

/// Enumerates all distinct `⋃C` for `C` a `[λ2]`-component of `h`, with
/// `λ2` ranging over the subsets of `E(H)` of size 0 to `k`.
/// This is the `⋃C` side of Definition 3.
pub fn component_unions(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    let mut seen: FxHashSet<BitSet> = FxHashSet::default();
    let mut budget = limits.max_lambda_sets;
    // λ2 = ∅ first.
    for comp in h.edge_components(&h.empty_vertex_set()) {
        seen.insert(h.union_of_edge_set(&comp));
    }
    fn rec(
        h: &Hypergraph,
        start: usize,
        depth_left: usize,
        sep: &BitSet,
        seen: &mut FxHashSet<BitSet>,
        budget: &mut usize,
    ) -> Result<(), LimitExceeded> {
        for e in start..h.num_edges() {
            if *budget == 0 {
                return Err(LimitExceeded {
                    what: "max_lambda_sets",
                });
            }
            *budget -= 1;
            let s = sep.union(h.edge(e));
            for comp in h.edge_components(&s) {
                seen.insert(h.union_of_edge_set(&comp));
            }
            if depth_left > 1 {
                rec(h, e + 1, depth_left - 1, &s, seen, budget)?;
            }
        }
        Ok(())
    }
    if k > 0 {
        rec(h, 0, k, &h.empty_vertex_set(), &mut seen, &mut budget)?;
    }
    let mut out: Vec<BitSet> = seen.into_iter().collect();
    out.sort_unstable();
    Ok(out)
}

/// Computes `Soft_{H,k}` with explicit guards, given a pre-computed
/// `λ1`-element pool (for Definition 3 this is `E(H)` itself; the iterated
/// hierarchy of Definition 6 passes `E^(i)`).
pub fn soft_bags_from_elements(
    h: &Hypergraph,
    elements: &[BitSet],
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    let w_side = lambda_unions(h.num_vertices(), elements, k, limits)?;
    let u_side = component_unions(h, k, limits)?;
    let mut seen: FxHashSet<BitSet> = FxHashSet::default();
    for w in &w_side {
        for u in &u_side {
            let b = w.intersection(u);
            if !b.is_empty() {
                seen.insert(b);
                if seen.len() > limits.max_bags {
                    return Err(LimitExceeded { what: "max_bags" });
                }
            }
        }
    }
    let mut out: Vec<BitSet> = seen.into_iter().collect();
    out.sort_unstable();
    Ok(out)
}

/// `Soft_{H,k}` per Definition 3, with default limits. Panics if the
/// default limits are exceeded; use [`soft_bags_with`] for explicit
/// handling.
pub fn soft_bags(h: &Hypergraph, k: usize) -> Vec<BitSet> {
    soft_bags_with(h, k, &SoftLimits::default()).expect("Soft_{H,k} generation exceeded limits")
}

/// The *cover bags*: the distinct unions `⋃λ` of 1..k edges — the
/// candidate set the paper's prototype enumerates ("the possible covers,
/// i.e., hypertree nodes", Appendix C.1), whose sizes are what Table 1
/// reports as `|Soft_{H,k}|`. This is the subset of `Soft_{H,k}`
/// obtained with `λ2 = ∅` on connected hypergraphs.
///
/// With `drop_edge_subsumed`, bags strictly contained in a single edge of
/// `H` are removed (the prototype's treatment of subsumed atoms such as
/// `customer_address` in `q_ds`).
pub fn cover_bags(h: &Hypergraph, k: usize, drop_edge_subsumed: bool) -> Vec<BitSet> {
    let mut bags = lambda_unions(h.num_vertices(), h.edges(), k, &SoftLimits::default())
        .expect("cover bag generation exceeded limits");
    if drop_edge_subsumed {
        bags.retain(|b| {
            !h.edges()
                .iter()
                .any(|e| b.is_subset(e) && b != e)
        });
    }
    bags
}

/// `Soft_{H,k}` per Definition 3 with explicit limits.
pub fn soft_bags_with(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
) -> Result<Vec<BitSet>, LimitExceeded> {
    soft_bags_from_elements(h, h.edges(), k, limits)
}

/// Checks whether `bag ∈ Soft_{H,k}` and returns a witness
/// `(λ1, λ2, component-vertex-union)` when it is. This is a *search over
/// the same space* as the generator but short-circuits on the target bag,
/// so it works on hypergraphs where full generation would be too big.
pub fn soft_witness(
    h: &Hypergraph,
    k: usize,
    bag: &BitSet,
    limits: &SoftLimits,
) -> Option<(Vec<usize>, BitSet)> {
    let u_side = component_unions(h, k, limits).ok()?;
    // For each ⋃C ⊇ bag, find ≤ k edges whose union intersected with ⋃C is
    // exactly `bag`: each chosen edge e must have e ∩ ⋃C ⊆ bag, and the
    // chosen edges must cover `bag`.
    for u in &u_side {
        if !bag.is_subset(u) {
            continue;
        }
        let candidates: Vec<usize> = (0..h.num_edges())
            .filter(|&e| {
                let inside = h.edge(e).intersection(u);
                !inside.is_empty() && inside.is_subset(bag) && inside.intersects(bag)
            })
            .collect();
        if let Some(lambda1) = cover_exactly(h, bag, &candidates, k) {
            return Some((lambda1, u.clone()));
        }
    }
    None
}

/// Set-cover of `bag` with at most `k` edges drawn from `candidates`
/// (whose intersections with the relevant region are already known to be
/// within `bag`).
fn cover_exactly(
    h: &Hypergraph,
    bag: &BitSet,
    candidates: &[usize],
    k: usize,
) -> Option<Vec<usize>> {
    fn rec(
        h: &Hypergraph,
        uncovered: &BitSet,
        candidates: &[usize],
        k: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        let Some(pivot) = uncovered.first() else {
            return true;
        };
        if k == 0 {
            return false;
        }
        for &e in candidates {
            if h.edge(e).contains(pivot) && !chosen.contains(&e) {
                let rest = uncovered.difference(h.edge(e));
                chosen.push(e);
                if rec(h, &rest, candidates, k - 1, chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    let mut chosen = Vec::with_capacity(k);
    if rec(h, bag, candidates, k, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;

    #[test]
    fn soft_contains_all_small_unions() {
        // Every union of up to k edges is in Soft_{H,k} (λ2 = ∅ gives
        // ⋃C = V on connected H).
        let h = named::cycle(5);
        let bags = soft_bags(&h, 2);
        for e1 in 0..h.num_edges() {
            for e2 in 0..h.num_edges() {
                let u = h.union_of_edges([e1, e2]);
                assert!(bags.contains(&u), "missing union of edges {e1},{e2}");
            }
        }
    }

    #[test]
    fn example1_bags_present() {
        // The four bags of the Figure 1b soft HD of H2 are in Soft_{H2,2}.
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        for target in [
            h.vset(&["2", "6", "7", "a", "b"]),
            h.vset(&["2", "5", "6", "a", "b"]),
            h.vset(&["2", "3", "4", "5", "a", "b"]),
            h.vset(&["1", "2", "7", "8", "a", "b"]),
        ] {
            assert!(
                bags.contains(&target),
                "missing bag {}",
                h.render_vertex_set(&target)
            );
        }
    }

    #[test]
    fn example1_witness_found() {
        // The paper derives {2,6,7,a,b} via λ2 = {{3,4},{2,3,b}} and
        // λ1 = {{2,3,b},{6,7,a}}; our witness search must find *some*
        // witness.
        let h = named::h2();
        let bag = h.vset(&["2", "6", "7", "a", "b"]);
        let (lambda1, u) = soft_witness(&h, 2, &bag, &SoftLimits::default()).expect("witness");
        assert!(lambda1.len() <= 2);
        // witness reconstructs the bag
        let mut w = h.union_of_edges(lambda1);
        w.intersect_with(&u);
        assert_eq!(w, bag);
    }

    #[test]
    fn non_member_rejected() {
        let h = named::h2();
        // {1, 5} is not a bag of Soft_{H2,1}: no single edge contains both.
        let bag = h.vset(&["1", "5"]);
        assert!(soft_witness(&h, 1, &bag, &SoftLimits::default()).is_none());
    }

    #[test]
    fn witness_agrees_with_generator_on_small_graphs() {
        let h = named::cycle(6);
        let bags = soft_bags(&h, 2);
        let limits = SoftLimits::default();
        for bag in &bags {
            assert!(
                soft_witness(&h, 2, bag, &limits).is_some(),
                "generator produced a bag the witness search rejects: {bag:?}"
            );
        }
    }

    #[test]
    fn limits_are_enforced() {
        let h = named::h2();
        let limits = SoftLimits {
            max_lambda_sets: 3,
            max_bags: 1_000,
        };
        assert!(soft_bags_with(&h, 3, &limits).is_err());
    }

    #[test]
    fn soft_monotone_in_k() {
        let h = named::h2();
        let s1 = soft_bags(&h, 1);
        let s2 = soft_bags(&h, 2);
        for b in &s1 {
            assert!(s2.contains(b));
        }
        assert!(s2.len() > s1.len());
    }
}
