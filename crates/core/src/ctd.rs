//! The `CandidateTD` problem and **Algorithm 1** of the paper
//! (Section 3): given a hypergraph `H` and a set `S` of candidate bags,
//! decide whether a CompNF tree decomposition using only bags from `S`
//! exists — and, going beyond the paper's decision version, extract one.
//!
//! Terminology (paper, Section 3):
//! - a **block** is a pair `(S, C)` with `C` a maximal set of
//!   `[S]`-connected vertices (or `C = ∅`, which is trivially satisfied and
//!   never materialised here);
//! - `(X, Y) ≤ (S, C)` iff `X ∪ Y ⊆ S ∪ C` and `Y ⊆ C`;
//! - a bag `X ≠ S` is a **basis** of `(S, C)` if, with `(X, Y_1..Y_ℓ)` the
//!   blocks headed by `X` that are `≤ (S, C)`: (1) `C ⊆ X ∪ ⋃Y_i`,
//!   (2) every edge intersecting `C` is inside `X ∪ ⋃Y_i`, and (3) every
//!   `(X, Y_i)` is satisfied. (Condition (1) follows from (2) since the
//!   hypergraph has no isolated vertices.)
//!
//! Storage routes through the bag arena: candidate bags, components, and
//! closures are interned [`BagId`]s in an instance-owned [`BagArena`];
//! dedup is interning, the satisfaction DP is a flat `Vec` over block
//! ids, and the hot subset/union checks run word-level on the packed
//! storage. Instances are built from a shared [`BlockIndex`] so the
//! `[S]`-components of every candidate bag are computed once per
//! hypergraph — not once per solver call (see [`CtdInstance::build`]).
//!
//! The satisfaction DP runs in Jacobi rounds (each round scans all
//! unsatisfied blocks against the previous round's state), which makes
//! the per-block base checks embarrassingly parallel — they fan out via
//! [`softhw_hypergraph::par::par_map`] under the `parallel` feature with
//! an index-ordered merge, so accept/reject and timestamps are identical
//! in serial and parallel builds. Satisfaction timestamps make the
//! extraction provably terminating: a block's basis only references
//! blocks satisfied strictly earlier.

use crate::td::TreeDecomposition;
use softhw_hypergraph::arena::words_subset;
use softhw_hypergraph::par::par_map;
use softhw_hypergraph::{BagArena, BagId, BitSet, BlockIndex, Hypergraph};

/// One materialised block `(S, C)` with `C ≠ ∅`.
#[derive(Clone, Debug)]
pub struct Block {
    /// Index of the head bag, or `None` for the `∅` head.
    pub head: Option<usize>,
    /// The component `C` (a vertex set disjoint from the head bag),
    /// interned in the instance arena.
    pub comp: BagId,
    /// `S ∪ C`, interned in the instance arena.
    pub closure: BagId,
    /// Edges `e` with `e ∩ C ≠ ∅` (the coverage obligations of the block).
    pub touching: Vec<usize>,
}

/// A prepared `CandidateTD` instance: interned, deduplicated bags plus
/// the full block table. Shared by Algorithm 1 ([`CtdInstance::decide`])
/// and the constrained/preference variants in [`crate::ctd_opt`].
pub struct CtdInstance<'h> {
    /// The hypergraph.
    pub h: &'h Hypergraph,
    /// Instance-owned arena holding bags, components, and closures.
    arena: BagArena,
    /// Deduplicated, non-empty candidate bags (ids into the arena).
    pub bag_ids: Vec<BagId>,
    /// Materialised views of the bags, index-aligned with `bag_ids`
    /// (for evaluator callbacks and decomposition output).
    bag_sets: Vec<BitSet>,
    /// All blocks with non-empty component.
    pub blocks: Vec<Block>,
    /// For each bag index, the blocks it heads.
    pub blocks_by_head: Vec<Vec<usize>>,
    /// Blocks headed by `∅` — one per connected component of `H`.
    pub root_blocks: Vec<usize>,
}

/// Result of the satisfaction DP of Algorithm 1.
pub struct Satisfaction {
    /// For each block: `Some((basis bag index, timestamp))` if satisfied.
    pub basis: Vec<Option<(usize, u32)>>,
    /// Whether all root blocks are satisfied (the "Accept" of Algorithm 1).
    pub accept: bool,
}

impl<'h> CtdInstance<'h> {
    /// Builds the block table for hypergraph `h` and candidate bag set
    /// `bags` (empty bags are dropped, duplicates merged) using a private
    /// [`BlockIndex`]. Prefer [`CtdInstance::build`] with a shared index
    /// when decomposing the same hypergraph repeatedly.
    pub fn new(h: &'h Hypergraph, bags: &[BitSet]) -> Self {
        let mut index = BlockIndex::new(h);
        let ids: Vec<BagId> = bags.iter().map(|b| index.arena.intern(b)).collect();
        Self::build(&mut index, &ids)
    }

    /// Builds an instance from bags interned in a shared [`BlockIndex`].
    /// Component and touching-edge computation hits the index cache, so
    /// consecutive instances over the same hypergraph (e.g. the `shw`
    /// width sweep, or repeated constrained queries) only pay for bags
    /// never seen before.
    pub fn build(index: &mut BlockIndex<'h>, bags: &[BagId]) -> Self {
        let h = index.hypergraph();
        let mut arena = BagArena::new(h.num_vertices());
        // Dedup and drop empties, preserving first-occurrence order (the
        // arena assigns dense ids in insertion order).
        let mut bag_ids: Vec<BagId> = Vec::new();
        let mut index_ids: Vec<BagId> = Vec::new();
        for &b in bags {
            if index.arena.bag_is_empty(b) {
                continue;
            }
            let before = arena.len();
            let local = arena.copy_from(&index.arena, b);
            if arena.len() > before {
                bag_ids.push(local);
                index_ids.push(b);
            }
        }
        let mut blocks = Vec::new();
        let mut blocks_by_head = vec![Vec::new(); bag_ids.len()];
        let mut comp_scratch: Vec<BagId> = Vec::new();
        for (sid, (&local_bag, &index_bag)) in bag_ids.iter().zip(&index_ids).enumerate() {
            let r = index.components(index_bag);
            comp_scratch.clear();
            comp_scratch.extend_from_slice(index.comps(r));
            for &comp in comp_scratch.iter() {
                let touching_range = index.edges_touching(comp);
                let touching: Vec<usize> = index
                    .touching(touching_range)
                    .iter()
                    .map(|&e| e as usize)
                    .collect();
                let local_comp = arena.copy_from(&index.arena, comp);
                let closure = arena.union(local_bag, local_comp);
                blocks_by_head[sid].push(blocks.len());
                blocks.push(Block {
                    head: Some(sid),
                    comp: local_comp,
                    closure,
                    touching,
                });
            }
        }
        let mut root_blocks = Vec::new();
        let empty = index.empty();
        let r = index.components(empty);
        comp_scratch.clear();
        comp_scratch.extend_from_slice(index.comps(r));
        for &comp in comp_scratch.iter() {
            let touching_range = index.edges_touching(comp);
            let touching: Vec<usize> = index
                .touching(touching_range)
                .iter()
                .map(|&e| e as usize)
                .collect();
            let local_comp = arena.copy_from(&index.arena, comp);
            root_blocks.push(blocks.len());
            blocks.push(Block {
                head: None,
                comp: local_comp,
                closure: local_comp,
                touching,
            });
        }
        let bag_sets: Vec<BitSet> = bag_ids.iter().map(|&id| arena.to_bitset(id)).collect();
        CtdInstance {
            h,
            arena,
            bag_ids,
            bag_sets,
            blocks,
            blocks_by_head,
            root_blocks,
        }
    }

    /// Number of (deduplicated, non-empty) candidate bags.
    #[inline]
    pub fn num_bags(&self) -> usize {
        self.bag_ids.len()
    }

    /// Materialised view of bag `x`.
    #[inline]
    pub fn bag(&self, x: usize) -> &BitSet {
        &self.bag_sets[x]
    }

    /// The instance's arena (for word-level algebra over blocks/bags).
    #[inline]
    pub fn arena(&self) -> &BagArena {
        &self.arena
    }

    /// Loads bag `x` into a scratch buffer for incremental union building.
    #[inline]
    pub fn load_bag(&self, x: usize, buf: &mut Vec<u64>) {
        self.arena.read_into(self.bag_ids[x], buf);
    }

    /// Checks the basis conditions of bag `x` for block `b`, given the
    /// current satisfaction state. Returns `true` iff `x` is a basis.
    /// `buf` is caller-provided scratch (cleared here) so round-scans
    /// don't allocate per check.
    pub fn is_basis_with(
        &self,
        b: usize,
        x: usize,
        satisfied: &[bool],
        buf: &mut Vec<u64>,
    ) -> bool {
        let blk = &self.blocks[b];
        if blk.head == Some(x) {
            return false; // X ≠ S
        }
        if !self.arena.is_subset(self.bag_ids[x], blk.closure) {
            return false;
        }
        self.load_bag(x, buf);
        for &b2 in &self.blocks_by_head[x] {
            if self.arena.is_subset(self.blocks[b2].comp, blk.comp) {
                if !satisfied[b2] {
                    return false;
                }
                self.arena.union_into(self.blocks[b2].comp, buf);
            }
        }
        blk.touching
            .iter()
            .all(|&e| words_subset(self.h.edge(e).blocks(), buf))
    }

    /// The child blocks a basis `x` of block `b` delegates to: blocks
    /// headed by `x` whose component lies inside `b`'s component.
    pub fn child_blocks(&self, b: usize, x: usize) -> Vec<usize> {
        self.blocks_by_head[x]
            .iter()
            .copied()
            .filter(|&b2| {
                self.arena
                    .is_subset(self.blocks[b2].comp, self.blocks[b].comp)
            })
            .collect()
    }

    /// Runs the satisfaction DP of Algorithm 1 to fixpoint, in Jacobi
    /// rounds: each round checks every unsatisfied block against the
    /// previous round's state, fanning the per-block base checks out via
    /// [`par_map`]. The round results are merged in block order, so the
    /// outcome is deterministic and identical across serial/parallel
    /// builds.
    pub fn satisfy(&self) -> Satisfaction {
        let nb = self.blocks.len();
        let mut satisfied = vec![false; nb];
        let mut basis: Vec<Option<(usize, u32)>> = vec![None; nb];
        let mut clock: u32 = 0;
        loop {
            let snapshot = &satisfied;
            let round: Vec<Option<usize>> = par_map(nb, |b| {
                if snapshot[b] {
                    return None;
                }
                let mut buf: Vec<u64> = Vec::new();
                (0..self.num_bags()).find(|&x| self.is_basis_with(b, x, snapshot, &mut buf))
            });
            let mut changed = false;
            for (b, found) in round.into_iter().enumerate() {
                if satisfied[b] {
                    continue;
                }
                if let Some(x) = found {
                    satisfied[b] = true;
                    basis[b] = Some((x, clock));
                    clock += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Satisfaction { basis, accept }
    }

    /// Extracts the tree decomposition certified by a satisfaction table.
    /// Returns `None` if the instance was rejected. For disconnected
    /// hypergraphs, the per-component subtrees are chained under the first
    /// component's root (bags of distinct components are vertex-disjoint,
    /// so validity is preserved).
    pub fn extract(&self, sat: &Satisfaction) -> Option<TreeDecomposition> {
        if !sat.accept || self.root_blocks.is_empty() {
            return None;
        }
        let mut td: Option<TreeDecomposition> = None;
        for &rb in &self.root_blocks {
            let (x, _) = sat.basis[rb].expect("accepted root block has a basis");
            match td.as_mut() {
                None => {
                    let mut fresh = TreeDecomposition::new(self.bag(x).clone());
                    let root = fresh.root();
                    self.extract_children(sat, rb, x, root, &mut fresh);
                    td = Some(fresh);
                }
                Some(t) => {
                    let at = t.root();
                    let node = t.add_child(at, self.bag(x).clone());
                    self.extract_children(sat, rb, x, node, t);
                }
            }
        }
        td
    }

    fn extract_children(
        &self,
        sat: &Satisfaction,
        b: usize,
        x: usize,
        node: usize,
        td: &mut TreeDecomposition,
    ) {
        for b2 in self.child_blocks(b, x) {
            let (x2, ts2) = sat.basis[b2].expect("basis condition (3)");
            debug_assert!(
                ts2 < sat.basis[b].map(|(_, t)| t).unwrap_or(u32::MAX),
                "timestamps strictly decrease along extraction"
            );
            let child = td.add_child(node, self.bag(x2).clone());
            self.extract_children(sat, b2, x2, child, td);
        }
    }

    /// Algorithm 1 end-to-end: decide and extract.
    pub fn decide(&self) -> Option<TreeDecomposition> {
        let sat = self.satisfy();
        self.extract(&sat)
    }
}

/// Convenience wrapper: does a CompNF candidate tree decomposition of `h`
/// with bags from `bags` exist? Returns the witness decomposition.
pub fn candidate_td(h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
    CtdInstance::new(h, bags).decide()
}

/// [`candidate_td`] over bags already interned in a shared index.
pub fn candidate_td_ids(index: &mut BlockIndex, bags: &[BagId]) -> Option<TreeDecomposition> {
    CtdInstance::build(index, bags).decide()
}

/// Verifies that `td` is a valid tree decomposition of `h` whose bags all
/// come from `bags`. Used to machine-check explicit decompositions from
/// the paper on hypergraphs too large for full search.
pub fn is_candidate_td(h: &Hypergraph, td: &TreeDecomposition, bags: &[BitSet]) -> bool {
    if td.validate(h).is_err() {
        return false;
    }
    td.bags().iter().all(|b| bags.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn trivial_single_bag() {
        let h = named::cycle(4);
        let bags = vec![h.all_vertices()];
        let td = candidate_td(&h, &bags).expect("the full bag always works");
        assert_eq!(td.num_nodes(), 1);
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn rejects_when_bags_insufficient() {
        let h = named::cycle(4);
        // Only tiny bags: no decomposition can cover all edges.
        let bags = vec![h.vset(&["v0", "v1"]), h.vset(&["v2", "v3"])];
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn path_decomposes_with_edge_bags() {
        let h = named::cycle(6);
        // For a cycle, pairs of opposite-ish edges are needed; for the
        // simple smoke test give it the Soft bags of width 2.
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(C6) = 2");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
    }

    #[test]
    fn h2_soft_bags_admit_ctd_at_k2() {
        // Example 1: shw(H2) = 2.
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(H2) = 2 per Example 1");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
        // every bag must have an edge cover with at most 2 edges
        for bag in td.bags() {
            assert!(crate::cover::find_cover(&h, bag, 2).is_some());
        }
    }

    #[test]
    fn h2_soft_bags_reject_at_k1() {
        let h = named::h2();
        let bags = soft_bags(&h, 1);
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn extraction_timestamps_guard() {
        // Exercised implicitly by all successful extractions (debug_assert).
        let h = named::h2();
        let inst = CtdInstance::new(&h, &soft_bags(&h, 2));
        let sat = inst.satisfy();
        assert!(sat.accept);
        let td = inst.extract(&sat).unwrap();
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn disconnected_hypergraph_handled() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        let bags = vec![h.vset(&["a", "b"]), h.vset(&["c", "d"])];
        let td = candidate_td(&h, &bags).expect("two isolated edges");
        assert_eq!(td.validate(&h), Ok(()));
        assert_eq!(td.num_nodes(), 2);
    }

    #[test]
    fn is_candidate_td_checks_bag_membership() {
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let (h2, td) = crate::td::tests::h2_soft_td();
        assert_eq!(h.num_edges(), h2.num_edges());
        assert!(is_candidate_td(&h2, &td, &bags));
        // With a restricted bag list the same TD is not a CTD.
        let few = vec![h.all_vertices()];
        assert!(!is_candidate_td(&h2, &td, &few));
    }

    #[test]
    fn dedup_drops_duplicates_and_empties() {
        let h = named::cycle(4);
        let bags = vec![
            h.empty_vertex_set(),
            h.all_vertices(),
            h.all_vertices(),
            h.vset(&["v0", "v1"]),
        ];
        let inst = CtdInstance::new(&h, &bags);
        assert_eq!(inst.num_bags(), 2);
    }

    #[test]
    fn shared_index_instances_agree_with_fresh_ones() {
        // Building many instances off one index must give the same
        // accept/reject and valid decompositions as isolated builds.
        let h = named::h2();
        let mut index = BlockIndex::new(&h);
        for k in 1..=3 {
            let ids = crate::soft::soft_bag_ids(&mut index, k, &crate::soft::SoftLimits::default())
                .unwrap();
            let via_index = candidate_td_ids(&mut index, &ids);
            let via_fresh = candidate_td(&h, &soft_bags(&h, k));
            assert_eq!(via_index.is_some(), via_fresh.is_some(), "k = {k}");
            if let Some(td) = via_index {
                assert_eq!(td.validate(&h), Ok(()));
                assert!(td.is_comp_nf(&h));
            }
        }
    }
}
