//! The `CandidateTD` problem and **Algorithm 1** of the paper
//! (Section 3): given a hypergraph `H` and a set `S` of candidate bags,
//! decide whether a CompNF tree decomposition using only bags from `S`
//! exists — and, going beyond the paper's decision version, extract one.
//!
//! Terminology (paper, Section 3):
//! - a **block** is a pair `(S, C)` with `C` a maximal set of
//!   `[S]`-connected vertices (or `C = ∅`, which is trivially satisfied and
//!   never materialised here);
//! - `(X, Y) ≤ (S, C)` iff `X ∪ Y ⊆ S ∪ C` and `Y ⊆ C`;
//! - a bag `X ≠ S` is a **basis** of `(S, C)` if, with `(X, Y_1..Y_ℓ)` the
//!   blocks headed by `X` that are `≤ (S, C)`: (1) `C ⊆ X ∪ ⋃Y_i`,
//!   (2) every edge intersecting `C` is inside `X ∪ ⋃Y_i`, and (3) every
//!   `(X, Y_i)` is satisfied. (Condition (1) follows from (2) since the
//!   hypergraph has no isolated vertices.)
//!
//! Storage routes through the bag arena: candidate bags, components, and
//! closures are interned [`BagId`]s in an instance-owned [`BagArena`];
//! dedup is interning, the satisfaction DP is a flat `Vec` over block
//! ids, and the hot subset/union checks run word-level on the packed
//! storage. Instances are built from a shared [`BlockIndex`] so the
//! `[S]`-components of every candidate bag are computed once per
//! hypergraph — not once per solver call (see [`CtdInstance::build`]).
//!
//! ## The worklist satisfaction engine
//!
//! The basis conditions split into a *state-independent* part — `X ≠ S`,
//! `X ⊆ S ∪ C`, and the edge-coverage condition (2), whose witness union
//! `X ∪ ⋃Y_i` always includes **all** child blocks — and a *state-
//! dependent* part, condition (3): every child block satisfied. The
//! instance therefore precomputes, per block, its **viable candidates**
//! (bags passing the state-independent conditions) with their child-block
//! lists in CSR form, plus the child→parents **reverse index**
//! ([`softhw_hypergraph::Csr`]). The DP then runs as a worklist in
//! frontier waves: wave 0 checks every block, and a block re-enters the
//! frontier only when one of its children newly became satisfied — each
//! recheck is a pure scan of precomputed child lists, with zero word-level
//! set algebra. Under the `parallel` feature each wave fans out via
//! [`par_map`] and merges in ascending block order, so accept/reject,
//! bases, and timestamps are identical across serial and parallel builds
//! — and identical to the retained Jacobi reference
//! ([`CtdInstance::satisfy_jacobi`]), because a frontier wave satisfies
//! exactly the blocks a full Jacobi round would (a block's satisfiability
//! only changes when a child's bit flips).
//!
//! Satisfaction timestamps make the extraction provably terminating: a
//! block's basis only references blocks satisfied strictly earlier.

use crate::td::TreeDecomposition;
use softhw_hypergraph::arena::words_subset;
use softhw_hypergraph::par::par_map;
use softhw_hypergraph::{BagArena, BagId, BitSet, BlockIndex, Csr, Hypergraph};
use std::sync::Arc;

/// One materialised block `(S, C)` with `C ≠ ∅`.
#[derive(Clone, Debug)]
pub struct Block {
    /// Index of the head bag, or `None` for the `∅` head.
    pub head: Option<usize>,
    /// The component `C` (a vertex set disjoint from the head bag),
    /// interned in the instance arena.
    pub comp: BagId,
    /// `S ∪ C`, interned in the instance arena.
    pub closure: BagId,
    /// Edges `e` with `e ∩ C ≠ ∅` (the coverage obligations of the block).
    pub touching: Vec<usize>,
}

/// The precomputed dependency structure of the satisfaction DP.
///
/// The basis conditions factor through two equivalence classes, which is
/// what keeps the precompute near-linear instead of a full
/// `blocks × bags` scan:
///
/// - the child-block list of a candidate `x` for block `b` — and with it
///   the edge-coverage condition (2) — depends only on `b`'s *component*
///   (`children = blocks headed by x with comp ⊆ C`, and the witness
///   union is `x ∪ ⋃children`), so both are computed once per distinct
///   component ("comp group") and shared by every block with that
///   component;
/// - the `X ⊆ S ∪ C` condition depends only on `b`'s *closure set*, so
///   it is computed once per distinct closure as a bag bitmask.
///
/// A block's viable candidates are then its comp group's coverage-viable
/// candidates filtered by its closure mask and the `X ≠ S` check — pure
/// bit tests at DP time. The reverse index is two-level: child block →
/// comp groups listing it → blocks of those groups (a superset of the
/// exact parent set, which is sound: a spurious recheck is a no-op).
struct Deps {
    /// Block → comp-group index.
    group_of: Vec<u32>,
    /// Block → closure-group index.
    closure_of: Vec<u32>,
    /// Per comp group `g`, the range `g_cand_start[g]..g_cand_start[g+1]`
    /// of coverage-viable candidate entries in `g_cand_x`/`g_child_start`.
    g_cand_start: Vec<u32>,
    /// Candidate bag index per coverage-viable `(group, bag)` pair,
    /// ascending within each group.
    g_cand_x: Vec<u32>,
    /// Per entry `ci`, the range `g_child_start[ci]..g_child_start[ci+1]`
    /// of its child blocks in `g_child_data`.
    g_child_start: Vec<u32>,
    /// Child block ids of all coverage-viable pairs, concatenated.
    g_child_data: Vec<u32>,
    /// Closure-group × bag bitmask (`xwords` words per row): bit `x` of
    /// row `cl` is set iff bag `x` ⊆ closure.
    closure_ok: Vec<u64>,
    /// Words per `closure_ok` row.
    xwords: usize,
    /// Child block → comp groups with a coverage-viable candidate
    /// delegating to it.
    child_groups: Csr,
    /// Comp group → its blocks.
    group_blocks: Csr,
}

impl Deps {
    /// Is bag `x` inside the closure of closure-group `cl`?
    #[inline]
    fn closure_allows(&self, cl: u32, x: u32) -> bool {
        let w = self.closure_ok[cl as usize * self.xwords + (x / 64) as usize];
        w >> (x % 64) & 1 != 0
    }

    /// Range of coverage-viable candidate entries of comp group `g`.
    #[inline]
    fn group_range(&self, g: u32) -> std::ops::Range<usize> {
        self.g_cand_start[g as usize] as usize..self.g_cand_start[g as usize + 1] as usize
    }

    /// Child blocks of candidate entry `ci`.
    #[inline]
    fn children_of_entry(&self, ci: usize) -> &[u32] {
        &self.g_child_data[self.g_child_start[ci] as usize..self.g_child_start[ci + 1] as usize]
    }
}

/// A prepared `CandidateTD` instance: interned, deduplicated bags plus
/// the full block table and the DP dependency structure. Shared by
/// Algorithm 1 ([`CtdInstance::decide`]) and the constrained/preference
/// variants in [`crate::ctd_opt`]. Owns its hypergraph (shared [`Arc`]),
/// so instances can be kept in cross-query caches.
pub struct CtdInstance {
    /// The hypergraph.
    pub h: Arc<Hypergraph>,
    /// Instance-owned arena holding bags, components, and closures.
    arena: BagArena,
    /// Deduplicated, non-empty candidate bags (ids into the arena).
    pub bag_ids: Vec<BagId>,
    /// Materialised views of the bags, index-aligned with `bag_ids`
    /// (for evaluator callbacks and decomposition output).
    bag_sets: Vec<BitSet>,
    /// All blocks with non-empty component.
    pub blocks: Vec<Block>,
    /// For each bag index, the blocks it heads.
    pub blocks_by_head: Vec<Vec<usize>>,
    /// Blocks headed by `∅` — one per connected component of `H`.
    pub root_blocks: Vec<usize>,
    /// Worklist dependency structure (viable candidates + reverse index).
    deps: Deps,
}

/// Result of the satisfaction DP of Algorithm 1.
pub struct Satisfaction {
    /// For each block: `Some((basis bag index, timestamp))` if satisfied.
    pub basis: Vec<Option<(usize, u32)>>,
    /// Whether all root blocks are satisfied (the "Accept" of Algorithm 1).
    pub accept: bool,
}

impl CtdInstance {
    /// Builds the block table for hypergraph `h` and candidate bag set
    /// `bags` (empty bags are dropped, duplicates merged) using a private
    /// [`BlockIndex`]. Prefer [`CtdInstance::build`] with a shared index
    /// (or [`crate::cache::DecompCache`]) when decomposing the same
    /// hypergraph repeatedly.
    pub fn new(h: &Hypergraph, bags: &[BitSet]) -> Self {
        let mut index = BlockIndex::new(h);
        let ids: Vec<BagId> = bags.iter().map(|b| index.arena.intern(b)).collect();
        Self::build(&mut index, &ids)
    }

    /// Builds an instance from bags interned in a shared [`BlockIndex`].
    /// Component and touching-edge computation hits the index cache, so
    /// consecutive instances over the same hypergraph (e.g. the `shw`
    /// width sweep, or repeated constrained queries) only pay for bags
    /// never seen before.
    pub fn build(index: &mut BlockIndex, bags: &[BagId]) -> Self {
        let h = index.hypergraph_arc().clone();
        let mut arena = BagArena::new(h.num_vertices());
        // Dedup and drop empties, preserving first-occurrence order (the
        // arena assigns dense ids in insertion order).
        let mut bag_ids: Vec<BagId> = Vec::new();
        let mut index_ids: Vec<BagId> = Vec::new();
        for &b in bags {
            if index.arena.bag_is_empty(b) {
                continue;
            }
            let before = arena.len();
            let local = arena.copy_from(&index.arena, b);
            if arena.len() > before {
                bag_ids.push(local);
                index_ids.push(b);
            }
        }
        let mut blocks = Vec::new();
        let mut blocks_by_head = vec![Vec::new(); bag_ids.len()];
        let mut comp_scratch: Vec<BagId> = Vec::new();
        for (sid, (&local_bag, &index_bag)) in bag_ids.iter().zip(&index_ids).enumerate() {
            let r = index.components(index_bag);
            comp_scratch.clear();
            comp_scratch.extend_from_slice(index.comps(r));
            for &comp in comp_scratch.iter() {
                let touching_range = index.edges_touching(comp);
                let touching: Vec<usize> = index
                    .touching(touching_range)
                    .iter()
                    .map(|&e| e as usize)
                    .collect();
                let local_comp = arena.copy_from(&index.arena, comp);
                let closure = arena.union(local_bag, local_comp);
                blocks_by_head[sid].push(blocks.len());
                blocks.push(Block {
                    head: Some(sid),
                    comp: local_comp,
                    closure,
                    touching,
                });
            }
        }
        let mut root_blocks = Vec::new();
        let empty = index.empty();
        let r = index.components(empty);
        comp_scratch.clear();
        comp_scratch.extend_from_slice(index.comps(r));
        for &comp in comp_scratch.iter() {
            let touching_range = index.edges_touching(comp);
            let touching: Vec<usize> = index
                .touching(touching_range)
                .iter()
                .map(|&e| e as usize)
                .collect();
            let local_comp = arena.copy_from(&index.arena, comp);
            root_blocks.push(blocks.len());
            blocks.push(Block {
                head: None,
                comp: local_comp,
                closure: local_comp,
                touching,
            });
        }
        let bag_sets: Vec<BitSet> = bag_ids.iter().map(|&id| arena.to_bitset(id)).collect();
        let deps = Self::build_deps(&h, &arena, &bag_ids, &blocks, &blocks_by_head);
        CtdInstance {
            h,
            arena,
            bag_ids,
            bag_sets,
            blocks,
            blocks_by_head,
            root_blocks,
            deps,
        }
    }

    /// Precomputes the dependency tables (see [`Deps`]): group blocks by
    /// component and by closure, compute children + coverage once per
    /// `(comp group, bag)` pair and the closure masks once per
    /// `(closure group, bag)` pair, then wire the two-level reverse
    /// index. The per-group scans are independent, so they fan out via
    /// [`par_map`] with a deterministic group-ordered stitch.
    fn build_deps(
        h: &Hypergraph,
        arena: &BagArena,
        bag_ids: &[BagId],
        blocks: &[Block],
        blocks_by_head: &[Vec<usize>],
    ) -> Deps {
        let nb = blocks.len();
        let nx = bag_ids.len();
        let words = arena.words_per_bag();
        // Group blocks by component and by closure (ids are interned, so
        // equality is id equality). Groups are numbered in first-block
        // order; group_comps holds one representative block per group.
        let mut comp_group: softhw_hypergraph::FxHashMap<BagId, u32> =
            softhw_hypergraph::FxHashMap::default();
        let mut closure_group: softhw_hypergraph::FxHashMap<BagId, u32> =
            softhw_hypergraph::FxHashMap::default();
        let mut group_of: Vec<u32> = Vec::with_capacity(nb);
        let mut closure_of: Vec<u32> = Vec::with_capacity(nb);
        let mut group_rep: Vec<u32> = Vec::new(); // representative block per comp group
        let mut closure_rep: Vec<BagId> = Vec::new();
        for (b, blk) in blocks.iter().enumerate() {
            let g = *comp_group.entry(blk.comp).or_insert_with(|| {
                group_rep.push(b as u32);
                (group_rep.len() - 1) as u32
            });
            group_of.push(g);
            let cl = *closure_group.entry(blk.closure).or_insert_with(|| {
                closure_rep.push(blk.closure);
                (closure_rep.len() - 1) as u32
            });
            closure_of.push(cl);
        }
        let ng = group_rep.len();
        let ncl = closure_rep.len();
        // Per closure group: the bag mask `x ⊆ closure`. Computed first
        // so the (much larger) comp-group scan can restrict itself to
        // bags inside *some* closure of the group's blocks.
        let xwords = nx.div_ceil(64).max(1);
        let mask_rows: Vec<Vec<u64>> = par_map(ncl, |cl| {
            let closure = closure_rep[cl];
            let mut row = vec![0u64; xwords];
            for (x, &bag) in bag_ids.iter().enumerate() {
                if arena.is_subset(bag, closure) {
                    row[x / 64] |= 1u64 << (x % 64);
                }
            }
            row
        });
        let mut closure_ok = Vec::with_capacity(ncl * xwords);
        for row in mask_rows {
            closure_ok.extend_from_slice(&row);
        }
        // Per comp group, the union of its blocks' closure masks: a bag
        // outside every closure can never be a basis for any block of the
        // group, so the candidate scan skips it entirely. This prunes the
        // `groups × bags` precompute to nearly the viable-pair count.
        let mut allowed = vec![0u64; ng * xwords];
        for (b, &g) in group_of.iter().enumerate() {
            let cl = closure_of[b] as usize;
            for w in 0..xwords {
                allowed[g as usize * xwords + w] |= closure_ok[cl * xwords + w];
            }
        }
        // Per comp group: coverage-viable candidates with child lists.
        // Coverage (condition (2)) is state-independent — the witness
        // union of a successful basis always contains all child
        // components — and `e ⊆ u` for every touching edge is equivalent
        // to `⋃touching ⊆ u`, so it is one subset test per candidate.
        let per_group: Vec<(Vec<u32>, Vec<u32>, Vec<u32>)> = par_map(ng, |g| {
            let blk = &blocks[group_rep[g] as usize];
            let mut cover = vec![0u64; words];
            for &e in &blk.touching {
                softhw_hypergraph::arena::words_union_into(h.edge(e).blocks(), &mut cover);
            }
            // Necessary condition on any basis: the witness union is
            // `X ∪ ⋃Y_i` with every `Y_i ⊆ C`, so coverage vertices
            // outside `C` can only come from the bag — `cover ∖ C ⊆ X`.
            // One subset test that eliminates most bags before the child
            // scan.
            let comp_words = arena.words(blk.comp);
            let req: Vec<u64> = cover
                .iter()
                .zip(comp_words)
                .map(|(&c, &m)| c & !m)
                .collect();
            let mut cand_x: Vec<u32> = Vec::new();
            let mut counts: Vec<u32> = Vec::new();
            let mut children: Vec<u32> = Vec::new();
            let mut buf: Vec<u64> = vec![0u64; words];
            for (w, &aw) in allowed[g * xwords..(g + 1) * xwords].iter().enumerate() {
                let mut bits = aw;
                while bits != 0 {
                    let x = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let bag = bag_ids[x];
                    if !words_subset(&req, arena.words(bag)) {
                        continue;
                    }
                    let begin = children.len();
                    // Fast path: the bag alone covers the obligations.
                    if words_subset(&cover, arena.words(bag)) {
                        for &b2 in &blocks_by_head[x] {
                            if arena.is_subset(blocks[b2].comp, blk.comp) {
                                children.push(b2 as u32);
                            }
                        }
                    } else {
                        buf.copy_from_slice(arena.words(bag));
                        for &b2 in &blocks_by_head[x] {
                            if arena.is_subset(blocks[b2].comp, blk.comp) {
                                children.push(b2 as u32);
                                arena.union_into(blocks[b2].comp, &mut buf);
                            }
                        }
                        if !words_subset(&cover, &buf) {
                            children.truncate(begin);
                            continue;
                        }
                    }
                    cand_x.push(x as u32);
                    counts.push((children.len() - begin) as u32);
                }
            }
            (cand_x, counts, children)
        });
        // Stitch the group tables and wire the reverse index.
        let mut g_cand_start: Vec<u32> = Vec::with_capacity(ng + 1);
        let mut g_cand_x: Vec<u32> = Vec::new();
        let mut g_child_start: Vec<u32> = vec![0];
        let mut g_child_data: Vec<u32> = Vec::new();
        let mut child_group_pairs: Vec<(u32, u32)> = Vec::new();
        g_cand_start.push(0);
        for (g, (xs, counts, children)) in per_group.into_iter().enumerate() {
            g_cand_x.extend_from_slice(&xs);
            g_cand_start.push(g_cand_x.len() as u32);
            let mut off = 0usize;
            for &n in &counts {
                g_child_start.push((g_child_data.len() + off + n as usize) as u32);
                off += n as usize;
            }
            for &c in &children {
                child_group_pairs.push((c, g as u32));
            }
            g_child_data.extend_from_slice(&children);
        }
        let child_groups = Csr::from_pairs(nb, child_group_pairs);
        let group_blocks = Csr::from_pairs(
            ng,
            group_of
                .iter()
                .enumerate()
                .map(|(b, &g)| (g, b as u32))
                .collect(),
        );
        Deps {
            group_of,
            closure_of,
            g_cand_start,
            g_cand_x,
            g_child_start,
            g_child_data,
            closure_ok,
            xwords,
            child_groups,
            group_blocks,
        }
    }

    /// Number of (deduplicated, non-empty) candidate bags.
    #[inline]
    pub fn num_bags(&self) -> usize {
        self.bag_ids.len()
    }

    /// Materialised view of bag `x`.
    #[inline]
    pub fn bag(&self, x: usize) -> &BitSet {
        &self.bag_sets[x]
    }

    /// The instance's arena (for word-level algebra over blocks/bags).
    #[inline]
    pub fn arena(&self) -> &BagArena {
        &self.arena
    }

    /// Loads bag `x` into a scratch buffer for incremental union building.
    #[inline]
    pub fn load_bag(&self, x: usize, buf: &mut Vec<u64>) {
        self.arena.read_into(self.bag_ids[x], buf);
    }

    /// Checks the basis conditions of bag `x` for block `b` from first
    /// principles, given the current satisfaction state. This is the
    /// reference predicate of the Jacobi engine; the worklist engine
    /// answers the same question from the precomputed tables.
    /// `buf` is caller-provided scratch (cleared here) so round-scans
    /// don't allocate per check.
    pub fn is_basis_with(
        &self,
        b: usize,
        x: usize,
        satisfied: &[bool],
        buf: &mut Vec<u64>,
    ) -> bool {
        let blk = &self.blocks[b];
        if blk.head == Some(x) {
            return false; // X ≠ S
        }
        if !self.arena.is_subset(self.bag_ids[x], blk.closure) {
            return false;
        }
        self.load_bag(x, buf);
        for &b2 in &self.blocks_by_head[x] {
            if self.arena.is_subset(self.blocks[b2].comp, blk.comp) {
                if !satisfied[b2] {
                    return false;
                }
                self.arena.union_into(self.blocks[b2].comp, buf);
            }
        }
        blk.touching
            .iter()
            .all(|&e| words_subset(self.h.edge(e).blocks(), buf))
    }

    /// The viable candidates of block `b` — bags passing the
    /// state-independent basis conditions — with their precomputed child
    /// blocks, ascending in bag index. A viable `x` is a basis iff all
    /// its children are satisfied.
    pub fn viable_candidates(&self, b: usize) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        let head = self.blocks[b].head.map(|x| x as u32);
        let cl = self.deps.closure_of[b];
        self.deps
            .group_range(self.deps.group_of[b])
            .filter_map(move |ci| {
                let x = self.deps.g_cand_x[ci];
                if Some(x) == head || !self.deps.closure_allows(cl, x) {
                    return None;
                }
                Some((x as usize, self.deps.children_of_entry(ci)))
            })
    }

    /// The child blocks a basis `x` of block `b` delegates to: blocks
    /// headed by `x` whose component lies inside `b`'s component.
    /// Returns the precomputed slice — no per-call allocation (this sits
    /// inside the DP and extraction hot loops). Empty when `x` has no
    /// coverage-viable entry for `b`'s component.
    pub fn child_blocks(&self, b: usize, x: usize) -> &[u32] {
        let r = self.deps.group_range(self.deps.group_of[b]);
        let (lo, hi) = (r.start, r.end);
        match self.deps.g_cand_x[lo..hi].binary_search(&(x as u32)) {
            Ok(pos) => self.deps.children_of_entry(lo + pos),
            Err(_) => &[],
        }
    }

    /// Invokes `f` for every block that may need rechecking when block
    /// `b` newly becomes satisfied (or improves): the blocks of every
    /// comp group with a coverage-viable candidate delegating to `b`.
    /// This is the (slightly conservative) reverse index driving the
    /// worklist rechecks of both DPs; a spurious recheck is a no-op.
    #[inline]
    pub fn for_each_parent(&self, b: usize, mut f: impl FnMut(u32)) {
        for &g in self.deps.child_groups.row(b) {
            for &p in self.deps.group_blocks.row(g as usize) {
                f(p);
            }
        }
    }

    /// First viable candidate of `b` whose children are all satisfied.
    #[inline]
    fn first_ready_candidate(&self, b: usize, satisfied: &[bool]) -> Option<u32> {
        let head = self.blocks[b].head.map(|x| x as u32);
        let cl = self.deps.closure_of[b];
        for ci in self.deps.group_range(self.deps.group_of[b]) {
            let x = self.deps.g_cand_x[ci];
            if Some(x) == head || !self.deps.closure_allows(cl, x) {
                continue;
            }
            if self
                .deps
                .children_of_entry(ci)
                .iter()
                .all(|&c| satisfied[c as usize])
            {
                return Some(x);
            }
        }
        None
    }

    /// Runs the satisfaction DP of Algorithm 1 to fixpoint with the
    /// dependency-driven worklist engine: wave 0 checks every block
    /// against the precomputed viable-candidate tables; afterwards a
    /// block is rechecked only when one of its children newly became
    /// satisfied (via the reverse index). Waves snapshot the previous
    /// wave's state and merge in ascending block order — fanned out via
    /// [`par_map`] under the `parallel` feature — so bases and timestamps
    /// are identical to the serial run and to the Jacobi reference
    /// ([`CtdInstance::satisfy_jacobi`]).
    pub fn satisfy(&self) -> Satisfaction {
        let nb = self.blocks.len();
        let mut satisfied = vec![false; nb];
        let mut basis: Vec<Option<(usize, u32)>> = vec![None; nb];
        let mut clock: u32 = 0;
        let mut frontier: Vec<u32> = (0..nb as u32).collect();
        let mut next: Vec<u32> = Vec::new();
        let mut queued = vec![false; nb];
        while !frontier.is_empty() {
            let snapshot = &satisfied;
            let found: Vec<Option<u32>> = par_map(frontier.len(), |i| {
                let b = frontier[i] as usize;
                if snapshot[b] {
                    return None;
                }
                self.first_ready_candidate(b, snapshot)
            });
            next.clear();
            for (i, f) in found.into_iter().enumerate() {
                let b = frontier[i] as usize;
                if let Some(x) = f {
                    satisfied[b] = true;
                    basis[b] = Some((x as usize, clock));
                    clock += 1;
                    self.for_each_parent(b, |p| {
                        if !satisfied[p as usize] && !queued[p as usize] {
                            queued[p as usize] = true;
                            next.push(p);
                        }
                    });
                }
            }
            // Ascending block order keeps wave-internal processing — and
            // thus timestamps — identical to a Jacobi round.
            next.sort_unstable();
            for &p in &next {
                queued[p as usize] = false;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Satisfaction { basis, accept }
    }

    /// The seed's Jacobi-round satisfaction DP, retained as the reference
    /// the worklist engine is property-tested against: each round rescans
    /// every unsatisfied block against every bag with
    /// [`CtdInstance::is_basis_with`]. Produces bit-identical
    /// [`Satisfaction`] tables to [`CtdInstance::satisfy`] — a frontier
    /// wave satisfies exactly the blocks a Jacobi round would.
    pub fn satisfy_jacobi(&self) -> Satisfaction {
        let nb = self.blocks.len();
        let mut satisfied = vec![false; nb];
        let mut basis: Vec<Option<(usize, u32)>> = vec![None; nb];
        let mut clock: u32 = 0;
        loop {
            let snapshot = &satisfied;
            let round: Vec<Option<usize>> = par_map(nb, |b| {
                if snapshot[b] {
                    return None;
                }
                let mut buf: Vec<u64> = Vec::new();
                (0..self.num_bags()).find(|&x| self.is_basis_with(b, x, snapshot, &mut buf))
            });
            let mut changed = false;
            for (b, found) in round.into_iter().enumerate() {
                if satisfied[b] {
                    continue;
                }
                if let Some(x) = found {
                    satisfied[b] = true;
                    basis[b] = Some((x, clock));
                    clock += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Satisfaction { basis, accept }
    }

    /// Extracts the tree decomposition certified by a satisfaction table.
    /// Returns `None` if the instance was rejected. For disconnected
    /// hypergraphs, the per-component subtrees are chained under the first
    /// component's root (bags of distinct components are vertex-disjoint,
    /// so validity is preserved).
    pub fn extract(&self, sat: &Satisfaction) -> Option<TreeDecomposition> {
        if !sat.accept || self.root_blocks.is_empty() {
            return None;
        }
        let mut td: Option<TreeDecomposition> = None;
        for &rb in &self.root_blocks {
            let (x, _) = sat.basis[rb].expect("accepted root block has a basis");
            match td.as_mut() {
                None => {
                    let mut fresh = TreeDecomposition::new(self.bag(x).clone());
                    let root = fresh.root();
                    self.extract_children(sat, rb, x, root, &mut fresh);
                    td = Some(fresh);
                }
                Some(t) => {
                    let at = t.root();
                    let node = t.add_child(at, self.bag(x).clone());
                    self.extract_children(sat, rb, x, node, t);
                }
            }
        }
        td
    }

    fn extract_children(
        &self,
        sat: &Satisfaction,
        b: usize,
        x: usize,
        node: usize,
        td: &mut TreeDecomposition,
    ) {
        for &b2 in self.child_blocks(b, x) {
            let b2 = b2 as usize;
            let (x2, ts2) = sat.basis[b2].expect("basis condition (3)");
            debug_assert!(
                ts2 < sat.basis[b].map(|(_, t)| t).unwrap_or(u32::MAX),
                "timestamps strictly decrease along extraction"
            );
            let child = td.add_child(node, self.bag(x2).clone());
            self.extract_children(sat, b2, x2, child, td);
        }
    }

    /// Algorithm 1 end-to-end: decide and extract.
    pub fn decide(&self) -> Option<TreeDecomposition> {
        let sat = self.satisfy();
        self.extract(&sat)
    }
}

/// Convenience wrapper: does a CompNF candidate tree decomposition of `h`
/// with bags from `bags` exist? Returns the witness decomposition.
pub fn candidate_td(h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
    CtdInstance::new(h, bags).decide()
}

/// [`candidate_td`] over bags already interned in a shared index.
pub fn candidate_td_ids(index: &mut BlockIndex, bags: &[BagId]) -> Option<TreeDecomposition> {
    CtdInstance::build(index, bags).decide()
}

/// Verifies that `td` is a valid tree decomposition of `h` whose bags all
/// come from `bags`. Used to machine-check explicit decompositions from
/// the paper on hypergraphs too large for full search.
pub fn is_candidate_td(h: &Hypergraph, td: &TreeDecomposition, bags: &[BitSet]) -> bool {
    if td.validate(h).is_err() {
        return false;
    }
    td.bags().iter().all(|b| bags.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn trivial_single_bag() {
        let h = named::cycle(4);
        let bags = vec![h.all_vertices()];
        let td = candidate_td(&h, &bags).expect("the full bag always works");
        assert_eq!(td.num_nodes(), 1);
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn rejects_when_bags_insufficient() {
        let h = named::cycle(4);
        // Only tiny bags: no decomposition can cover all edges.
        let bags = vec![h.vset(&["v0", "v1"]), h.vset(&["v2", "v3"])];
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn path_decomposes_with_edge_bags() {
        let h = named::cycle(6);
        // For a cycle, pairs of opposite-ish edges are needed; for the
        // simple smoke test give it the Soft bags of width 2.
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(C6) = 2");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
    }

    #[test]
    fn h2_soft_bags_admit_ctd_at_k2() {
        // Example 1: shw(H2) = 2.
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(H2) = 2 per Example 1");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
        // every bag must have an edge cover with at most 2 edges
        for bag in td.bags() {
            assert!(crate::cover::find_cover(&h, bag, 2).is_some());
        }
    }

    #[test]
    fn h2_soft_bags_reject_at_k1() {
        let h = named::h2();
        let bags = soft_bags(&h, 1);
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn extraction_timestamps_guard() {
        // Exercised implicitly by all successful extractions (debug_assert).
        let h = named::h2();
        let inst = CtdInstance::new(&h, &soft_bags(&h, 2));
        let sat = inst.satisfy();
        assert!(sat.accept);
        let td = inst.extract(&sat).unwrap();
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn worklist_agrees_with_jacobi_reference() {
        // Full table equality — bases and timestamps, not just accept.
        for (h, k) in [
            (named::h2(), 1),
            (named::h2(), 2),
            (named::cycle(6), 2),
            (named::grid(3, 3), 2),
            (named::triangle_star(3), 2),
        ] {
            let inst = CtdInstance::new(&h, &soft_bags(&h, k));
            let fast = inst.satisfy();
            let slow = inst.satisfy_jacobi();
            assert_eq!(fast.accept, slow.accept, "k = {k}");
            assert_eq!(fast.basis, slow.basis, "k = {k}");
        }
    }

    #[test]
    fn viable_candidates_match_first_principles() {
        let h = named::h2();
        let inst = CtdInstance::new(&h, &soft_bags(&h, 2));
        let all_true = vec![true; inst.blocks.len()];
        let mut buf = Vec::new();
        for b in 0..inst.blocks.len() {
            let viable: Vec<usize> = inst.viable_candidates(b).map(|(x, _)| x).collect();
            let direct: Vec<usize> = (0..inst.num_bags())
                .filter(|&x| inst.is_basis_with(b, x, &all_true, &mut buf))
                .collect();
            assert_eq!(viable, direct, "block {b}");
            for (x, kids) in inst.viable_candidates(b) {
                assert_eq!(inst.child_blocks(b, x), kids);
            }
        }
    }

    #[test]
    fn disconnected_hypergraph_handled() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        let bags = vec![h.vset(&["a", "b"]), h.vset(&["c", "d"])];
        let td = candidate_td(&h, &bags).expect("two isolated edges");
        assert_eq!(td.validate(&h), Ok(()));
        assert_eq!(td.num_nodes(), 2);
    }

    #[test]
    fn is_candidate_td_checks_bag_membership() {
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let (h2, td) = crate::td::tests::h2_soft_td();
        assert_eq!(h.num_edges(), h2.num_edges());
        assert!(is_candidate_td(&h2, &td, &bags));
        // With a restricted bag list the same TD is not a CTD.
        let few = vec![h.all_vertices()];
        assert!(!is_candidate_td(&h2, &td, &few));
    }

    #[test]
    fn dedup_drops_duplicates_and_empties() {
        let h = named::cycle(4);
        let bags = vec![
            h.empty_vertex_set(),
            h.all_vertices(),
            h.all_vertices(),
            h.vset(&["v0", "v1"]),
        ];
        let inst = CtdInstance::new(&h, &bags);
        assert_eq!(inst.num_bags(), 2);
    }

    #[test]
    fn shared_index_instances_agree_with_fresh_ones() {
        // Building many instances off one index must give the same
        // accept/reject and valid decompositions as isolated builds.
        let h = named::h2();
        let mut index = BlockIndex::new(&h);
        for k in 1..=3 {
            let ids = crate::soft::soft_bag_ids(&mut index, k, &crate::soft::SoftLimits::default())
                .unwrap();
            let via_index = candidate_td_ids(&mut index, &ids);
            let via_fresh = candidate_td(&h, &soft_bags(&h, k));
            assert_eq!(via_index.is_some(), via_fresh.is_some(), "k = {k}");
            if let Some(td) = via_index {
                assert_eq!(td.validate(&h), Ok(()));
                assert!(td.is_comp_nf(&h));
            }
        }
    }
}
