//! The `CandidateTD` problem and **Algorithm 1** of the paper
//! (Section 3): given a hypergraph `H` and a set `S` of candidate bags,
//! decide whether a CompNF tree decomposition using only bags from `S`
//! exists — and, going beyond the paper's decision version, extract one.
//!
//! Terminology (paper, Section 3):
//! - a **block** is a pair `(S, C)` with `C` a maximal set of
//!   `[S]`-connected vertices (or `C = ∅`, which is trivially satisfied and
//!   never materialised here);
//! - `(X, Y) ≤ (S, C)` iff `X ∪ Y ⊆ S ∪ C` and `Y ⊆ C`;
//! - a bag `X ≠ S` is a **basis** of `(S, C)` if, with `(X, Y_1..Y_ℓ)` the
//!   blocks headed by `X` that are `≤ (S, C)`: (1) `C ⊆ X ∪ ⋃Y_i`,
//!   (2) every edge intersecting `C` is inside `X ∪ ⋃Y_i`, and (3) every
//!   `(X, Y_i)` is satisfied. (Condition (1) follows from (2) since the
//!   hypergraph has no isolated vertices.)
//!
//! Storage routes through the bag arena: candidate bags, components, and
//! closures are interned [`BagId`]s in an instance-owned [`BagArena`];
//! dedup is interning, the satisfaction DP is a flat `Vec` over block
//! ids, and the hot subset/union checks run word-level on the packed
//! storage. Instances are built from a shared [`BlockIndex`] so the
//! `[S]`-components of every candidate bag are computed once per
//! hypergraph — not once per solver call (see [`CtdInstance::build`]).
//!
//! ## The worklist satisfaction engine
//!
//! The basis conditions split into a *state-independent* part — `X ≠ S`,
//! `X ⊆ S ∪ C`, and the edge-coverage condition (2), whose witness union
//! `X ∪ ⋃Y_i` always includes **all** child blocks — and a *state-
//! dependent* part, condition (3): every child block satisfied. The
//! instance therefore precomputes, per block, its **viable candidates**
//! (bags passing the state-independent conditions) with their child-block
//! lists in CSR form, plus the child→parents **reverse index**
//! ([`softhw_hypergraph::Csr`]). The DP then runs as a worklist in
//! frontier waves: wave 0 checks every block, and a block re-enters the
//! frontier only when one of its children newly became satisfied — each
//! recheck is a pure scan of precomputed child lists, with zero word-level
//! set algebra. Under the `parallel` feature each wave fans out via
//! [`par_map`] and merges in ascending block order, so accept/reject,
//! bases, and timestamps are identical across serial and parallel builds
//! — and identical to the retained Jacobi reference
//! ([`CtdInstance::satisfy_jacobi`]), because a frontier wave satisfies
//! exactly the blocks a full Jacobi round would (a block's satisfiability
//! only changes when a child's bit flips).
//!
//! Satisfaction timestamps make the extraction provably terminating: a
//! block's basis only references blocks satisfied strictly earlier.

use crate::budget::Budget;
use crate::error::DecompError;
use crate::td::TreeDecomposition;
use softhw_hypergraph::arena::{words_subset, words_union_into, IdSet};
use softhw_hypergraph::par::{par_join, par_map};
use softhw_hypergraph::{BagArena, BagId, BitSet, BlockIndex, Csr, FxHashMap, Hypergraph};
use std::sync::Arc;

/// One materialised block `(S, C)` with `C ≠ ∅`.
#[derive(Clone, Copy, Debug)]
pub struct Block {
    /// Index of the head bag, or `None` for the `∅` head.
    pub head: Option<usize>,
    /// The component `C` (a vertex set disjoint from the head bag),
    /// interned in the instance arena.
    pub comp: BagId,
    /// `S ∪ C`, interned in the instance arena.
    pub closure: BagId,
    /// `C ∪ ⋃{e : e ∩ C ≠ ∅}`, interned in the instance arena — the
    /// block's coverage obligation folded into one set. Condition (2)
    /// ("every edge intersecting `C` lies inside the witness union `u`")
    /// is equivalent to `cover ⊆ u` whenever `C ⊆ u`, which every
    /// coverage test here guarantees by construction (the witness union
    /// includes all child components, which partition `C ∖ X`). Storing
    /// the union instead of the touching-edge list is what keeps `k = 2`
    /// HyperBench instances in memory: the per-block edge lists total
    /// hundreds of millions of entries, the interned unions a few
    /// thousand distinct rows.
    pub cover: BagId,
}

/// The precomputed dependency structure of the satisfaction DP.
///
/// The child-block list of a candidate `x` for block `b` — and with it
/// the edge-coverage condition (2) — depends only on `b`'s *component*
/// (`children = blocks headed by x with comp ⊆ C`, and the witness
/// union is `x ∪ ⋃children`), so both are computed once per distinct
/// component ("comp group") and shared by every block with that
/// component. That keeps the precompute output-sensitive — near the
/// coverage-viable pair count — instead of a full `blocks × bags` scan:
/// candidates are found through the inverted vertex→bags index (one AND
/// per required coverage vertex), never by enumerating bags.
///
/// The remaining, block-specific basis conditions — `X ⊆ S ∪ C` and
/// `X ≠ S` — are *not* tabulated: they are a single interned-subset test
/// and an index compare at DP time, so per-closure bag masks (which cost
/// `closures × bags` bits — tens of gigabytes on `k = 2` HyperBench)
/// buy nothing. A block's viable candidates are its comp group's
/// entries filtered by those two checks on the fly. The reverse index is
/// two-level: child block → comp groups listing it → blocks of those
/// groups (a superset of the exact parent set, which is sound: a
/// spurious recheck is a no-op).
struct Deps {
    /// Block → comp-group index.
    group_of: Vec<u32>,
    /// Representative block per comp group (its first block; supplies the
    /// component and coverage obligations shared by the whole group).
    group_rep: Vec<u32>,
    /// Component id → comp group (persistent so incremental extensions
    /// keep group numbering identical to a cold build).
    comp_group: FxHashMap<BagId, u32>,
    /// Per comp group `g`, the range `g_cand_start[g]..g_cand_start[g+1]`
    /// of coverage-viable candidate entries in `g_cand_x`/`g_child_start`.
    g_cand_start: Vec<u32>,
    /// Candidate bag index per coverage-viable `(group, bag)` pair,
    /// ascending within each group.
    g_cand_x: Vec<u32>,
    /// Per entry `ci`, the range `g_child_start[ci]..g_child_start[ci+1]`
    /// of its child blocks in `g_child_data`.
    g_child_start: Vec<u32>,
    /// Child block ids of all coverage-viable pairs, concatenated.
    g_child_data: Vec<u32>,
    /// Vertex × bag bitmask (`xwords` words per row): bit `x` of row `v`
    /// is set iff vertex `v` ∈ bag `x`. This is the inverted index both
    /// the cold build and the incremental extension scan candidates
    /// through: "bags ⊇ req" is an AND over `req`'s rows instead of a
    /// subset test per bag.
    vertex_bags: Vec<u64>,
    /// Words per `vertex_bags` row.
    xwords: usize,
    /// Child block → comp groups with a coverage-viable candidate
    /// delegating to it.
    child_groups: Csr,
    /// Comp group → its blocks.
    group_blocks: Csr,
}

impl Deps {
    /// Range of coverage-viable candidate entries of comp group `g`.
    #[inline]
    fn group_range(&self, g: u32) -> std::ops::Range<usize> {
        self.g_cand_start[g as usize] as usize..self.g_cand_start[g as usize + 1] as usize
    }

    /// Child blocks of candidate entry `ci`.
    #[inline]
    fn children_of_entry(&self, ci: usize) -> &[u32] {
        &self.g_child_data[self.g_child_start[ci] as usize..self.g_child_start[ci + 1] as usize]
    }

    /// Approximate heap footprint in bytes of the dependency tables.
    fn approx_bytes(&self) -> u64 {
        let u32s = self.group_of.capacity()
            + self.group_rep.capacity()
            + self.g_cand_start.capacity()
            + self.g_cand_x.capacity()
            + self.g_child_start.capacity()
            + self.g_child_data.capacity();
        (u32s * 4
            + self.vertex_bags.capacity() * 8
            + self.comp_group.len() * (std::mem::size_of::<(BagId, u32)>() + 8)) as u64
            + self.child_groups.approx_bytes()
            + self.group_blocks.approx_bytes()
    }
}

/// A prepared `CandidateTD` instance: interned, deduplicated bags plus
/// the full block table and the DP dependency structure. Shared by
/// Algorithm 1 ([`CtdInstance::decide`]) and the constrained/preference
/// variants in [`crate::ctd_opt`]. Owns its hypergraph (shared [`Arc`]),
/// so instances can be kept in cross-query caches.
pub struct CtdInstance {
    /// The hypergraph.
    pub h: Arc<Hypergraph>,
    /// Instance-owned arena holding bags, components, and closures.
    arena: BagArena,
    /// Deduplicated, non-empty candidate bags (ids into the arena).
    pub bag_ids: Vec<BagId>,
    /// Lazily materialised views of the bags, index-aligned with
    /// `bag_ids` (for evaluator callbacks and decomposition output).
    /// A bag is materialised on first [`CtdInstance::bag`] access — a
    /// width sweep only ever touches the handful of bags its final
    /// witness uses, so eager materialisation was pure overhead.
    bag_sets: Vec<std::sync::OnceLock<BitSet>>,
    /// The shared-index ids the bags were built from, index-aligned with
    /// `bag_ids` (the incremental extension resolves new bags' blocks
    /// against the index).
    index_ids: Vec<BagId>,
    /// Index ids already part of the instance (extension dedup).
    seen_index: IdSet,
    /// All blocks with non-empty component. Root blocks come first, then
    /// each bag's blocks in bag order; [`CtdInstance::extend`] appends
    /// new bags' blocks at the end, so block ids are stable across
    /// extensions and match a cold build over the same bag sequence.
    pub blocks: Vec<Block>,
    /// For each bag index, the `(first block, count)` range of the
    /// blocks it heads — a bag's blocks are always appended
    /// consecutively, in both cold builds and extensions, so the
    /// adjacency is two `u32`s per bag instead of a heap list.
    pub blocks_by_head: Vec<(u32, u32)>,
    /// Blocks headed by `∅` — one per connected component of `H`.
    pub root_blocks: Vec<usize>,
    /// Worklist dependency structure (viable candidates + reverse index).
    deps: Deps,
}

/// Result of the satisfaction DP of Algorithm 1.
pub struct Satisfaction {
    /// For each block: `Some((basis bag index, timestamp))` if satisfied.
    pub basis: Vec<Option<(usize, u32)>>,
    /// Whether all root blocks are satisfied (the "Accept" of Algorithm 1).
    pub accept: bool,
}

impl Satisfaction {
    /// Approximate heap footprint in bytes (the basis table).
    pub fn approx_bytes(&self) -> u64 {
        (self.basis.capacity() * std::mem::size_of::<Option<(usize, u32)>>()) as u64
    }
}

/// What one [`CtdInstance::extend`] call changed: the instance sizes
/// before the extension plus the blocks whose candidate sets changed.
/// Feed it (with the pre-extension [`Satisfaction`]) to
/// [`CtdInstance::satisfy_extend`] to bring the DP state up to date
/// without rechecking blocks the extension could not have affected.
pub struct ExtendDelta {
    /// Number of candidate bags before the extension.
    pub prev_bags: usize,
    /// Number of blocks before the extension.
    pub prev_blocks: usize,
    /// Blocks whose viable-candidate set changed (every new block, plus
    /// the blocks of pre-existing comp groups that gained candidate
    /// entries), ascending. These seed the incremental worklist; all
    /// other rechecks flow through the child→parents reverse index.
    pub dirty: Vec<u32>,
}

/// Bits `wi*64..` of a word that index elements below `universe`.
#[inline]
fn word_tail_mask(universe: usize, wi: usize) -> u64 {
    let bits = universe.saturating_sub(wi * 64).min(64);
    if bits == 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// Widens a row-major `rows × old_w` word matrix to `rows × new_w`,
/// zero-filling the new high words of every row.
fn restride_rows(data: &mut Vec<u64>, rows: usize, old_w: usize, new_w: usize) {
    debug_assert_eq!(data.len(), rows * old_w);
    if old_w == new_w {
        return;
    }
    let mut wide = vec![0u64; rows * new_w];
    for r in 0..rows {
        wide[r * new_w..r * new_w + old_w].copy_from_slice(&data[r * old_w..(r + 1) * old_w]);
    }
    *data = wide;
}

/// Reusable word buffers for [`scan_masked_group`], one set per scan
/// worker, so the per-group scans of a build or extension allocate
/// nothing at all — results append into per-chunk flat vectors.
struct ScanScratch {
    cand: Vec<u64>,
    buf: Vec<u64>,
}

impl ScanScratch {
    fn new(words: usize, xwords: usize) -> Self {
        ScanScratch {
            cand: vec![0u64; xwords],
            buf: vec![0u64; words],
        }
    }
}

/// One scan worker's flat output: candidate entries of its group range,
/// concatenated, with per-group entry counts for the stitch.
#[derive(Default)]
struct ScanChunk {
    /// Entries per scanned group, in group order.
    entries: Vec<u32>,
    /// Candidate bag indices, concatenated across groups.
    xs: Vec<u32>,
    /// Child count per candidate entry.
    counts: Vec<u32>,
    /// Child block ids, concatenated.
    children: Vec<u32>,
}

/// Scans one comp group for coverage-viable candidate entries among the
/// bags of `mask`: candidates must contain every coverage vertex outside
/// the component (`req = cover ∖ C`), and their child components must
/// complete the coverage union. The `req` condition is evaluated through
/// the inverted vertex→bags index — one AND per `req` vertex over the
/// whole mask — instead of a subset test per bag, which makes the scan
/// output-sensitive: cost tracks the number of surviving candidates, not
/// `groups × bags`. Both the cold build (`mask` = all bags) and the
/// incremental extension (`mask` = the newly added bags) run through
/// this one scan, which is what keeps their tables bit-identical.
#[allow(clippy::too_many_arguments)]
fn scan_masked_group(
    arena: &BagArena,
    bag_ids: &[BagId],
    blocks: &[Block],
    blocks_by_head: &[(u32, u32)],
    vertex_bags: &[u64],
    xwords: usize,
    rep: usize,
    mask: &[u64],
    s: &mut ScanScratch,
    out: &mut ScanChunk,
) {
    let blk = &blocks[rep];
    let cover = arena.words(blk.cover);
    let comp_words = arena.words(blk.comp);
    // Candidate mask: bags of `mask` that contain every coverage vertex
    // outside the component (`req`); a bag missing one can never witness
    // condition (2), because child components only contribute vertices
    // of `C`.
    s.cand.copy_from_slice(mask);
    'req: for (wi, (&c, &m)) in cover.iter().zip(comp_words).enumerate() {
        let mut req = c & !m;
        while req != 0 {
            let v = wi * 64 + req.trailing_zeros() as usize;
            req &= req - 1;
            let row = &vertex_bags[v * xwords..(v + 1) * xwords];
            let mut any = 0u64;
            for (cw, &rw) in s.cand.iter_mut().zip(row) {
                *cw &= rw;
                any |= *cw;
            }
            if any == 0 {
                break 'req;
            }
        }
    }
    for w in 0..xwords {
        let mut bits = s.cand[w];
        while bits != 0 {
            let x = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let bag = bag_ids[x];
            let begin = out.children.len();
            let (hb_start, hb_len) = blocks_by_head[x];
            let head_range = hb_start as usize..(hb_start + hb_len) as usize;
            // Fast path: the bag alone covers the obligations.
            if arena.is_subset(blk.cover, bag) {
                for b2 in head_range {
                    if arena.is_subset(blocks[b2].comp, blk.comp) {
                        out.children.push(b2 as u32);
                    }
                }
            } else {
                s.buf.copy_from_slice(arena.words(bag));
                for b2 in head_range {
                    if arena.is_subset(blocks[b2].comp, blk.comp) {
                        out.children.push(b2 as u32);
                        arena.union_into(blocks[b2].comp, &mut s.buf);
                    }
                }
                if !words_subset(cover, &s.buf) {
                    out.children.truncate(begin);
                    continue;
                }
            }
            out.xs.push(x as u32);
            out.counts.push((out.children.len() - begin) as u32);
        }
    }
}

impl CtdInstance {
    /// Builds the block table for hypergraph `h` and candidate bag set
    /// `bags` (empty bags are dropped, duplicates merged) using a private
    /// [`BlockIndex`]. Prefer [`CtdInstance::build`] with a shared index
    /// (or [`crate::cache::DecompCache`]) when decomposing the same
    /// hypergraph repeatedly.
    pub fn new(h: &Hypergraph, bags: &[BitSet]) -> Self {
        let mut index = BlockIndex::new(h);
        let ids: Vec<BagId> = bags.iter().map(|b| index.arena.intern(b)).collect();
        Self::build(&mut index, &ids)
    }

    /// Builds an instance from bags interned in a shared [`BlockIndex`].
    /// Component and touching-edge computation hits the index cache, so
    /// consecutive instances over the same hypergraph (e.g. the `shw`
    /// width sweep, or repeated constrained queries) only pay for bags
    /// never seen before.
    pub fn build(index: &mut BlockIndex, bags: &[BagId]) -> Self {
        Self::build_budgeted(index, bags, &Budget::unlimited())
            .expect("the unlimited budget cannot trip")
    }

    /// [`CtdInstance::build`] with a cooperative [`Budget`], checked per
    /// candidate bag and per comp-group scan. On a budget error the
    /// partially built instance is dropped; the shared index keeps only
    /// fully-computed cache entries, so a retry is safe and produces an
    /// instance bit-identical to a never-interrupted build.
    pub fn build_budgeted(
        index: &mut BlockIndex,
        bags: &[BagId],
        budget: &Budget,
    ) -> Result<Self, DecompError> {
        let _span = softhw_obs::span(softhw_obs::stage::INSTANCE_BUILD);
        let h = index.hypergraph_arc().clone();
        let mut arena = BagArena::new(h.num_vertices());
        // Dedup and drop empties, preserving first-occurrence order (the
        // arena assigns dense ids in insertion order).
        let mut bag_ids: Vec<BagId> = Vec::new();
        let mut index_ids: Vec<BagId> = Vec::new();
        let mut seen_index = IdSet::new();
        for &b in bags {
            if index.arena.bag_is_empty(b) {
                continue;
            }
            let before = arena.len();
            let local = arena.copy_from(&index.arena, b);
            if arena.len() > before {
                bag_ids.push(local);
                index_ids.push(b);
                seen_index.insert(b);
            }
        }
        // Root blocks first: extensions append new bags' blocks at the
        // end, so the root ids must not shift as the bag list grows.
        let mut blocks = Vec::new();
        let mut root_blocks = Vec::new();
        let empty = index.empty();
        let rows_r = index.block_rows(empty);
        for i in 0..rows_r.len() {
            let (comp, cover) = index.rows(rows_r)[i];
            let local_comp = arena.copy_from(&index.arena, comp);
            let local_cover = arena.copy_from(&index.arena, cover);
            root_blocks.push(blocks.len());
            blocks.push(Block {
                head: None,
                comp: local_comp,
                closure: local_comp,
                cover: local_cover,
            });
        }
        let mut blocks_by_head: Vec<(u32, u32)> = Vec::with_capacity(bag_ids.len());
        for (sid, (&local_bag, &index_bag)) in bag_ids.iter().zip(&index_ids).enumerate() {
            budget.tick()?;
            let rows_r = index.block_rows(index_bag);
            blocks_by_head.push((blocks.len() as u32, rows_r.len() as u32));
            for i in 0..rows_r.len() {
                let (comp, cover) = index.rows(rows_r)[i];
                let local_comp = arena.copy_from(&index.arena, comp);
                let local_cover = arena.copy_from(&index.arena, cover);
                let closure = arena.union(local_bag, local_comp);
                blocks.push(Block {
                    head: Some(sid),
                    comp: local_comp,
                    closure,
                    cover: local_cover,
                });
            }
        }
        let bag_sets = (0..bag_ids.len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        let deps = Self::build_deps(&h, &arena, &bag_ids, &blocks, &blocks_by_head, budget)?;
        Ok(CtdInstance {
            h,
            arena,
            bag_ids,
            bag_sets,
            index_ids,
            seen_index,
            blocks,
            blocks_by_head,
            root_blocks,
            deps,
        })
    }

    /// An instance with no candidate bags: only the root blocks exist,
    /// nothing is satisfiable. This is the seed of the incremental sweep
    /// engine — every width is then reached through
    /// [`CtdInstance::extend`], so the first width pays exactly what any
    /// later extension pays and the bit-identity contract with
    /// [`CtdInstance::build`] is exercised from the start.
    pub fn empty(index: &mut BlockIndex) -> Self {
        Self::build(index, &[])
    }

    /// Precomputes the dependency tables (see [`Deps`]): group blocks by
    /// component, build the inverted vertex→bags index, then find each
    /// group's coverage-viable candidates and child lists through
    /// [`scan_masked_group`] over the full bag range. The per-group scans
    /// are independent, so they fan out in worker chunks with a
    /// deterministic group-ordered stitch — the same scan and the same
    /// stitch the incremental extension uses, restricted there to the
    /// newly added bags.
    fn build_deps(
        h: &Hypergraph,
        arena: &BagArena,
        bag_ids: &[BagId],
        blocks: &[Block],
        blocks_by_head: &[(u32, u32)],
        budget: &Budget,
    ) -> Result<Deps, DecompError> {
        let nb = blocks.len();
        let nx = bag_ids.len();
        let words = arena.words_per_bag();
        // Group blocks by component (ids are interned, so equality is id
        // equality). Groups are numbered in first-block order; group_rep
        // holds one representative block per group.
        let mut comp_group: FxHashMap<BagId, u32> = FxHashMap::default();
        let mut group_of: Vec<u32> = Vec::with_capacity(nb);
        let mut group_rep: Vec<u32> = Vec::new();
        for (b, blk) in blocks.iter().enumerate() {
            let g = *comp_group.entry(blk.comp).or_insert_with(|| {
                group_rep.push(b as u32);
                (group_rep.len() - 1) as u32
            });
            group_of.push(g);
        }
        let ng = group_rep.len();
        let xwords = nx.div_ceil(64).max(1);
        // The inverted vertex → bags index the scans run through.
        let mut vertex_bags = vec![0u64; h.num_vertices() * xwords];
        for (x, &bag) in bag_ids.iter().enumerate() {
            for v in arena.iter(bag) {
                vertex_bags[v * xwords + x / 64] |= 1u64 << (x % 64);
            }
        }
        let live: Vec<u64> = (0..xwords).map(|w| word_tail_mask(nx, w)).collect();
        let vb = &vertex_bags;
        let group_rep_ref = &group_rep;
        let workers = softhw_hypergraph::par::num_workers().min(ng.max(1));
        let raw = softhw_hypergraph::par::par_chunks(ng, workers, |range| {
            let mut s = ScanScratch::new(words, xwords);
            let mut out = ScanChunk::default();
            for g in range {
                budget.tick()?;
                let before = out.xs.len();
                scan_masked_group(
                    arena,
                    bag_ids,
                    blocks,
                    blocks_by_head,
                    vb,
                    xwords,
                    group_rep_ref[g] as usize,
                    &live,
                    &mut s,
                    &mut out,
                );
                out.entries.push((out.xs.len() - before) as u32);
            }
            Ok::<ScanChunk, DecompError>(out)
        });
        // A tripped budget is sticky, so this check fires whenever any
        // worker bailed early — partial chunks never reach the stitch.
        budget.check()?;
        let mut chunks: Vec<ScanChunk> = Vec::with_capacity(raw.len());
        for r in raw {
            chunks.push(r?);
        }
        // Stitch the chunk outputs in group order and wire the reverse
        // index (`datum_group` mirrors `g_child_data` so the child→groups
        // CSR builds with a flat counting scatter).
        let total_xs = chunks.iter().map(|c| c.xs.len()).sum::<usize>();
        let total_children = chunks.iter().map(|c| c.children.len()).sum::<usize>();
        let mut g_cand_start: Vec<u32> = Vec::with_capacity(ng + 1);
        let mut g_cand_x: Vec<u32> = Vec::with_capacity(total_xs);
        let mut g_child_start: Vec<u32> = Vec::with_capacity(total_xs + 1);
        let mut g_child_data: Vec<u32> = Vec::with_capacity(total_children);
        let mut datum_group: Vec<u32> = Vec::with_capacity(total_children);
        g_cand_start.push(0);
        g_child_start.push(0);
        let mut g = 0usize;
        for chunk in &chunks {
            let mut ni = 0usize;
            let mut nchild_pos = 0usize;
            for &n_entries in &chunk.entries {
                let ni_end = ni + n_entries as usize;
                g_cand_x.extend_from_slice(&chunk.xs[ni..ni_end]);
                let kids_lo = nchild_pos;
                let mut acc = g_child_data.len() as u32;
                for &cnt in &chunk.counts[ni..ni_end] {
                    acc += cnt;
                    g_child_start.push(acc);
                    nchild_pos += cnt as usize;
                }
                g_child_data.extend_from_slice(&chunk.children[kids_lo..nchild_pos]);
                datum_group.resize(g_child_data.len(), g as u32);
                ni = ni_end;
                g_cand_start.push(g_cand_x.len() as u32);
                g += 1;
            }
        }
        debug_assert_eq!(g, ng);
        let child_groups = Csr::from_counts(
            nb,
            g_child_data
                .iter()
                .zip(&datum_group)
                .map(|(&c, &dg)| (c, dg)),
        );
        let group_blocks =
            Csr::from_counts(ng, group_of.iter().enumerate().map(|(b, &g)| (g, b as u32)));
        Ok(Deps {
            group_of,
            group_rep,
            comp_group,
            g_cand_start,
            g_cand_x,
            g_child_start,
            g_child_data,
            vertex_bags,
            xwords,
            child_groups,
            group_blocks,
        })
    }

    /// Extends the instance in place with additional candidate bags (ids
    /// of the **same** [`BlockIndex`] the instance was built from):
    /// already-known and empty bags are skipped, new bags and their
    /// blocks are appended — existing bag and block ids never move — and
    /// the dependency tables are updated incrementally: pre-existing comp
    /// groups are rescanned only over the newly appended bags (their
    /// entries over the old bags are already exact), and only brand-new
    /// groups scan the full range. The result is observably identical to a cold
    /// [`CtdInstance::build`] over the concatenated bag sequence (the
    /// property tests in `tests/worklist_props.rs` assert bit-identical
    /// satisfaction tables, bases and timestamps included).
    ///
    /// Returns the [`ExtendDelta`] describing what changed, for
    /// [`CtdInstance::satisfy_extend`].
    pub fn extend(&mut self, index: &mut BlockIndex, bags: &[BagId]) -> ExtendDelta {
        self.extend_budgeted(index, bags, &Budget::unlimited())
            .expect("the unlimited budget cannot trip")
    }

    /// [`CtdInstance::extend`] with a cooperative [`Budget`], checked per
    /// appended bag and per comp-group rescan. **On a budget error the
    /// instance is torn** (bags appended but dependency tables stale or
    /// mid-rebuild): the caller must discard it — or, in the sweep,
    /// `reset()` the sweep state — before retrying; the shared index
    /// stays valid either way.
    pub fn extend_budgeted(
        &mut self,
        index: &mut BlockIndex,
        bags: &[BagId],
        budget: &Budget,
    ) -> Result<ExtendDelta, DecompError> {
        let _span = softhw_obs::span(softhw_obs::stage::INSTANCE_EXTEND);
        assert!(
            Arc::ptr_eq(&self.h, index.hypergraph_arc()),
            "extend must be given the BlockIndex the instance was built from"
        );
        let prev_bags = self.bag_ids.len();
        let prev_blocks = self.blocks.len();
        for &b in bags {
            if index.arena.bag_is_empty(b) || self.seen_index.contains(b) {
                continue;
            }
            self.seen_index.insert(b);
            let local = self.arena.copy_from(&index.arena, b);
            self.bag_ids.push(local);
            self.index_ids.push(b);
            self.blocks_by_head.push((0, 0));
            self.bag_sets.push(std::sync::OnceLock::new());
        }
        if softhw_hypergraph::par::num_workers() > 1 && self.bag_ids.len() > prev_bags {
            // Parallel intern pass: resolve every new bag's block rows
            // first (serial — the row cache needs `&mut`), then fan the
            // per-block closure words and intern hashes out via
            // `par_map` (pure reads); the serial remainder is one hashed
            // table probe per comp/closure/cover.
            let mut descs: Vec<(usize, BagId, BagId)> = Vec::new();
            for x in prev_bags..self.bag_ids.len() {
                budget.tick()?;
                let rows_r = index.block_rows(self.index_ids[x]);
                for &(comp, cover) in index.rows(rows_r) {
                    descs.push((x, comp, cover));
                }
            }
            type Prepared = (u64, Vec<u64>, u64, u64);
            let arena = &self.arena;
            let bag_ids = &self.bag_ids;
            let prepared: Vec<Prepared> = par_map(descs.len(), |i| {
                let (head, comp, cover) = descs[i];
                let comp_words = index.arena.words(comp);
                let mut closure_words = arena.words(bag_ids[head]).to_vec();
                words_union_into(comp_words, &mut closure_words);
                let closure_hash = BagArena::words_hash(&closure_words);
                (
                    BagArena::words_hash(comp_words),
                    closure_words,
                    closure_hash,
                    BagArena::words_hash(index.arena.words(cover)),
                )
            });
            for (&(head, comp, cover), (comp_hash, closure_words, closure_hash, cover_hash)) in
                descs.iter().zip(prepared)
            {
                let local_comp = self
                    .arena
                    .intern_words_hashed(index.arena.words(comp), comp_hash);
                let closure = self.arena.intern_words_hashed(&closure_words, closure_hash);
                let local_cover = self
                    .arena
                    .intern_words_hashed(index.arena.words(cover), cover_hash);
                let hb = &mut self.blocks_by_head[head];
                if hb.1 == 0 {
                    hb.0 = self.blocks.len() as u32;
                }
                hb.1 += 1;
                self.blocks.push(Block {
                    head: Some(head),
                    comp: local_comp,
                    closure,
                    cover: local_cover,
                });
            }
        } else {
            // Serial: single pass over the new bags, creating each block
            // straight from the index's row table.
            let mut closure_buf: Vec<u64> = vec![0u64; self.arena.words_per_bag()];
            for head in prev_bags..self.bag_ids.len() {
                budget.tick()?;
                let rows_r = index.block_rows(self.index_ids[head]);
                let n_rows = rows_r.len();
                if n_rows > 0 {
                    self.blocks_by_head[head] = (self.blocks.len() as u32, n_rows as u32);
                }
                for i in 0..n_rows {
                    let (comp, cover) = index.rows(rows_r)[i];
                    let local_comp = self.arena.copy_from(&index.arena, comp);
                    closure_buf.copy_from_slice(self.arena.words(self.bag_ids[head]));
                    self.arena.union_into(local_comp, &mut closure_buf);
                    let closure = self.arena.intern_words(&closure_buf);
                    let local_cover = self.arena.copy_from(&index.arena, cover);
                    self.blocks.push(Block {
                        head: Some(head),
                        comp: local_comp,
                        closure,
                        cover: local_cover,
                    });
                }
            }
        }
        if self.bag_ids.len() == prev_bags {
            // Nothing new (repeat width, or a stratum entirely contained
            // in the instance): the tables are already exact — skip the
            // dependency rebuild and dirty no blocks.
            return Ok(ExtendDelta {
                prev_bags,
                prev_blocks,
                dirty: Vec::new(),
            });
        }
        let dirty = self.extend_deps(prev_bags, prev_blocks, budget)?;
        Ok(ExtendDelta {
            prev_bags,
            prev_blocks,
            dirty,
        })
    }

    /// Brings the dependency tables up to date after an extension; see
    /// [`CtdInstance::extend`]. Returns the dirty-block seed list.
    fn extend_deps(
        &mut self,
        prev_nx: usize,
        prev_nb: usize,
        budget: &Budget,
    ) -> Result<Vec<u32>, DecompError> {
        let nx = self.bag_ids.len();
        let nb = self.blocks.len();
        let nv = self.h.num_vertices();
        let old_xwords = self.deps.xwords;
        let xwords = nx.div_ceil(64).max(1);
        // Group assignment for the new blocks (the persistent map keeps
        // the numbering identical to a cold build over the same sequence).
        let ng_old;
        {
            let Deps {
                group_of,
                group_rep,
                comp_group,
                ..
            } = &mut self.deps;
            ng_old = group_rep.len();
            for (b, blk) in self.blocks.iter().enumerate().skip(prev_nb) {
                let g = *comp_group.entry(blk.comp).or_insert_with(|| {
                    group_rep.push(b as u32);
                    (group_rep.len() - 1) as u32
                });
                group_of.push(g);
            }
        }
        let ng = self.deps.group_rep.len();
        // Inverted index: widen to the new stride, set the new bags' bits.
        restride_rows(&mut self.deps.vertex_bags, nv, old_xwords, xwords);
        for x in prev_nx..nx {
            for v in self.arena.iter(self.bag_ids[x]) {
                self.deps.vertex_bags[v * xwords + x / 64] |= 1u64 << (x % 64);
            }
        }
        // The tables carry no per-block state beyond coverage, so a
        // pre-existing group's entries over the old bags are already
        // exact: old groups rescan only the bags this extension
        // appended, new groups scan the full range.
        let arena = &self.arena;
        let vertex_bags = &self.deps.vertex_bags;
        let group_of = &self.deps.group_of;
        let mut live = vec![0u64; xwords];
        for (w, lw) in live.iter_mut().enumerate() {
            *lw = word_tail_mask(nx, w);
        }
        let mut new_region = live.clone();
        for (w, nw) in new_region.iter_mut().enumerate() {
            *nw &= !word_tail_mask(prev_nx, w);
        }
        let bag_ids = &self.bag_ids;
        let blocks = &self.blocks;
        let blocks_by_head = &self.blocks_by_head;
        let group_rep = &self.deps.group_rep;
        let words = arena.words_per_bag();
        let workers = softhw_hypergraph::par::num_workers().min(ng.max(1));
        // Scan the groups (one scratch buffer set and one flat output
        // block per worker chunk), overlapped with the group→blocks
        // reverse-index rebuild, which is independent of the scan
        // results.
        let (raw, group_blocks) = par_join(
            || {
                softhw_hypergraph::par::par_chunks(ng, workers, |range| {
                    let mut s = ScanScratch::new(words, xwords);
                    let mut out = ScanChunk::default();
                    for g in range {
                        budget.tick()?;
                        let mask = if g < ng_old { &new_region } else { &live };
                        let before = out.xs.len();
                        scan_masked_group(
                            arena,
                            bag_ids,
                            blocks,
                            blocks_by_head,
                            vertex_bags,
                            xwords,
                            group_rep[g] as usize,
                            mask,
                            &mut s,
                            &mut out,
                        );
                        out.entries.push((out.xs.len() - before) as u32);
                    }
                    Ok::<ScanChunk, DecompError>(out)
                })
            },
            || {
                // Counting build: `b` ascends, so rows come out ascending
                // and duplicate-free exactly as `Csr::from_pairs` would
                // produce them.
                Csr::from_counts(ng, group_of.iter().enumerate().map(|(b, &g)| (g, b as u32)))
            },
        );
        budget.check()?;
        let mut chunks: Vec<ScanChunk> = Vec::with_capacity(raw.len());
        for r in raw {
            chunks.push(r?);
        }
        // Restitch the candidate tables: per group, merge the existing
        // entries with the newly found ones by ascending bag index (the
        // two sets are disjoint — an existing entry's bag was already in
        // the allowed mask). Child lists of existing entries are
        // unchanged: old bags head no new blocks.
        let old_cand_start = std::mem::take(&mut self.deps.g_cand_start);
        let old_cand_x = std::mem::take(&mut self.deps.g_cand_x);
        let old_child_start = std::mem::take(&mut self.deps.g_child_start);
        let old_child_data = std::mem::take(&mut self.deps.g_child_data);
        let grown = old_cand_x.len() + chunks.iter().map(|c| c.xs.len()).sum::<usize>();
        let grown_children =
            old_child_data.len() + chunks.iter().map(|c| c.children.len()).sum::<usize>();
        let mut g_cand_start: Vec<u32> = Vec::with_capacity(ng + 1);
        let mut g_cand_x: Vec<u32> = Vec::with_capacity(grown);
        let mut g_child_start: Vec<u32> = Vec::with_capacity(grown + 1);
        let mut g_child_data: Vec<u32> = Vec::with_capacity(grown_children);
        g_cand_start.push(0);
        g_child_start.push(0);
        // Group per child datum, parallel to `g_child_data`: lets the
        // reverse-index build below scatter in two flat passes instead
        // of re-walking the nested group→entry→child structure.
        let mut datum_group: Vec<u32> = Vec::with_capacity(grown_children);
        let mut gained = vec![false; ng_old];
        #[allow(clippy::too_many_arguments)]
        fn push_entry(
            g: usize,
            x: u32,
            kids: &[u32],
            g_cand_x: &mut Vec<u32>,
            g_child_start: &mut Vec<u32>,
            g_child_data: &mut Vec<u32>,
            datum_group: &mut Vec<u32>,
        ) {
            g_cand_x.push(x);
            g_child_data.extend_from_slice(kids);
            datum_group.resize(g_child_data.len(), g as u32);
            g_child_start.push(g_child_data.len() as u32);
        }
        let mut g = 0usize;
        for chunk in &chunks {
            // Cursors into this chunk's flat entry/child arrays.
            let mut ni = 0usize;
            let mut nchild_pos = 0usize;
            for &n_entries in &chunk.entries {
                let ni_end = ni + n_entries as usize;
                if g < ng_old {
                    // Merge path: interleave existing entries with the
                    // newly found ones by ascending bag index.
                    if n_entries > 0 {
                        gained[g] = true;
                    }
                    for ci in old_cand_start[g] as usize..old_cand_start[g + 1] as usize {
                        let ox = old_cand_x[ci];
                        // lint:allow(budget-tick): bounded merge scan over one candidate chunk, not a solver loop
                        while ni < ni_end && chunk.xs[ni] < ox {
                            let cnt = chunk.counts[ni] as usize;
                            push_entry(
                                g,
                                chunk.xs[ni],
                                &chunk.children[nchild_pos..nchild_pos + cnt],
                                &mut g_cand_x,
                                &mut g_child_start,
                                &mut g_child_data,
                                &mut datum_group,
                            );
                            nchild_pos += cnt;
                            ni += 1;
                        }
                        let (lo, hi) = (
                            old_child_start[ci] as usize,
                            old_child_start[ci + 1] as usize,
                        );
                        push_entry(
                            g,
                            ox,
                            &old_child_data[lo..hi],
                            &mut g_cand_x,
                            &mut g_child_start,
                            &mut g_child_data,
                            &mut datum_group,
                        );
                    }
                    // lint:allow(budget-tick): bounded tail drain of the same candidate chunk
                    while ni < ni_end {
                        let cnt = chunk.counts[ni] as usize;
                        push_entry(
                            g,
                            chunk.xs[ni],
                            &chunk.children[nchild_pos..nchild_pos + cnt],
                            &mut g_cand_x,
                            &mut g_child_start,
                            &mut g_child_data,
                            &mut datum_group,
                        );
                        nchild_pos += cnt;
                        ni += 1;
                    }
                } else {
                    // Bulk path (the common case — a brand-new group has
                    // no existing entries): the group's entries and
                    // children are contiguous in the chunk arrays, so
                    // copy them wholesale and cumsum the child offsets.
                    g_cand_x.extend_from_slice(&chunk.xs[ni..ni_end]);
                    let kids_lo = nchild_pos;
                    let mut acc = g_child_data.len() as u32;
                    for &cnt in &chunk.counts[ni..ni_end] {
                        acc += cnt;
                        g_child_start.push(acc);
                        nchild_pos += cnt as usize;
                    }
                    g_child_data.extend_from_slice(&chunk.children[kids_lo..nchild_pos]);
                    datum_group.resize(g_child_data.len(), g as u32);
                    ni = ni_end;
                }
                g_cand_start.push(g_cand_x.len() as u32);
                g += 1;
            }
        }
        debug_assert_eq!(g, ng);
        // Child → comp-groups reverse index by counting scatter over the
        // stitched tables (no pair materialisation, no sort). Rows list
        // groups in ascending order, possibly with repeats when several
        // entries of one group share a child; the worklist consumers
        // dedup through their `queued` guards.
        let child_groups = Csr::from_counts(
            nb,
            g_child_data
                .iter()
                .zip(&datum_group)
                .map(|(&c, &dg)| (c, dg)),
        );
        // Dirty seed: old blocks of groups that gained entries, then all
        // new blocks — ascending and duplicate-free by construction.
        let mut dirty: Vec<u32> = (0..prev_nb as u32)
            .filter(|&b| gained[group_of[b as usize] as usize])
            .collect();
        dirty.extend(prev_nb as u32..nb as u32);
        let d = &mut self.deps;
        d.g_cand_start = g_cand_start;
        d.g_cand_x = g_cand_x;
        d.g_child_start = g_child_start;
        d.g_child_data = g_child_data;
        d.xwords = xwords;
        d.child_groups = child_groups;
        d.group_blocks = group_blocks;
        Ok(dirty)
    }

    /// Number of (deduplicated, non-empty) candidate bags.
    #[inline]
    pub fn num_bags(&self) -> usize {
        self.bag_ids.len()
    }

    /// Materialised view of bag `x` (built on first access, then
    /// cached; the accessor stays `&self`, so evaluator callbacks and
    /// parallel waves are unaffected).
    #[inline]
    pub fn bag(&self, x: usize) -> &BitSet {
        self.bag_sets[x].get_or_init(|| self.arena.to_bitset(self.bag_ids[x]))
    }

    /// The instance's arena (for word-level algebra over blocks/bags).
    #[inline]
    pub fn arena(&self) -> &BagArena {
        &self.arena
    }

    /// Loads bag `x` into a scratch buffer for incremental union building.
    #[inline]
    pub fn load_bag(&self, x: usize, buf: &mut Vec<u64>) {
        self.arena.read_into(self.bag_ids[x], buf);
    }

    /// Checks the basis conditions of bag `x` for block `b` from first
    /// principles, given the current satisfaction state. This is the
    /// reference predicate of the Jacobi engine; the worklist engine
    /// answers the same question from the precomputed tables.
    /// `buf` is caller-provided scratch (cleared here) so round-scans
    /// don't allocate per check.
    pub fn is_basis_with(
        &self,
        b: usize,
        x: usize,
        satisfied: &[bool],
        buf: &mut Vec<u64>,
    ) -> bool {
        let blk = &self.blocks[b];
        if blk.head == Some(x) {
            return false; // X ≠ S
        }
        if !self.arena.is_subset(self.bag_ids[x], blk.closure) {
            return false;
        }
        self.load_bag(x, buf);
        let (hb_start, hb_len) = self.blocks_by_head[x];
        // The range is over block *ids* (a bag's blocks are contiguous),
        // not positions in one slice.
        #[allow(clippy::needless_range_loop)]
        for b2 in hb_start as usize..(hb_start + hb_len) as usize {
            if self.arena.is_subset(self.blocks[b2].comp, blk.comp) {
                if !satisfied[b2] {
                    return false;
                }
                self.arena.union_into(self.blocks[b2].comp, buf);
            }
        }
        // Condition (2): with all child components in `buf`, `C ⊆ buf`,
        // so "every touching edge inside `buf`" is exactly `cover ⊆ buf`.
        words_subset(self.arena.words(blk.cover), buf)
    }

    /// The viable candidates of block `b` — bags passing the
    /// state-independent basis conditions — with their precomputed child
    /// blocks, ascending in bag index. A viable `x` is a basis iff all
    /// its children are satisfied.
    pub fn viable_candidates(&self, b: usize) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        let head = self.blocks[b].head.map(|x| x as u32);
        let closure = self.blocks[b].closure;
        self.deps
            .group_range(self.deps.group_of[b])
            .filter_map(move |ci| {
                let x = self.deps.g_cand_x[ci];
                if Some(x) == head || !self.arena.is_subset(self.bag_ids[x as usize], closure) {
                    return None;
                }
                Some((x as usize, self.deps.children_of_entry(ci)))
            })
    }

    /// The child blocks a basis `x` of block `b` delegates to: blocks
    /// headed by `x` whose component lies inside `b`'s component.
    /// Returns the precomputed slice — no per-call allocation (this sits
    /// inside the DP and extraction hot loops). Empty when `x` has no
    /// coverage-viable entry for `b`'s component.
    pub fn child_blocks(&self, b: usize, x: usize) -> &[u32] {
        let r = self.deps.group_range(self.deps.group_of[b]);
        let (lo, hi) = (r.start, r.end);
        match self.deps.g_cand_x[lo..hi].binary_search(&(x as u32)) {
            Ok(pos) => self.deps.children_of_entry(lo + pos),
            Err(_) => &[],
        }
    }

    /// Invokes `f` for every block that may need rechecking when block
    /// `b` newly becomes satisfied (or improves): the blocks of every
    /// comp group with a coverage-viable candidate delegating to `b`.
    /// This is the (slightly conservative) reverse index driving the
    /// worklist rechecks of both DPs; a spurious recheck is a no-op.
    #[inline]
    pub fn for_each_parent(&self, b: usize, mut f: impl FnMut(u32)) {
        for &g in self.deps.child_groups.row(b) {
            for &p in self.deps.group_blocks.row(g as usize) {
                f(p);
            }
        }
    }

    /// First viable candidate of `b` whose children are all satisfied.
    #[inline]
    fn first_ready_candidate(&self, b: usize, satisfied: &[bool]) -> Option<u32> {
        let head = self.blocks[b].head.map(|x| x as u32);
        let closure = self.blocks[b].closure;
        for ci in self.deps.group_range(self.deps.group_of[b]) {
            let x = self.deps.g_cand_x[ci];
            if Some(x) == head || !self.arena.is_subset(self.bag_ids[x as usize], closure) {
                continue;
            }
            if self
                .deps
                .children_of_entry(ci)
                .iter()
                .all(|&c| satisfied[c as usize])
            {
                return Some(x);
            }
        }
        None
    }

    /// Runs the satisfaction DP of Algorithm 1 to fixpoint with the
    /// dependency-driven worklist engine: wave 0 checks every block
    /// against the precomputed viable-candidate tables; afterwards a
    /// block is rechecked only when one of its children newly became
    /// satisfied (via the reverse index). Waves snapshot the previous
    /// wave's state and merge in ascending block order — fanned out via
    /// [`par_map`] under the `parallel` feature — so bases and timestamps
    /// are identical to the serial run and to the Jacobi reference
    /// ([`CtdInstance::satisfy_jacobi`]).
    pub fn satisfy(&self) -> Satisfaction {
        self.satisfy_budgeted(&Budget::unlimited())
            .expect("the unlimited budget cannot trip")
    }

    /// Approximate heap footprint in bytes: arena, bag tables, block
    /// table, and the DP dependency structure (the shared hypergraph
    /// `Arc` is *not* counted — the owning cache counts it once). Feeds
    /// the service's `bytes_per_cached_schema` memory stat.
    pub fn approx_bytes(&self) -> u64 {
        let bags = self.bag_ids.capacity() * std::mem::size_of::<BagId>()
            + self.index_ids.capacity() * std::mem::size_of::<BagId>()
            + self.bag_sets.capacity() * std::mem::size_of::<std::sync::OnceLock<BitSet>>();
        let materialised: usize = self
            .bag_sets
            .iter()
            .filter_map(|s| s.get())
            .map(|b| b.num_blocks() * 8)
            .sum();
        let blocks = self.blocks.capacity() * std::mem::size_of::<Block>()
            + self.blocks_by_head.capacity() * 8
            + self.root_blocks.capacity() * 8;
        self.arena.approx_bytes()
            + self.seen_index.approx_bytes()
            + self.deps.approx_bytes()
            + (bags + materialised + blocks) as u64
    }

    /// [`CtdInstance::satisfy`] with a cooperative [`Budget`], checked at
    /// every frontier wave. The DP state lives in locals, so an abort
    /// leaves the instance untouched — a retry recomputes from scratch
    /// and is bit-identical to a never-interrupted run.
    pub fn satisfy_budgeted(&self, budget: &Budget) -> Result<Satisfaction, DecompError> {
        let _span = softhw_obs::span(softhw_obs::stage::SATISFY);
        let nb = self.blocks.len();
        let mut satisfied = vec![false; nb];
        let mut basis: Vec<Option<(usize, u32)>> = vec![None; nb];
        let mut clock: u32 = 0;
        self.satisfy_run(
            &mut satisfied,
            &mut basis,
            &mut clock,
            (0..nb as u32).collect(),
            budget,
        )?;
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Ok(Satisfaction { basis, accept })
    }

    /// Brings a pre-extension [`Satisfaction`] up to date after
    /// [`CtdInstance::extend`], reusing the DP state instead of running
    /// from scratch: previously satisfied blocks keep their bases and
    /// timestamps verbatim (satisfaction is monotone in the candidate
    /// set, so they remain valid — an old basis delegates only to old,
    /// still-satisfied blocks), and the worklist is seeded with just the
    /// delta's dirty blocks; everything else re-enters through the
    /// child→parents reverse index exactly as in [`CtdInstance::satisfy`].
    /// New satisfactions get timestamps above every previous one, so the
    /// strictly-decreasing-along-extraction invariant holds.
    ///
    /// The satisfied block set — and therefore `accept` and the
    /// extractability of every block — is identical to a fresh
    /// [`CtdInstance::satisfy`] run on the extended instance
    /// (property-tested); the basis *choices* of blocks satisfied at an
    /// earlier width may differ, since a fresh run would also consider
    /// the bags added later.
    pub fn satisfy_extend(&self, prev: &Satisfaction, delta: &ExtendDelta) -> Satisfaction {
        self.satisfy_extend_budgeted(prev, delta, &Budget::unlimited())
            .expect("the unlimited budget cannot trip")
    }

    /// [`CtdInstance::satisfy_extend`] with a cooperative [`Budget`],
    /// checked at every frontier wave. `prev` and the instance are left
    /// untouched on abort; the partially advanced DP state is dropped.
    pub fn satisfy_extend_budgeted(
        &self,
        prev: &Satisfaction,
        delta: &ExtendDelta,
        budget: &Budget,
    ) -> Result<Satisfaction, DecompError> {
        let _span = softhw_obs::span(softhw_obs::stage::SATISFY);
        assert_eq!(
            prev.basis.len(),
            delta.prev_blocks,
            "satisfaction state does not match the extension's base instance"
        );
        let nb = self.blocks.len();
        let mut basis = prev.basis.clone();
        basis.resize(nb, None);
        let mut satisfied: Vec<bool> = basis.iter().map(Option::is_some).collect();
        let mut clock = basis
            .iter()
            .filter_map(|e| e.map(|(_, t)| t + 1))
            .max()
            .unwrap_or(0);
        self.satisfy_run(
            &mut satisfied,
            &mut basis,
            &mut clock,
            delta.dirty.clone(),
            budget,
        )?;
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Ok(Satisfaction { basis, accept })
    }

    /// The worklist engine shared by [`CtdInstance::satisfy`] (seeded
    /// with every block) and [`CtdInstance::satisfy_extend`] (seeded with
    /// an extension's dirty blocks): frontier waves snapshot the previous
    /// state, fan out via [`par_map`], and merge in ascending block
    /// order, so bases and timestamps are deterministic across serial and
    /// parallel builds.
    fn satisfy_run(
        &self,
        satisfied: &mut [bool],
        basis: &mut [Option<(usize, u32)>],
        clock: &mut u32,
        mut frontier: Vec<u32>,
        budget: &Budget,
    ) -> Result<(), DecompError> {
        let nb = self.blocks.len();
        let mut next: Vec<u32> = Vec::new();
        let mut queued = vec![false; nb];
        while !frontier.is_empty() {
            // Wave-granularity budget check: a wave is the unit of work
            // between deadline observations, which bounds cancellation
            // latency to one wave of rechecks.
            budget.check()?;
            let snapshot = &*satisfied;
            let found: Vec<Option<u32>> = par_map(frontier.len(), |i| {
                let b = frontier[i] as usize;
                if snapshot[b] {
                    return None;
                }
                self.first_ready_candidate(b, snapshot)
            });
            next.clear();
            for (i, f) in found.into_iter().enumerate() {
                let b = frontier[i] as usize;
                if let Some(x) = f {
                    satisfied[b] = true;
                    basis[b] = Some((x as usize, *clock));
                    *clock += 1;
                    self.for_each_parent(b, |p| {
                        if !satisfied[p as usize] && !queued[p as usize] {
                            queued[p as usize] = true;
                            next.push(p);
                        }
                    });
                }
            }
            // Ascending block order keeps wave-internal processing — and
            // thus timestamps — identical to a Jacobi round.
            next.sort_unstable();
            for &p in &next {
                queued[p as usize] = false;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        Ok(())
    }

    /// The seed's Jacobi-round satisfaction DP, retained as the reference
    /// the worklist engine is property-tested against: each round rescans
    /// every unsatisfied block against every bag with
    /// [`CtdInstance::is_basis_with`]. Produces bit-identical
    /// [`Satisfaction`] tables to [`CtdInstance::satisfy`] — a frontier
    /// wave satisfies exactly the blocks a Jacobi round would.
    pub fn satisfy_jacobi(&self) -> Satisfaction {
        let nb = self.blocks.len();
        let mut satisfied = vec![false; nb];
        let mut basis: Vec<Option<(usize, u32)>> = vec![None; nb];
        let mut clock: u32 = 0;
        loop {
            let snapshot = &satisfied;
            let round: Vec<Option<usize>> = par_map(nb, |b| {
                if snapshot[b] {
                    return None;
                }
                let mut buf: Vec<u64> = Vec::new();
                (0..self.num_bags()).find(|&x| self.is_basis_with(b, x, snapshot, &mut buf))
            });
            let mut changed = false;
            for (b, found) in round.into_iter().enumerate() {
                if satisfied[b] {
                    continue;
                }
                if let Some(x) = found {
                    satisfied[b] = true;
                    basis[b] = Some((x, clock));
                    clock += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Satisfaction { basis, accept }
    }

    /// Extracts the tree decomposition certified by a satisfaction table.
    /// Returns `Ok(None)` if the instance was rejected, and
    /// [`DecompError::Internal`] if the table is inconsistent with this
    /// instance (an accepted or referenced block without a basis, or a
    /// table of the wrong size — e.g. a satisfaction from a different
    /// instance) instead of panicking. For disconnected hypergraphs, the
    /// per-component subtrees are chained under the first component's
    /// root (bags of distinct components are vertex-disjoint, so validity
    /// is preserved).
    pub fn try_extract(
        &self,
        sat: &Satisfaction,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        if !sat.accept || self.root_blocks.is_empty() {
            return Ok(None);
        }
        let mut td: Option<TreeDecomposition> = None;
        for &rb in &self.root_blocks {
            let Some(Some((x, _))) = sat.basis.get(rb).copied() else {
                debug_assert!(false, "accepted root block {rb} has no basis");
                return Err(DecompError::internal("accepted root block without basis"));
            };
            match td.as_mut() {
                None => {
                    let mut fresh = TreeDecomposition::new(self.bag(x).clone());
                    let root = fresh.root();
                    self.try_extract_children(sat, rb, x, root, &mut fresh)?;
                    td = Some(fresh);
                }
                Some(t) => {
                    let at = t.root();
                    let node = t.add_child(at, self.bag(x).clone());
                    self.try_extract_children(sat, rb, x, node, t)?;
                }
            }
        }
        Ok(td)
    }

    /// [`CtdInstance::try_extract`], panicking on an inconsistent
    /// satisfaction table. Kept for callers that just computed `sat` via
    /// [`CtdInstance::satisfy`] on the same instance, for which the
    /// consistency invariants hold by construction; service and cache
    /// paths use the fallible form and degrade instead.
    pub fn extract(&self, sat: &Satisfaction) -> Option<TreeDecomposition> {
        self.try_extract(sat)
            .expect("satisfaction table consistent with this instance")
    }

    fn try_extract_children(
        &self,
        sat: &Satisfaction,
        b: usize,
        x: usize,
        node: usize,
        td: &mut TreeDecomposition,
    ) -> Result<(), DecompError> {
        for &b2 in self.child_blocks(b, x) {
            let b2 = b2 as usize;
            let Some(Some((x2, ts2))) = sat.basis.get(b2).copied() else {
                debug_assert!(false, "basis condition (3) violated at block {b2}");
                return Err(DecompError::internal("child block without basis"));
            };
            debug_assert!(
                ts2 < sat.basis[b].map(|(_, t)| t).unwrap_or(u32::MAX),
                "timestamps strictly decrease along extraction"
            );
            let _ = ts2;
            let child = td.add_child(node, self.bag(x2).clone());
            self.try_extract_children(sat, b2, x2, child, td)?;
        }
        Ok(())
    }

    /// Algorithm 1 end-to-end: decide and extract.
    pub fn decide(&self) -> Option<TreeDecomposition> {
        let sat = self.satisfy();
        self.extract(&sat)
    }

    /// [`CtdInstance::decide`] through the fallible extraction path: an
    /// inconsistent DP result surfaces as [`DecompError::Internal`]
    /// rather than a panic. (With a freshly computed table the invariants
    /// hold by construction, so this only errs on memory corruption or a
    /// bug — but a service must not die on either.)
    pub fn try_decide(&self) -> Result<Option<TreeDecomposition>, DecompError> {
        let sat = self.satisfy();
        self.try_extract(&sat)
    }

    /// [`CtdInstance::try_decide`] with a cooperative [`Budget`]: the DP
    /// checks the budget at every wave; the extraction itself is
    /// output-linear and runs to completion once the DP accepted.
    pub fn try_decide_budgeted(
        &self,
        budget: &Budget,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        let sat = self.satisfy_budgeted(budget)?;
        self.try_extract(&sat)
    }
}

/// Convenience wrapper: does a CompNF candidate tree decomposition of `h`
/// with bags from `bags` exist? Returns the witness decomposition.
pub fn candidate_td(h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
    CtdInstance::new(h, bags).decide()
}

/// [`candidate_td`] over bags already interned in a shared index.
pub fn candidate_td_ids(index: &mut BlockIndex, bags: &[BagId]) -> Option<TreeDecomposition> {
    CtdInstance::build(index, bags).decide()
}

/// Verifies that `td` is a valid tree decomposition of `h` whose bags all
/// come from `bags`. Used to machine-check explicit decompositions from
/// the paper on hypergraphs too large for full search.
pub fn is_candidate_td(h: &Hypergraph, td: &TreeDecomposition, bags: &[BitSet]) -> bool {
    if td.validate(h).is_err() {
        return false;
    }
    td.bags().iter().all(|b| bags.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn trivial_single_bag() {
        let h = named::cycle(4);
        let bags = vec![h.all_vertices()];
        let td = candidate_td(&h, &bags).expect("the full bag always works");
        assert_eq!(td.num_nodes(), 1);
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn rejects_when_bags_insufficient() {
        let h = named::cycle(4);
        // Only tiny bags: no decomposition can cover all edges.
        let bags = vec![h.vset(&["v0", "v1"]), h.vset(&["v2", "v3"])];
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn path_decomposes_with_edge_bags() {
        let h = named::cycle(6);
        // For a cycle, pairs of opposite-ish edges are needed; for the
        // simple smoke test give it the Soft bags of width 2.
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(C6) = 2");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
    }

    #[test]
    fn h2_soft_bags_admit_ctd_at_k2() {
        // Example 1: shw(H2) = 2.
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(H2) = 2 per Example 1");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
        // every bag must have an edge cover with at most 2 edges
        for bag in td.bags() {
            assert!(crate::cover::find_cover(&h, bag, 2).is_some());
        }
    }

    #[test]
    fn h2_soft_bags_reject_at_k1() {
        let h = named::h2();
        let bags = soft_bags(&h, 1);
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn extraction_timestamps_guard() {
        // Exercised implicitly by all successful extractions (debug_assert).
        let h = named::h2();
        let inst = CtdInstance::new(&h, &soft_bags(&h, 2));
        let sat = inst.satisfy();
        assert!(sat.accept);
        let td = inst.extract(&sat).unwrap();
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn worklist_agrees_with_jacobi_reference() {
        // Full table equality — bases and timestamps, not just accept.
        for (h, k) in [
            (named::h2(), 1),
            (named::h2(), 2),
            (named::cycle(6), 2),
            (named::grid(3, 3), 2),
            (named::triangle_star(3), 2),
        ] {
            let inst = CtdInstance::new(&h, &soft_bags(&h, k));
            let fast = inst.satisfy();
            let slow = inst.satisfy_jacobi();
            assert_eq!(fast.accept, slow.accept, "k = {k}");
            assert_eq!(fast.basis, slow.basis, "k = {k}");
        }
    }

    #[test]
    fn viable_candidates_match_first_principles() {
        let h = named::h2();
        let inst = CtdInstance::new(&h, &soft_bags(&h, 2));
        let all_true = vec![true; inst.blocks.len()];
        let mut buf = Vec::new();
        for b in 0..inst.blocks.len() {
            let viable: Vec<usize> = inst.viable_candidates(b).map(|(x, _)| x).collect();
            let direct: Vec<usize> = (0..inst.num_bags())
                .filter(|&x| inst.is_basis_with(b, x, &all_true, &mut buf))
                .collect();
            assert_eq!(viable, direct, "block {b}");
            for (x, kids) in inst.viable_candidates(b) {
                assert_eq!(inst.child_blocks(b, x), kids);
            }
        }
    }

    #[test]
    fn disconnected_hypergraph_handled() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        let bags = vec![h.vset(&["a", "b"]), h.vset(&["c", "d"])];
        let td = candidate_td(&h, &bags).expect("two isolated edges");
        assert_eq!(td.validate(&h), Ok(()));
        assert_eq!(td.num_nodes(), 2);
    }

    #[test]
    fn is_candidate_td_checks_bag_membership() {
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let (h2, td) = crate::td::tests::h2_soft_td();
        assert_eq!(h.num_edges(), h2.num_edges());
        assert!(is_candidate_td(&h2, &td, &bags));
        // With a restricted bag list the same TD is not a CTD.
        let few = vec![h.all_vertices()];
        assert!(!is_candidate_td(&h2, &td, &few));
    }

    #[test]
    fn dedup_drops_duplicates_and_empties() {
        let h = named::cycle(4);
        let bags = vec![
            h.empty_vertex_set(),
            h.all_vertices(),
            h.all_vertices(),
            h.vset(&["v0", "v1"]),
        ];
        let inst = CtdInstance::new(&h, &bags);
        assert_eq!(inst.num_bags(), 2);
    }

    #[test]
    fn shared_index_instances_agree_with_fresh_ones() {
        // Building many instances off one index must give the same
        // accept/reject and valid decompositions as isolated builds.
        let h = named::h2();
        let mut index = BlockIndex::new(&h);
        for k in 1..=3 {
            let ids = crate::soft::soft_bag_ids(&mut index, k, &crate::soft::SoftLimits::default())
                .unwrap();
            let via_index = candidate_td_ids(&mut index, &ids);
            let via_fresh = candidate_td(&h, &soft_bags(&h, k));
            assert_eq!(via_index.is_some(), via_fresh.is_some(), "k = {k}");
            if let Some(td) = via_index {
                assert_eq!(td.validate(&h), Ok(()));
                assert!(td.is_comp_nf(&h));
            }
        }
    }
}
