//! The `CandidateTD` problem and **Algorithm 1** of the paper
//! (Section 3): given a hypergraph `H` and a set `S` of candidate bags,
//! decide whether a CompNF tree decomposition using only bags from `S`
//! exists — and, going beyond the paper's decision version, extract one.
//!
//! Terminology (paper, Section 3):
//! - a **block** is a pair `(S, C)` with `C` a maximal set of
//!   `[S]`-connected vertices (or `C = ∅`, which is trivially satisfied and
//!   never materialised here);
//! - `(X, Y) ≤ (S, C)` iff `X ∪ Y ⊆ S ∪ C` and `Y ⊆ C`;
//! - a bag `X ≠ S` is a **basis** of `(S, C)` if, with `(X, Y_1..Y_ℓ)` the
//!   blocks headed by `X` that are `≤ (S, C)`: (1) `C ⊆ X ∪ ⋃Y_i`,
//!   (2) every edge intersecting `C` is inside `X ∪ ⋃Y_i`, and (3) every
//!   `(X, Y_i)` is satisfied. (Condition (1) follows from (2) since the
//!   hypergraph has no isolated vertices.)
//!
//! The dynamic program marks blocks satisfied in rounds until fixpoint and
//! accepts iff every block headed by `∅` (one per connected component of
//! `H`) is satisfied. Satisfaction timestamps make the extraction
//! provably terminating: a block's basis only references blocks satisfied
//! strictly earlier.

use crate::td::TreeDecomposition;
use softhw_hypergraph::{BitSet, FxHashMap, Hypergraph};

/// One materialised block `(S, C)` with `C ≠ ∅`.
#[derive(Clone, Debug)]
pub struct Block {
    /// Index of the head bag, or `None` for the `∅` head.
    pub head: Option<usize>,
    /// The component `C` (a vertex set disjoint from the head bag).
    pub comp: BitSet,
    /// `S ∪ C`.
    pub closure: BitSet,
    /// Edges `e` with `e ∩ C ≠ ∅` (the coverage obligations of the block).
    pub touching: Vec<usize>,
}

/// A prepared `CandidateTD` instance: deduplicated bags plus the full
/// block table. Shared by Algorithm 1 ([`CtdInstance::decide`]) and the
/// constrained/preference variants in [`crate::ctd_opt`].
pub struct CtdInstance<'h> {
    /// The hypergraph.
    pub h: &'h Hypergraph,
    /// Deduplicated, non-empty candidate bags.
    pub bags: Vec<BitSet>,
    /// All blocks with non-empty component.
    pub blocks: Vec<Block>,
    /// For each bag index, the blocks it heads.
    pub blocks_by_head: Vec<Vec<usize>>,
    /// Blocks headed by `∅` — one per connected component of `H`.
    pub root_blocks: Vec<usize>,
}

/// Result of the satisfaction DP of Algorithm 1.
pub struct Satisfaction {
    /// For each block: `Some((basis bag index, timestamp))` if satisfied.
    pub basis: Vec<Option<(usize, u32)>>,
    /// Whether all root blocks are satisfied (the "Accept" of Algorithm 1).
    pub accept: bool,
}

impl<'h> CtdInstance<'h> {
    /// Builds the block table for hypergraph `h` and candidate bag set
    /// `bags` (empty bags are dropped, duplicates merged).
    pub fn new(h: &'h Hypergraph, bags: &[BitSet]) -> Self {
        let mut dedup: FxHashMap<BitSet, usize> = FxHashMap::default();
        let mut unique: Vec<BitSet> = Vec::new();
        for b in bags {
            if b.is_empty() {
                continue;
            }
            dedup.entry(b.clone()).or_insert_with(|| {
                unique.push(b.clone());
                unique.len() - 1
            });
        }
        let mut blocks = Vec::new();
        let mut blocks_by_head = vec![Vec::new(); unique.len()];
        for (sid, s) in unique.iter().enumerate() {
            for comp in h.vertex_components(s) {
                let closure = s.union(&comp);
                let touching = h.edges_touching(&comp).to_vec();
                blocks_by_head[sid].push(blocks.len());
                blocks.push(Block {
                    head: Some(sid),
                    comp,
                    closure,
                    touching,
                });
            }
        }
        let mut root_blocks = Vec::new();
        for comp in h.vertex_components(&h.empty_vertex_set()) {
            let touching = h.edges_touching(&comp).to_vec();
            root_blocks.push(blocks.len());
            blocks.push(Block {
                head: None,
                comp: comp.clone(),
                closure: comp,
                touching,
            });
        }
        CtdInstance {
            h,
            bags: unique,
            blocks,
            blocks_by_head,
            root_blocks,
        }
    }

    /// Checks the basis conditions of bag `x` for block `b`, given the
    /// current satisfaction state. Returns `true` iff `x` is a basis.
    pub fn is_basis(&self, b: usize, x: usize, satisfied: &[bool]) -> bool {
        let blk = &self.blocks[b];
        if blk.head == Some(x) {
            return false; // X ≠ S
        }
        if !self.bags[x].is_subset(&blk.closure) {
            return false;
        }
        let mut u = self.bags[x].clone();
        for &b2 in &self.blocks_by_head[x] {
            if self.blocks[b2].comp.is_subset(&blk.comp) {
                if !satisfied[b2] {
                    return false;
                }
                u.union_with(&self.blocks[b2].comp);
            }
        }
        blk.touching.iter().all(|&e| self.h.edge(e).is_subset(&u))
    }

    /// The child blocks a basis `x` of block `b` delegates to: blocks
    /// headed by `x` whose component lies inside `b`'s component.
    pub fn child_blocks(&self, b: usize, x: usize) -> Vec<usize> {
        self.blocks_by_head[x]
            .iter()
            .copied()
            .filter(|&b2| self.blocks[b2].comp.is_subset(&self.blocks[b].comp))
            .collect()
    }

    /// Runs the satisfaction DP of Algorithm 1 to fixpoint.
    pub fn satisfy(&self) -> Satisfaction {
        let nb = self.blocks.len();
        let mut satisfied = vec![false; nb];
        let mut basis: Vec<Option<(usize, u32)>> = vec![None; nb];
        let mut clock: u32 = 0;
        loop {
            let mut changed = false;
            for b in 0..nb {
                if satisfied[b] {
                    continue;
                }
                for x in 0..self.bags.len() {
                    if self.is_basis(b, x, &satisfied) {
                        satisfied[b] = true;
                        basis[b] = Some((x, clock));
                        clock += 1;
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let accept = self.root_blocks.iter().all(|&b| satisfied[b]);
        Satisfaction { basis, accept }
    }

    /// Extracts the tree decomposition certified by a satisfaction table.
    /// Returns `None` if the instance was rejected. For disconnected
    /// hypergraphs, the per-component subtrees are chained under the first
    /// component's root (bags of distinct components are vertex-disjoint,
    /// so validity is preserved).
    pub fn extract(&self, sat: &Satisfaction) -> Option<TreeDecomposition> {
        if !sat.accept || self.root_blocks.is_empty() {
            return None;
        }
        let mut td: Option<TreeDecomposition> = None;
        for &rb in &self.root_blocks {
            let (x, _) = sat.basis[rb].expect("accepted root block has a basis");
            match td.as_mut() {
                None => {
                    let mut fresh = TreeDecomposition::new(self.bags[x].clone());
                    let root = fresh.root();
                    self.extract_children(sat, rb, x, root, &mut fresh);
                    td = Some(fresh);
                }
                Some(t) => {
                    let at = t.root();
                    let node = t.add_child(at, self.bags[x].clone());
                    self.extract_children(sat, rb, x, node, t);
                }
            }
        }
        td
    }

    fn extract_children(
        &self,
        sat: &Satisfaction,
        b: usize,
        x: usize,
        node: usize,
        td: &mut TreeDecomposition,
    ) {
        for b2 in self.child_blocks(b, x) {
            let (x2, ts2) = sat.basis[b2].expect("basis condition (3)");
            debug_assert!(
                ts2 < sat.basis[b].map(|(_, t)| t).unwrap_or(u32::MAX),
                "timestamps strictly decrease along extraction"
            );
            let child = td.add_child(node, self.bags[x2].clone());
            self.extract_children(sat, b2, x2, child, td);
        }
    }

    /// Algorithm 1 end-to-end: decide and extract.
    pub fn decide(&self) -> Option<TreeDecomposition> {
        let sat = self.satisfy();
        self.extract(&sat)
    }
}

/// Convenience wrapper: does a CompNF candidate tree decomposition of `h`
/// with bags from `bags` exist? Returns the witness decomposition.
pub fn candidate_td(h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
    CtdInstance::new(h, bags).decide()
}

/// Verifies that `td` is a valid tree decomposition of `h` whose bags all
/// come from `bags`. Used to machine-check explicit decompositions from
/// the paper on hypergraphs too large for full search.
pub fn is_candidate_td(h: &Hypergraph, td: &TreeDecomposition, bags: &[BitSet]) -> bool {
    if td.validate(h).is_err() {
        return false;
    }
    td.bags().iter().all(|b| bags.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn trivial_single_bag() {
        let h = named::cycle(4);
        let bags = vec![h.all_vertices()];
        let td = candidate_td(&h, &bags).expect("the full bag always works");
        assert_eq!(td.num_nodes(), 1);
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn rejects_when_bags_insufficient() {
        let h = named::cycle(4);
        // Only tiny bags: no decomposition can cover all edges.
        let bags = vec![h.vset(&["v0", "v1"]), h.vset(&["v2", "v3"])];
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn path_decomposes_with_edge_bags() {
        let h = named::cycle(6);
        // For a cycle, pairs of opposite-ish edges are needed; for the
        // simple smoke test give it the Soft bags of width 2.
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(C6) = 2");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
    }

    #[test]
    fn h2_soft_bags_admit_ctd_at_k2() {
        // Example 1: shw(H2) = 2.
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let td = candidate_td(&h, &bags).expect("shw(H2) = 2 per Example 1");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
        // every bag must have an edge cover with at most 2 edges
        for bag in td.bags() {
            assert!(crate::cover::find_cover(&h, bag, 2).is_some());
        }
    }

    #[test]
    fn h2_soft_bags_reject_at_k1() {
        let h = named::h2();
        let bags = soft_bags(&h, 1);
        assert!(candidate_td(&h, &bags).is_none());
    }

    #[test]
    fn extraction_timestamps_guard() {
        // Exercised implicitly by all successful extractions (debug_assert).
        let h = named::h2();
        let inst = CtdInstance::new(&h, &soft_bags(&h, 2));
        let sat = inst.satisfy();
        assert!(sat.accept);
        let td = inst.extract(&sat).unwrap();
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn disconnected_hypergraph_handled() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        let bags = vec![h.vset(&["a", "b"]), h.vset(&["c", "d"])];
        let td = candidate_td(&h, &bags).expect("two isolated edges");
        assert_eq!(td.validate(&h), Ok(()));
        assert_eq!(td.num_nodes(), 2);
    }

    #[test]
    fn is_candidate_td_checks_bag_membership() {
        let h = named::h2();
        let bags = soft_bags(&h, 2);
        let (h2, td) = crate::td::tests::h2_soft_td();
        assert_eq!(h.num_edges(), h2.num_edges());
        assert!(is_candidate_td(&h2, &td, &bags));
        // With a restricted bag list the same TD is not a CTD.
        let few = vec![h.all_vertices()];
        assert!(!is_candidate_td(&h2, &td, &few));
    }

    #[test]
    fn dedup_drops_duplicates_and_empties() {
        let h = named::cycle(4);
        let bags = vec![
            h.empty_vertex_set(),
            h.all_vertices(),
            h.all_vertices(),
            h.vset(&["v0", "v1"]),
        ];
        let inst = CtdInstance::new(&h, &bags);
        assert_eq!(inst.bags.len(), 2);
    }
}
