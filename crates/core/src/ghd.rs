//! Generalised hypertree decompositions (GHDs) and hypertree
//! decompositions (HDs) — a GHD plus the *special condition*
//! `B(T_u) ∩ ⋃λ(u) ⊆ B(u)` (Section 2).

use crate::cover;
use crate::td::{TdError, TreeDecomposition};
use softhw_hypergraph::Hypergraph;

/// A generalised hypertree decomposition `(T, λ, B)`.
#[derive(Clone, Debug)]
pub struct Ghd {
    /// The underlying tree decomposition `(T, B)`.
    pub td: TreeDecomposition,
    /// `λ(u)`: for each node, the edge ids covering its bag.
    pub lambdas: Vec<Vec<usize>>,
}

impl Ghd {
    /// GHD width: `max |λ(u)|`.
    pub fn width(&self) -> usize {
        self.lambdas.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Approximate heap footprint in bytes (tree plus λ lists).
    pub fn approx_bytes(&self) -> u64 {
        self.td.approx_bytes()
            + self
                .lambdas
                .iter()
                .map(|l| (l.capacity() * 8 + std::mem::size_of::<Vec<usize>>()) as u64)
                .sum::<u64>()
    }

    /// Validates the GHD conditions: the underlying TD is valid and
    /// `B(u) ⊆ ⋃λ(u)` for every node.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), TdError> {
        self.td.validate(h)?;
        assert_eq!(self.lambdas.len(), self.td.num_nodes());
        for u in 0..self.td.num_nodes() {
            let cov = h.union_of_edges(self.lambdas[u].iter().copied());
            if !self.td.bag(u).is_subset(&cov) {
                return Err(TdError::NotCovered { node: u });
            }
        }
        Ok(())
    }

    /// Checks the special condition, i.e. whether this GHD is an HD:
    /// for every node `u`, `B(T_u) ∩ ⋃λ(u) ⊆ B(u)`.
    pub fn check_special_condition(&self, h: &Hypergraph) -> Result<(), TdError> {
        for u in 0..self.td.num_nodes() {
            let mut below = self.td.subtree_vertices(u);
            below.intersect_with(&h.union_of_edges(self.lambdas[u].iter().copied()));
            if !below.is_subset(self.td.bag(u)) {
                return Err(TdError::SpecialConditionViolated { node: u });
            }
        }
        Ok(())
    }

    /// True iff this is a valid HD of `h` (valid GHD + special condition).
    pub fn is_hd(&self, h: &Hypergraph) -> bool {
        self.validate(h).is_ok() && self.check_special_condition(h).is_ok()
    }

    /// Upgrades a plain tree decomposition into a GHD by computing, for
    /// each bag, some edge cover with at most `k` edges. Returns `None` if
    /// a bag has no cover of size `<= k`.
    pub fn from_td(h: &Hypergraph, td: TreeDecomposition, k: usize) -> Option<Ghd> {
        let mut lambdas = Vec::with_capacity(td.num_nodes());
        for u in 0..td.num_nodes() {
            lambdas.push(cover::find_cover(h, td.bag(u), k)?);
        }
        Some(Ghd { td, lambdas })
    }

    /// Pretty-prints bags with λ-labels.
    pub fn render(&self, h: &Hypergraph) -> String {
        let mut out = String::new();
        fn rec(g: &Ghd, h: &Hypergraph, u: usize, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            let lam: Vec<String> = g.lambdas[u].iter().map(|&e| h.render_edge(e)).collect();
            out.push_str(&format!(
                "λ: [{}]  χ: {}\n",
                lam.join(", "),
                h.render_vertex_set(g.td.bag(u))
            ));
            for &c in g.td.children(u) {
                rec(g, h, c, depth + 1, out);
            }
        }
        rec(self, h, self.td.root(), 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;

    /// The width-3 GHD of H'3 from Figure 2b (root plus the right-hand
    /// chain of the figure; left chain elided in this unit test — the full
    /// decomposition is exercised in the soft_iter tests).
    #[test]
    fn from_td_covers_bags() {
        let h = named::h2();
        let (h2, td) = crate::td::tests::h2_soft_td();
        assert_eq!(h.num_edges(), h2.num_edges());
        let ghd = Ghd::from_td(&h2, td, 2).expect("width-2 covers exist");
        assert_eq!(ghd.width(), 2);
        assert_eq!(ghd.validate(&h2), Ok(()));
    }

    #[test]
    fn width_counts_largest_lambda() {
        let h = named::cycle(4);
        let mut td = TreeDecomposition::new(h.all_vertices());
        let _ = &mut td;
        let ghd = Ghd::from_td(&h, td, 2).unwrap();
        assert_eq!(ghd.width(), 2);
    }

    #[test]
    fn special_condition_detects_violation() {
        // Root bag {x,y}, λ = {e_xyz} where z occurs below: SCV at root.
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("exyz", &["x", "y", "z"]);
        b.edge("ezw", &["z", "w"]);
        let h = b.build();
        let mut td = TreeDecomposition::new(h.vset(&["x", "y"]));
        let c = td.add_child(td.root(), h.vset(&["x", "y", "z"]));
        td.add_child(c, h.vset(&["z", "w"]));
        let ghd = Ghd {
            td,
            lambdas: vec![vec![0], vec![0], vec![1]],
        };
        assert_eq!(ghd.validate(&h), Ok(()));
        assert!(matches!(
            ghd.check_special_condition(&h),
            Err(TdError::SpecialConditionViolated { node: 0 })
        ));
        assert!(!ghd.is_hd(&h));
    }

    #[test]
    fn hd_accepts_well_formed() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("exyz", &["x", "y", "z"]);
        b.edge("ezw", &["z", "w"]);
        let h = b.build();
        let mut td = TreeDecomposition::new(h.vset(&["x", "y", "z"]));
        td.add_child(td.root(), h.vset(&["z", "w"]));
        let ghd = Ghd {
            td,
            lambdas: vec![vec![0], vec![1]],
        };
        assert!(ghd.is_hd(&h));
    }

    #[test]
    fn from_td_fails_when_width_too_small() {
        let h = named::cycle(6);
        let td = TreeDecomposition::new(h.all_vertices());
        assert!(Ghd::from_td(&h, td, 2).is_none());
    }
}
