//! Robber & Marshals games and the paper's **Institutional Robber and
//! Marshals Game** (IRMG, Appendix A.1).
//!
//! In the classic game (Gottlob–Leone–Scarcello), `k` marshals occupy up
//! to `k` edges; the robber stands on a vertex and, when the marshals
//! move from `M` to `M'`, may run along paths avoiding `⋃M ∩ ⋃M'`.
//! Monotone winning strategies for `k` marshals characterise `hw ≤ k`.
//!
//! The institutional variant adds `k` *administrators* on edges `A` who
//! designate an `[A]`-edge-component `C`; marshals are only effective
//! inside it: the effectively marshalled space is `η = ⋃C ∩ ⋃M`. Children
//! of a game-tree node are the `[η']`-components `[η]`-connected to the
//! current escape space (the formal game-tree definition of the paper,
//! which Theorem 12 uses to show `mon-irmw(H) ≤ shw(H)`).
//!
//! Both games are solved exactly by a least-fixpoint (attractor)
//! computation over the finite state space of `(η, escape-space)` pairs —
//! every play is memoryless in that pair. Exponential in `k` and `|E|`;
//! meant for the small hypergraphs of the paper's examples and for
//! cross-validating the width solvers (`mon-rmw = hw`).

use softhw_hypergraph::{BitSet, FxHashMap, Hypergraph};

/// Which game to solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GameVariant {
    /// Classic Robber & Marshals: `η = ⋃M`, robber blocked by
    /// `η_old ∩ η_new` while the marshals are in transit.
    RobberMarshals,
    /// Institutional RMG with the *move rule* of Appendix A.1, step (3):
    /// the robber runs along `[η_old ∩ η_new]`-avoiding paths, like in the
    /// classic game. This is the physically meaningful variant.
    Institutional,
    /// Institutional RMG with the paper's *game-tree* successor
    /// definition: children are the `[η_new]`-components that are
    /// `[η_old]`-connected to the escape space. Strictly cop-friendlier
    /// than [`GameVariant::Institutional`] (the robber cannot slip through
    /// positions the marshals are vacating); e.g. a single institutional
    /// marshal already wins `C4` under this reading. Kept because it is
    /// the formal device behind Theorem 12's proof.
    InstitutionalTreeRule,
}

/// A marshalling option: the effectively marshalled space `η` and the
/// `[η]`-vertex-components (the possible next escape spaces).
struct Move {
    eta: BitSet,
    comps: Vec<BitSet>,
}

fn subsets_up_to_k(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    fn rec(n: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            return;
        }
        for i in start..n {
            cur.push(i);
            out.push(cur.clone());
            rec(n, k, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(n, k, 0, &mut Vec::new(), &mut out);
    out
}

/// Enumerates the distinct `η` values reachable by the marshalling side
/// with `k` pieces, together with their escape-space components.
fn move_set(h: &Hypergraph, k: usize, variant: GameVariant) -> Vec<Move> {
    let mut etas: FxHashMap<BitSet, ()> = FxHashMap::default();
    etas.insert(h.empty_vertex_set(), ());
    let marshal_subsets = subsets_up_to_k(h.num_edges(), k);
    match variant {
        GameVariant::RobberMarshals => {
            for m in &marshal_subsets {
                etas.insert(h.union_of_edges(m.iter().copied()), ());
            }
        }
        GameVariant::Institutional | GameVariant::InstitutionalTreeRule => {
            // Distinct ⋃C over administrator placements, then intersect
            // with distinct ⋃M.
            let mut comp_unions: FxHashMap<BitSet, ()> = FxHashMap::default();
            for a in &marshal_subsets {
                let sep = h.union_of_edges(a.iter().copied());
                for comp in h.edge_components(&sep) {
                    comp_unions.insert(h.union_of_edge_set(&comp), ());
                }
            }
            let mut marshal_unions: FxHashMap<BitSet, ()> = FxHashMap::default();
            for m in &marshal_subsets {
                marshal_unions.insert(h.union_of_edges(m.iter().copied()), ());
            }
            for cu in comp_unions.keys() {
                for mu in marshal_unions.keys() {
                    etas.insert(cu.intersection(mu), ());
                }
            }
        }
    }
    etas.into_keys()
        .map(|eta| {
            let comps = h.vertex_components(&eta);
            Move { eta, comps }
        })
        .collect()
}

/// Solves the `k`-marshal game on `h`. Returns whether the marshalling
/// side has a (monotone, if requested) winning strategy.
pub fn has_winning_strategy(
    h: &Hypergraph,
    k: usize,
    variant: GameVariant,
    monotone: bool,
) -> bool {
    if h.num_vertices() == 0 {
        return true;
    }
    let moves = move_set(h, k, variant);
    // State space: (move index that produced η, escape component) plus the
    // initial state (η = ∅, ε = V). States with equal (η, ε) are merged.
    let mut state_ids: FxHashMap<(BitSet, BitSet), usize> = FxHashMap::default();
    let mut states: Vec<(BitSet, BitSet)> = Vec::new();
    let intern = |eta: &BitSet,
                  eps: &BitSet,
                  states: &mut Vec<(BitSet, BitSet)>,
                  ids: &mut FxHashMap<(BitSet, BitSet), usize>| {
        *ids.entry((eta.clone(), eps.clone())).or_insert_with(|| {
            states.push((eta.clone(), eps.clone()));
            states.len() - 1
        })
    };
    let initial = intern(
        &h.empty_vertex_set(),
        &h.all_vertices(),
        &mut states,
        &mut state_ids,
    );
    // Materialise all reachable states: (η_m, ε) for every move m and
    // component ε of it.
    for m in &moves {
        for c in &m.comps {
            intern(&m.eta, c, &mut states, &mut state_ids);
        }
    }
    // Least fixpoint: a state is winning if some move's successors are all
    // already winning (no successors = capture = winning).
    let mut winning = vec![false; states.len()];
    loop {
        let mut changed = false;
        for s in 0..states.len() {
            if winning[s] {
                continue;
            }
            let (eta_old, eps) = &states[s];
            'moves: for m in &moves {
                let blocker = match variant {
                    GameVariant::RobberMarshals | GameVariant::Institutional => {
                        eta_old.intersection(&m.eta)
                    }
                    GameVariant::InstitutionalTreeRule => eta_old.clone(),
                };
                let reach = reachable_avoiding(h, eps, &blocker);
                for c in &m.comps {
                    if !c.intersects(&reach) {
                        continue; // not a successor
                    }
                    if monotone && !c.is_subset(eps) {
                        continue 'moves; // move not monotone-admissible
                    }
                    let succ = state_ids[&(m.eta.clone(), c.clone())];
                    if !winning[succ] {
                        continue 'moves;
                    }
                }
                winning[s] = true;
                changed = true;
                break;
            }
        }
        if !changed {
            return winning[initial];
        }
    }
}

/// Vertices reachable from `from \ avoid` along paths avoiding `avoid`.
fn reachable_avoiding(h: &Hypergraph, from: &BitSet, avoid: &BitSet) -> BitSet {
    let mut reach = from.difference(avoid);
    let mut frontier: Vec<usize> = reach.to_vec();
    while let Some(v) = frontier.pop() {
        let mut nbrs = h.closed_neighbourhood(v).difference(avoid);
        nbrs.difference_with(&reach);
        for w in nbrs.iter() {
            reach.insert(w);
            frontier.push(w);
        }
    }
    reach
}

fn least_k(h: &Hypergraph, variant: GameVariant, monotone: bool) -> usize {
    (1..=h.num_edges().max(1))
        .find(|&k| has_winning_strategy(h, k, variant, monotone))
        .expect("|E| marshals always win")
}

/// Marshal width `mw(H)`: least `k` with a winning strategy in the
/// classic game. A lower bound on `ghw` (Adler).
pub fn marshal_width(h: &Hypergraph) -> usize {
    least_k(h, GameVariant::RobberMarshals, false)
}

/// Monotone marshal width: least `k` with a *monotone* winning strategy;
/// equals `hw(H)` (Gottlob–Leone–Scarcello).
pub fn mon_marshal_width(h: &Hypergraph) -> usize {
    least_k(h, GameVariant::RobberMarshals, true)
}

/// Institutional robber-and-marshal width `irmw(H)` (Appendix A.1, with
/// the physical move rule).
pub fn irm_width(h: &Hypergraph) -> usize {
    least_k(h, GameVariant::Institutional, false)
}

/// Monotone institutional width `mon-irmw(H)` under the physical move
/// rule.
pub fn mon_irm_width(h: &Hypergraph) -> usize {
    least_k(h, GameVariant::Institutional, true)
}

/// Monotone institutional width under the paper's game-tree successor
/// rule — the exact object of Theorem 12's `mon-irmw(H) ≤ shw(H)`.
pub fn mon_irm_width_tree(h: &Hypergraph) -> usize {
    least_k(h, GameVariant::InstitutionalTreeRule, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;
    use softhw_hypergraph::random::{random_hypergraph, RandomConfig};

    #[test]
    fn single_edge_width_1() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e", &["x", "y"]);
        let h = b.build();
        assert_eq!(mon_marshal_width(&h), 1);
        assert_eq!(mon_irm_width(&h), 1);
    }

    #[test]
    fn mon_marshal_width_equals_hw_on_examples() {
        // GLS: monotone RMG width = hw.
        for (h, expected) in [
            (named::cycle(4), 2),
            (named::cycle(5), 2),
            (named::four_cycle_query(), 2),
        ] {
            assert_eq!(mon_marshal_width(&h), expected);
            assert_eq!(crate::hw::hw(&h).0, expected);
        }
    }

    #[test]
    fn h2_game_widths_match_paper() {
        // Appendix A.1: for H2, 2 marshals win the plain game but a
        // monotone strategy needs 3 (= hw); the institutional game is
        // monotonically winnable with 2 (= shw).
        let h = named::h2();
        assert_eq!(marshal_width(&h), 2);
        assert_eq!(mon_marshal_width(&h), 3);
        assert_eq!(mon_irm_width(&h), 2);
        assert_eq!(irm_width(&h), 2);
    }

    #[test]
    fn mon_irmw_tree_bounded_by_shw_random() {
        // Theorem 12 on random small hypergraphs (the game-tree rule the
        // proof is stated for).
        for seed in 0..6 {
            let h = random_hypergraph(
                &RandomConfig {
                    num_vertices: 6,
                    num_edges: 6,
                    min_arity: 2,
                    max_arity: 3,
                    connect: true,
                },
                seed,
            );
            let (shw_val, _) = crate::shw::shw(&h);
            let mi = mon_irm_width_tree(&h);
            assert!(mi <= shw_val, "seed {seed}: mon-irmw {mi} > shw {shw_val}");
        }
    }

    #[test]
    fn tree_rule_is_cop_friendlier() {
        // The tree rule blocks the robber with the *old* marshalled space,
        // so it can only help the marshals.
        for h in [named::cycle(4), named::cycle(5), named::h2()] {
            assert!(mon_irm_width_tree(&h) <= mon_irm_width(&h));
        }
    }

    #[test]
    fn mon_rmw_equals_hw_random() {
        for seed in 0..6 {
            let h = random_hypergraph(
                &RandomConfig {
                    num_vertices: 6,
                    num_edges: 5,
                    min_arity: 2,
                    max_arity: 3,
                    connect: true,
                },
                seed,
            );
            let (hw_val, _) = crate::hw::hw(&h);
            assert_eq!(mon_marshal_width(&h), hw_val, "seed {seed}: mon-rmw != hw");
        }
    }

    #[test]
    fn widths_are_monotone_in_variant() {
        // irmw <= mon-irmw and mw <= mon-mw by definition.
        let h = named::h2();
        assert!(irm_width(&h) <= mon_irm_width(&h));
        assert!(marshal_width(&h) <= mon_marshal_width(&h));
    }
}
