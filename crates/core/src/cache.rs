//! Cross-query decomposition cache: solver-level memoisation on top of
//! the structural-hash [`IndexCache`] of `softhw-hypergraph`.
//!
//! Repeated workloads (the `shw` width sweep per query, `table1`-style
//! harness runs, a service answering many queries over one schema)
//! re-decompose structurally identical hypergraphs. [`DecompCache`] keeps,
//! per structurally distinct hypergraph:
//!
//! - one warm [`BlockIndex`] (arena + `[S]`-components + blocks + unions),
//!   shared across widths `k` and across queries;
//! - prepared [`CtdInstance`]s *with their satisfied-block tables*, keyed
//!   by the candidate-bag id set, so a repeated Algorithm 1 run is a hash
//!   probe plus extraction — the DP itself is not re-run;
//! - `shw ≤ k` / `hw ≤ k` decisions with witness decompositions, so width
//!   sweeps over repeated queries skip generation and search entirely.
//!
//! All cached entry points return exactly what the cold entry points
//! return (the solvers are deterministic); the unit tests assert this
//! decomposition-for-decomposition.

use crate::ctd::{CtdInstance, Satisfaction};
use crate::ghd::Ghd;
use crate::hw;
use crate::soft::{soft_bag_ids, LimitExceeded, SoftLimits};
use crate::td::TreeDecomposition;
use softhw_hypergraph::cache::IndexCache;
use softhw_hypergraph::{BagId, BitSet, FxHashMap, Hypergraph};

/// Hit/miss counters of a [`DecompCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompCacheStats {
    /// Prepared-instance probes answered from the cache.
    pub instance_hits: u64,
    /// Prepared-instance probes that built (and satisfied) fresh.
    pub instance_misses: u64,
    /// Width-decision probes answered from the cache.
    pub result_hits: u64,
    /// Width-decision probes computed fresh.
    pub result_misses: u64,
}

/// A prepared instance together with its satisfaction table.
struct CachedInstance {
    /// The interned candidate-bag ids this instance was built from
    /// (cache-key verification against hash collisions).
    ids: Vec<BagId>,
    inst: CtdInstance,
    sat: Satisfaction,
}

/// Cross-query cache for Algorithm 1 instances and width decisions. See
/// the module docs for what is shared at which level.
#[derive(Default)]
pub struct DecompCache {
    indexes: IndexCache,
    instances: FxHashMap<(u64, u64), Vec<CachedInstance>>,
    shw_results: FxHashMap<(u64, usize), Option<TreeDecomposition>>,
    hw_results: FxHashMap<(u64, usize), Option<Ghd>>,
    stats: DecompCacheStats,
}

fn hash_ids(ids: &[BagId]) -> u64 {
    softhw_hypergraph::fxhash::hash_u64_iter(
        std::iter::once(ids.len() as u64).chain(ids.iter().map(|id| id.0 as u64)),
    )
}

impl DecompCache {
    /// An empty cache.
    pub fn new() -> Self {
        DecompCache::default()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> DecompCacheStats {
        self.stats
    }

    /// The underlying structural-hash index cache.
    pub fn index_cache(&self) -> &IndexCache {
        &self.indexes
    }

    /// The prepared (instance, satisfaction) pair for `(h, bags)`,
    /// building and satisfying on first sight.
    fn instance(&mut self, h: &Hypergraph, bags: &[BitSet]) -> &CachedInstance {
        let (hash, index) = self.indexes.entry(h);
        let ids: Vec<BagId> = bags.iter().map(|b| index.arena.intern(b)).collect();
        let key = (hash, hash_ids(&ids));
        let bucket = self.instances.entry(key).or_default();
        if let Some(pos) = bucket.iter().position(|c| c.ids == ids) {
            self.stats.instance_hits += 1;
            return &bucket[pos];
        }
        self.stats.instance_misses += 1;
        let inst = CtdInstance::build(index, &ids);
        let sat = inst.satisfy();
        bucket.push(CachedInstance { ids, inst, sat });
        bucket.last().expect("just pushed")
    }

    /// Algorithm 1 with cross-query reuse: repeated calls with a
    /// structurally identical hypergraph and bag set skip index build,
    /// block construction, *and* the satisfaction DP — only extraction
    /// runs. Returns exactly what [`crate::ctd::candidate_td`] returns.
    pub fn candidate_td(&mut self, h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
        let cached = self.instance(h, bags);
        cached.inst.extract(&cached.sat)
    }

    /// The prepared instance for `(h, bags)` (for callers that want to
    /// run their own DP variants — e.g. [`crate::ctd_opt`] — against the
    /// cached block tables).
    pub fn instance_for(&mut self, h: &Hypergraph, bags: &[BitSet]) -> &CtdInstance {
        &self.instance(h, bags).inst
    }

    /// `shw(h) ≤ k` with cross-query memoisation of the decision and
    /// witness. Generation limits only apply on a cache miss.
    pub fn shw_leq(
        &mut self,
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Option<TreeDecomposition>, LimitExceeded> {
        let (hash, index) = self.indexes.entry(h);
        if let Some(cached) = self.shw_results.get(&(hash, k)) {
            self.stats.result_hits += 1;
            return Ok(cached.clone());
        }
        self.stats.result_misses += 1;
        let bags = soft_bag_ids(index, k, limits)?;
        let result = CtdInstance::build(index, &bags).decide();
        self.shw_results.insert((hash, k), result.clone());
        Ok(result)
    }

    /// `shw(h)` exactly, memoised per width across queries. Returns what
    /// [`crate::shw::shw`] returns.
    pub fn shw(&mut self, h: &Hypergraph) -> (usize, TreeDecomposition) {
        crate::width_sweep(h.num_edges(), |k| {
            self.shw_leq(h, k, &SoftLimits::default())
                .expect("default limits exceeded")
        })
    }

    /// `hw(h) ≤ k` with cross-query memoisation (decision + witness).
    pub fn hw_leq(&mut self, h: &Hypergraph, k: usize) -> Option<Ghd> {
        let (hash, _) = self.indexes.entry(h);
        if let Some(cached) = self.hw_results.get(&(hash, k)) {
            self.stats.result_hits += 1;
            return cached.clone();
        }
        self.stats.result_misses += 1;
        let result = hw::hw_leq(h, k);
        self.hw_results.insert((hash, k), result.clone());
        result
    }

    /// `hw(h)` exactly, memoised per width across queries.
    pub fn hw(&mut self, h: &Hypergraph) -> (usize, Ghd) {
        crate::width_sweep(h.num_edges(), |k| self.hw_leq(h, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shw;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn cached_candidate_td_equals_cold_runs() {
        let mut cache = DecompCache::new();
        for (h, k) in [
            (named::h2(), 1),
            (named::h2(), 2),
            (named::cycle(6), 2),
            (named::grid(3, 3), 2),
        ] {
            let bags = soft_bags(&h, k);
            let cold = crate::ctd::candidate_td(&h, &bags);
            let warm1 = cache.candidate_td(&h, &bags);
            let warm2 = cache.candidate_td(&h, &bags);
            assert_eq!(cold.is_some(), warm1.is_some(), "k = {k}");
            match (&cold, &warm1, &warm2) {
                (Some(c), Some(w1), Some(w2)) => {
                    // Same decomposition, node for node.
                    assert_eq!(c.bags(), w1.bags(), "k = {k}");
                    assert_eq!(w1.bags(), w2.bags(), "k = {k}");
                }
                (None, None, None) => {}
                _ => panic!("cold/warm disagree at k = {k}"),
            }
        }
        let s = cache.stats();
        assert!(s.instance_hits >= 4, "repeat calls must hit: {s:?}");
    }

    #[test]
    fn cached_shw_and_hw_equal_cold_runs() {
        let mut cache = DecompCache::new();
        for h in [named::h2(), named::cycle(8), named::triangle_star(3)] {
            let (cold_w, cold_td) = shw::shw(&h);
            let (warm_w, warm_td) = cache.shw(&h);
            assert_eq!(cold_w, warm_w);
            assert_eq!(cold_td.bags(), warm_td.bags());
            // Second query over the same structure: pure memo hits.
            let before = cache.stats().result_misses;
            let (again_w, again_td) = cache.shw(&h);
            assert_eq!(again_w, warm_w);
            assert_eq!(again_td.bags(), warm_td.bags());
            assert_eq!(cache.stats().result_misses, before, "sweep must be cached");

            let (cold_hw, _) = hw::hw(&h);
            let (warm_hw, warm_ghd) = cache.hw(&h);
            assert_eq!(cold_hw, warm_hw);
            assert!(warm_ghd.is_hd(&h));
        }
    }

    #[test]
    fn distinct_bag_sets_get_distinct_instances() {
        let mut cache = DecompCache::new();
        let h = named::h2();
        let b1 = soft_bags(&h, 1);
        let b2 = soft_bags(&h, 2);
        assert!(cache.candidate_td(&h, &b1).is_none());
        assert!(cache.candidate_td(&h, &b2).is_some());
        assert_eq!(cache.stats().instance_misses, 2);
        assert!(cache.candidate_td(&h, &b2).is_some());
        assert_eq!(cache.stats().instance_hits, 1);
    }
}
