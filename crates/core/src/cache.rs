//! Cross-query decomposition cache: solver-level memoisation on top of
//! the structural-hash [`IndexCache`] of `softhw-hypergraph`.
//!
//! Repeated workloads (the `shw` width sweep per query, `table1`-style
//! harness runs, a service answering many queries over one schema)
//! re-decompose structurally identical hypergraphs. [`DecompCache`] keeps,
//! per structurally distinct hypergraph:
//!
//! - one warm [`BlockIndex`] (arena + `[S]`-components + blocks + unions),
//!   shared across widths `k` and across queries;
//! - prepared [`CtdInstance`]s *with their satisfied-block tables*, keyed
//!   by the candidate-bag id set, so a repeated Algorithm 1 run is a hash
//!   probe plus extraction — the DP itself is not re-run;
//! - `shw ≤ k` / `hw ≤ k` decisions with witness decompositions, so width
//!   sweeps over repeated queries skip generation and search entirely.
//!
//! All cached entry points return exactly what the cold entry points
//! return (the solvers are deterministic); the unit tests assert this
//! decomposition-for-decomposition.
//!
//! **Entry point:** [`DecompCache::solve`] consumes a
//! [`crate::spec::SolveSpec`] and is the one front door over every
//! (class × exactness × budget × reduction) corner. The historical
//! per-corner methods are kept as thin compatibility wrappers:
//!
//! | deprecated wrapper            | `SolveSpec` replacement                          |
//! |-------------------------------|--------------------------------------------------|
//! | `shw` / `try_shw(_with)`      | `solve(h, &SolveSpec::shw())`                    |
//! | `try_shw_budgeted`            | `solve(h, &SolveSpec::shw().with_budget(b))`     |
//! | `shw_leq(_budgeted)`          | `solve(h, &SolveSpec::shw_leq(k)…)`              |
//! | `hw` / `try_hw(_budgeted)`    | `solve(h, &SolveSpec::hw()…)`                    |
//! | `hw_leq(_budgeted)`           | `solve(h, &SolveSpec::hw_leq(k)…)`               |
//!
//! The cache is **bounded**: it tracks at most
//! [`DecompCache::max_graphs`] structurally distinct hypergraphs and
//! evicts the least-recently-used one (warm index, prepared instances,
//! sweep state, and width decisions together) when a new structure would
//! exceed the bound. Eviction only costs recomputation — an evicted
//! structure rebuilds cold on its next query, with identical results.

use crate::budget::Budget;
use crate::ctd::{CtdInstance, Satisfaction};
use crate::error::DecompError;
use crate::ghd::Ghd;
use crate::hw;
use crate::reduce_solve::{lift_ghd, lift_td};
use crate::soft::{soft_bag_ids, soft_bag_ids_budgeted, SoftLimits};
use crate::spec::{SolveClass, SolveSpec, Solved};
use crate::sweep::IncrementalSweep;
use crate::td::TreeDecomposition;
use softhw_hypergraph::cache::IndexCache;
use softhw_hypergraph::{BagId, BitSet, FxHashMap, FxHashSet, Hypergraph, Reduction};
use std::sync::Arc;

/// Hit/miss counters of a [`DecompCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompCacheStats {
    /// Prepared-instance probes answered from the cache.
    pub instance_hits: u64,
    /// Prepared-instance probes that built (and satisfied) fresh.
    pub instance_misses: u64,
    /// Width-decision probes answered from the cache.
    pub result_hits: u64,
    /// Width-decision probes computed fresh.
    pub result_misses: u64,
    /// Hypergraphs evicted to keep the cache within its bound.
    pub evictions: u64,
}

/// A prepared instance together with its satisfaction table.
struct CachedInstance {
    /// The interned candidate-bag ids this instance was built from
    /// (cache-key verification against hash collisions).
    ids: Vec<BagId>,
    inst: CtdInstance,
    sat: Satisfaction,
}

/// Default bound on the number of structurally distinct hypergraphs a
/// [`DecompCache`] tracks before evicting the least-recently-used one.
pub const DEFAULT_MAX_GRAPHS: usize = 128;

/// Cross-query cache for Algorithm 1 instances and width decisions. See
/// the module docs for what is shared at which level and how the
/// capacity bound evicts.
pub struct DecompCache {
    indexes: IndexCache,
    instances: FxHashMap<(u64, u64), Vec<CachedInstance>>,
    shw_results: FxHashMap<(u64, usize), Option<TreeDecomposition>>,
    hw_results: FxHashMap<(u64, usize), Option<Ghd>>,
    /// Incremental sweep state per hypergraph, so repeated `shw` sweeps
    /// (and first-time sweeps over many widths) ride the grown instance.
    sweeps: FxHashMap<u64, IncrementalSweep>,
    /// Cached full-pipeline reduction per hypergraph (shared so the
    /// service reports reduction stats without recomputing).
    reductions: FxHashMap<u64, Arc<Reduction>>,
    /// Cached no-peel reduction per hypergraph (the HD-safe variant the
    /// `hw` path uses).
    reductions_no_peel: FxHashMap<u64, Arc<Reduction>>,
    /// When set, every entry point takes the raw solver path (the
    /// service's `--no-reduce` escape hatch).
    no_reduce: bool,
    /// hash → last-use tick, the LRU clock.
    last_used: FxHashMap<u64, u64>,
    /// Hashes exempt from LRU eviction (hot-schema pinning): a pinned
    /// hypergraph's warm state survives any eviction storm.
    pinned: FxHashSet<u64>,
    tick: u64,
    max_graphs: usize,
    stats: DecompCacheStats,
}

impl Default for DecompCache {
    fn default() -> Self {
        DecompCache::with_capacity(DEFAULT_MAX_GRAPHS)
    }
}

fn hash_ids(ids: &[BagId]) -> u64 {
    softhw_hypergraph::fxhash::hash_u64_iter(
        std::iter::once(ids.len() as u64).chain(ids.iter().map(|id| id.0 as u64)),
    )
}

impl DecompCache {
    /// An empty cache bounded to [`DEFAULT_MAX_GRAPHS`] hypergraphs.
    pub fn new() -> Self {
        DecompCache::default()
    }

    /// An empty cache tracking at most `max_graphs` structurally
    /// distinct hypergraphs (minimum 1).
    pub fn with_capacity(max_graphs: usize) -> Self {
        DecompCache {
            indexes: IndexCache::new(),
            instances: FxHashMap::default(),
            shw_results: FxHashMap::default(),
            hw_results: FxHashMap::default(),
            sweeps: FxHashMap::default(),
            reductions: FxHashMap::default(),
            reductions_no_peel: FxHashMap::default(),
            no_reduce: false,
            last_used: FxHashMap::default(),
            pinned: FxHashSet::default(),
            tick: 0,
            max_graphs: max_graphs.max(1),
            stats: DecompCacheStats::default(),
        }
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> DecompCacheStats {
        self.stats
    }

    /// The underlying structural-hash index cache.
    pub fn index_cache(&self) -> &IndexCache {
        &self.indexes
    }

    /// The capacity bound (structurally distinct hypergraphs).
    pub fn max_graphs(&self) -> usize {
        self.max_graphs
    }

    /// Number of structurally distinct hypergraphs currently tracked.
    pub fn tracked_graphs(&self) -> usize {
        self.last_used.len()
    }

    /// Approximate heap footprint in bytes of everything this cache
    /// retains: warm indexes, prepared instances with satisfaction
    /// tables, width-decision witnesses, sweep state, and reductions.
    /// Divide by [`DecompCache::tracked_graphs`] for the
    /// `bytes_per_cached_schema` memory stat the service reports.
    pub fn approx_bytes(&self) -> u64 {
        let instances: u64 = self
            .instances
            .values()
            .flat_map(|bucket| bucket.iter())
            .map(|c| {
                (c.ids.capacity() * std::mem::size_of::<BagId>()) as u64
                    + c.inst.approx_bytes()
                    + c.sat.approx_bytes()
            })
            .sum();
        let shw: u64 = self
            .shw_results
            .values()
            .map(|v| v.as_ref().map_or(0, |td| td.approx_bytes()) + 32)
            .sum();
        let hw: u64 = self
            .hw_results
            .values()
            .map(|v| v.as_ref().map_or(0, |g| g.approx_bytes()) + 32)
            .sum();
        let sweeps: u64 = self.sweeps.values().map(|s| s.approx_bytes()).sum();
        let reds: u64 = self
            .reductions
            .values()
            .chain(self.reductions_no_peel.values())
            .map(|r| r.approx_bytes())
            .sum();
        // LRU clock + pin set, at one (key, value) pair each.
        let book = ((self.last_used.len() + self.pinned.len()) * 24) as u64;
        self.indexes.approx_bytes() + instances + shw + hw + sweeps + reds + book
    }

    /// Pins hypergraph `hash` (the [`structural_hash`] the entry points
    /// key on): as long as it stays pinned it is exempt from LRU
    /// eviction, so an eviction storm of one-off schemas cannot thrash
    /// the head of the traffic distribution. Pinning is a policy bit,
    /// not a reservation — it does not populate the cache, and pinned
    /// entries still count against the capacity bound, so pinning more
    /// hashes than `max_graphs` lets the cache overshoot its bound by
    /// the pinned excess (never panic, never evict a pin).
    ///
    /// [`structural_hash`]: softhw_hypergraph::cache::structural_hash
    pub fn pin(&mut self, hash: u64) {
        self.pinned.insert(hash);
    }

    /// Removes the pin on `hash`, making it evictable again; returns
    /// whether it was pinned. The entry is not dropped eagerly — it
    /// simply rejoins the LRU order at its last-use tick.
    pub fn unpin(&mut self, hash: u64) -> bool {
        self.pinned.remove(&hash)
    }

    /// True iff `hash` is currently pinned.
    pub fn is_pinned(&self, hash: u64) -> bool {
        self.pinned.contains(&hash)
    }

    /// Number of pinned hashes.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }

    /// Disables (or re-enables) the reduce-before-solve pipeline for
    /// every entry point — the service's `--no-reduce` escape hatch.
    /// Cached reductions are kept; they are simply not consulted.
    pub fn set_no_reduce(&mut self, no_reduce: bool) {
        self.no_reduce = no_reduce;
    }

    /// True iff the reduce-before-solve pipeline is disabled.
    pub fn no_reduce(&self) -> bool {
        self.no_reduce
    }

    /// The full-pipeline reduction of `h`, cached per structural hash
    /// (computed even under `--no-reduce`, so the service can always
    /// report what the pipeline *would* do — callers decide whether to
    /// act on it).
    pub fn reduction(&mut self, h: &Hypergraph) -> Arc<Reduction> {
        let (hash, _) = self.indexes.entry(h);
        self.touch(hash);
        if let Some(r) = self.reductions.get(&hash) {
            return Arc::clone(r);
        }
        let r = Arc::new(softhw_hypergraph::reduce(h));
        self.reductions.insert(hash, Arc::clone(&r));
        r
    }

    /// The no-peel (HD-safe) reduction of `h`, cached per structural
    /// hash; used by the `hw` path.
    fn reduction_no_peel(&mut self, h: &Hypergraph) -> Arc<Reduction> {
        let (hash, _) = self.indexes.entry(h);
        self.touch(hash);
        if let Some(r) = self.reductions_no_peel.get(&hash) {
            return Arc::clone(r);
        }
        let r = Arc::new(softhw_hypergraph::reduce_no_peel(h));
        self.reductions_no_peel.insert(hash, Arc::clone(&r));
        r
    }

    /// Marks `hash` as just used and evicts the least-recently-used
    /// *other* hypergraph if the bound is now exceeded. Called on every
    /// entry point, right after the index probe. Never evicts `hash`
    /// itself or a pinned hash, and never panics: if no evictable entry
    /// exists (every other entry is pinned, or the LRU clock is
    /// inconsistent), it stops evicting — an over-full cache is a
    /// bounded memory overshoot, not a reason to kill the process.
    fn touch(&mut self, hash: u64) {
        self.tick += 1;
        self.last_used.insert(hash, self.tick);
        while self.last_used.len() > self.max_graphs {
            let victim = self
                .last_used
                .iter()
                .filter(|&(&h2, _)| h2 != hash && !self.pinned.contains(&h2))
                .min_by_key(|&(_, &t)| t)
                .map(|(&h2, _)| h2);
            match victim {
                Some(v) => self.evict(v),
                None => break, // everything else is pinned: overshoot
            }
        }
    }

    /// Drops every cached artefact of hypergraph `victim`: warm index,
    /// prepared instances, sweep state, and width decisions.
    fn evict(&mut self, victim: u64) {
        self.indexes.remove(victim);
        self.instances.retain(|&(h2, _), _| h2 != victim);
        self.shw_results.retain(|&(h2, _), _| h2 != victim);
        self.hw_results.retain(|&(h2, _), _| h2 != victim);
        self.sweeps.remove(&victim);
        self.reductions.remove(&victim);
        self.reductions_no_peel.remove(&victim);
        self.last_used.remove(&victim);
        self.stats.evictions += 1;
    }

    /// The prepared (instance, satisfaction) pair for `(h, bags)`,
    /// building and satisfying on first sight.
    ///
    /// The lookup is written defensively: after the probe (and the LRU
    /// `touch`, which by construction never evicts the hash just used)
    /// the entry's presence is *re-verified*, and a missing entry —
    /// a cache inconsistency that previously took the process down via
    /// an `.expect(...)` chain — is repaired by one cold rebuild of
    /// exactly this entry.
    fn instance(&mut self, h: &Hypergraph, bags: &[BitSet]) -> &CachedInstance {
        let (hash, index) = self.indexes.entry(h);
        let ids: Vec<BagId> = bags.iter().map(|b| index.arena.intern(b)).collect();
        let key = (hash, hash_ids(&ids));
        let probed = self
            .instances
            .get(&key)
            .and_then(|bucket| bucket.iter().position(|c| c.ids == ids));
        let mut pos = match probed {
            Some(p) => {
                self.stats.instance_hits += 1;
                p
            }
            None => {
                self.stats.instance_misses += 1;
                let (_, index) = self.indexes.entry(h);
                let inst = CtdInstance::build(index, &ids);
                let sat = inst.satisfy();
                let bucket = self.instances.entry(key).or_default();
                bucket.push(CachedInstance {
                    ids: ids.clone(),
                    inst,
                    sat,
                });
                bucket.len() - 1
            }
        };
        self.touch(hash);
        let present = self
            .instances
            .get(&key)
            .is_some_and(|bucket| bucket.get(pos).is_some());
        if !present {
            // Degrade to a cold recompute of this entry instead of
            // panicking on the inconsistency.
            debug_assert!(false, "cache entry vanished between probe and return");
            self.stats.instance_misses += 1;
            let (_, index) = self.indexes.entry(h);
            let inst = CtdInstance::build(index, &ids);
            let sat = inst.satisfy();
            let bucket = self.instances.entry(key).or_default();
            bucket.push(CachedInstance { ids, inst, sat });
            pos = bucket.len() - 1;
        }
        // Structurally guaranteed: either re-verified present above, or
        // just pushed at `pos`.
        &self.instances[&key][pos]
    }

    /// Algorithm 1 with cross-query reuse: repeated calls with a
    /// structurally identical hypergraph and bag set skip index build,
    /// block construction, *and* the satisfaction DP — only extraction
    /// runs. Returns exactly what [`crate::ctd::candidate_td`] returns.
    pub fn candidate_td(&mut self, h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
        let cached = self.instance(h, bags);
        cached.inst.extract(&cached.sat)
    }

    /// The prepared instance for `(h, bags)` (for callers that want to
    /// run their own DP variants — e.g. [`crate::ctd_opt`] — against the
    /// cached block tables).
    pub fn instance_for(&mut self, h: &Hypergraph, bags: &[BitSet]) -> &CtdInstance {
        &self.instance(h, bags).inst
    }

    /// The one entry point over every cached width query: routes a
    /// [`SolveSpec`] to the matching (class, exactness) solver under the
    /// spec's budget, reduction policy, and generation limits. All the
    /// per-corner methods below are thin wrappers over this.
    ///
    /// Budget aborts keep the cache warm and consistent (nothing partial
    /// is memoised, nothing is evicted); an exact-`hw` query on a
    /// degenerate input admitting no HD at any width surfaces as an
    /// internal [`DecompError`].
    pub fn solve(&mut self, h: &Hypergraph, spec: &SolveSpec) -> Result<Solved, DecompError> {
        match (spec.class, spec.bound) {
            (SolveClass::Shw, Some(k)) => Ok(Solved::ShwDecision(self.shw_decision(
                h,
                k,
                &spec.limits,
                &spec.budget,
            )?)),
            (SolveClass::Shw, None) => {
                let (w, td) = self.shw_exact(h, &spec.limits, &spec.budget, spec.reduce)?;
                Ok(Solved::ShwWidth(w, td))
            }
            (SolveClass::Hw, Some(k)) => {
                Ok(Solved::HwDecision(self.hw_decision(h, k, &spec.budget)?))
            }
            (SolveClass::Hw, None) => match self.hw_exact(h, &spec.budget, spec.reduce)? {
                Some((w, g)) => Ok(Solved::HwWidth(w, g)),
                None => Err(DecompError::internal("no width up to |E(H)| admits an HD")),
            },
        }
    }

    /// The `shw ≤ k` decision with cross-query memoisation. A budget
    /// abort memoises nothing for `(h, k)` — no partial answer can ever
    /// be served — and evicts nothing: every decision cached before the
    /// trip stays warm, so a retry recomputes only this width. The
    /// unlimited budget takes the never-checking fast path.
    fn shw_decision(
        &mut self,
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
        budget: &Budget,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        let (hash, index) = self.indexes.entry(h);
        if let Some(cached) = self.shw_results.get(&(hash, k)).cloned() {
            self.stats.result_hits += 1;
            self.touch(hash);
            return Ok(cached);
        }
        self.stats.result_misses += 1;
        let result = if budget.is_unlimited() {
            let bags = soft_bag_ids(index, k, limits)?;
            CtdInstance::build(index, &bags).try_decide()?
        } else {
            let bags = soft_bag_ids_budgeted(index, k, limits, budget)?;
            CtdInstance::build_budgeted(index, &bags, budget)?.try_decide_budgeted(budget)?
        };
        self.shw_results.insert((hash, k), result.clone());
        self.touch(hash);
        Ok(result)
    }

    /// `shw(h) ≤ k` with cross-query memoisation of the decision and
    /// witness. Generation limits only apply on a cache miss.
    ///
    /// Deprecated wrapper — prefer
    /// [`DecompCache::solve`] with [`SolveSpec::shw_leq`].
    pub fn shw_leq(
        &mut self,
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        match self.solve(h, &SolveSpec::shw_leq(k).with_limits(limits.clone()))? {
            Solved::ShwDecision(r) => Ok(r),
            _ => unreachable!("shw_leq specs answer with a shw decision"),
        }
    }

    /// [`DecompCache::shw_leq`] with a cooperative [`Budget`].
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::shw_leq`] + [`SolveSpec::with_budget`].
    pub fn shw_leq_budgeted(
        &mut self,
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
        budget: &Budget,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        match self.solve(
            h,
            &SolveSpec::shw_leq(k)
                .with_limits(limits.clone())
                .with_budget(budget.clone()),
        )? {
            Solved::ShwDecision(r) => Ok(r),
            _ => unreachable!("shw_leq specs answer with a shw decision"),
        }
    }

    /// `shw(h)` exactly, memoised per width across queries and computed
    /// through the incremental sweep engine on a miss: the per-graph
    /// [`IncrementalSweep`] grows one instance across the widths (and
    /// across *calls* — a repeated sweep over the same structure is pure
    /// memo hits, and a sweep interrupted by eviction simply restarts
    /// cold). Returns what [`crate::shw::shw`] returns.
    ///
    /// Panics if `limits`-style default generation guards are exceeded;
    /// long-lived callers (the decomposition service) use
    /// [`DecompCache::try_shw`], where every failure mode is an `Err`.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::shw`].
    pub fn shw(&mut self, h: &Hypergraph) -> (usize, TreeDecomposition) {
        match self.try_shw_with(h, &SoftLimits::default()) {
            Ok(out) => out,
            Err(e) => panic!("shw under default limits: {e}"),
        }
    }

    /// [`DecompCache::shw`] with the default generation limits and no
    /// panicking path.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::shw`].
    pub fn try_shw(&mut self, h: &Hypergraph) -> Result<(usize, TreeDecomposition), DecompError> {
        self.try_shw_with(h, &SoftLimits::default())
    }

    /// The exact-`shw` solver behind [`DecompCache::solve`]: reduce-aware
    /// unless `reduce` is off (or the cache-wide `no_reduce` toggle is
    /// set), budgeted unless the budget is unlimited. Budget aborts leave
    /// the cache **warm and consistent**: nothing is memoised for the
    /// interrupted width (so a partial answer can never be served later),
    /// nothing is evicted (the per-graph sweep resets itself — the reset
    /// contract of [`IncrementalSweep::decide_leq_budgeted`]), and every
    /// width decided before the trip stays cached. A retry resumes from
    /// the memoised widths and recomputes only the interrupted one, from
    /// a cold re-seed that is bit-identical to a never-interrupted run.
    fn shw_exact(
        &mut self,
        h: &Hypergraph,
        limits: &SoftLimits,
        budget: &Budget,
        reduce: bool,
    ) -> Result<(usize, TreeDecomposition), DecompError> {
        let raw = self.no_reduce || !reduce;
        if budget.is_unlimited() {
            if raw {
                return self.try_shw_raw_with(h, limits);
            }
            let red = self.reduction(h);
            if red.is_trivial() {
                return self.try_shw_raw_with(h, limits);
            }
            let mut width = 1usize;
            let mut tds = Vec::with_capacity(red.pieces.len());
            for piece in &red.pieces {
                // Pieces are at the reduction fixpoint and connected, so
                // the raw cached path is exactly the reduce-aware path
                // for them.
                let (w, td) = self.try_shw_raw_with(&piece.h, limits)?;
                width = width.max(w);
                tds.push(td);
            }
            let td = lift_td(h, &red, &tds);
            debug_assert_eq!(td.validate(h), Ok(()));
            Ok((width, td))
        } else {
            if raw {
                return self.try_shw_raw_budgeted(h, limits, budget);
            }
            let red = self.reduction(h);
            if red.is_trivial() {
                return self.try_shw_raw_budgeted(h, limits, budget);
            }
            let mut width = 1usize;
            let mut tds = Vec::with_capacity(red.pieces.len());
            for piece in &red.pieces {
                budget.check()?;
                let (w, td) = self.try_shw_raw_budgeted(&piece.h, limits, budget)?;
                width = width.max(w);
                tds.push(td);
            }
            let td = lift_td(h, &red, &tds);
            debug_assert_eq!(td.validate(h), Ok(()));
            Ok((width, td))
        }
    }

    /// `shw(h)` exactly through the cache, non-panicking: generation
    /// blow-ups surface as [`DecompError::Limit`]/[`DecompError::Shards`]
    /// and an internal inconsistency in the cached sweep state degrades
    /// to a cold recompute after evicting the inconsistent entry —
    /// matching the cold result exactly — instead of killing the caller.
    ///
    /// Reduce-aware: the input is simplified first and each reduced
    /// piece solved through the cache under the *piece's* structural
    /// hash — a schema submitted raw and the same schema submitted
    /// already reduced land on the same piece entries, so neither is
    /// computed twice. Irreducible connected inputs (and caches with
    /// [`DecompCache::set_no_reduce`] set) take the raw path unchanged.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::shw`] (+ [`SolveSpec::with_limits`]).
    pub fn try_shw_with(
        &mut self,
        h: &Hypergraph,
        limits: &SoftLimits,
    ) -> Result<(usize, TreeDecomposition), DecompError> {
        self.shw_exact(h, limits, &Budget::unlimited(), true)
    }

    /// [`DecompCache::try_shw_with`] with a cooperative [`Budget`]; see
    /// [`DecompCache::solve`] for the warm-abort guarantees.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::shw`] + [`SolveSpec::with_budget`].
    pub fn try_shw_budgeted(
        &mut self,
        h: &Hypergraph,
        limits: &SoftLimits,
        budget: &Budget,
    ) -> Result<(usize, TreeDecomposition), DecompError> {
        self.shw_exact(h, limits, budget, true)
    }

    /// The raw (no-reduction) cached budgeted sweep; see
    /// [`DecompCache::try_shw_budgeted`] for the abort guarantees.
    fn try_shw_raw_budgeted(
        &mut self,
        h: &Hypergraph,
        limits: &SoftLimits,
        budget: &Budget,
    ) -> Result<(usize, TreeDecomposition), DecompError> {
        let (hash, _) = self.indexes.entry(h);
        self.touch(hash);
        for k in 1..=h.num_edges().max(1) {
            if let Some(cached) = self.shw_results.get(&(hash, k)) {
                self.stats.result_hits += 1;
                match cached {
                    Some(td) => return Ok((k, td.clone())),
                    None => continue,
                }
            }
            self.stats.result_misses += 1;
            let (_, index) = self.indexes.entry(h);
            let sweep = self.sweeps.entry(hash).or_default();
            let result = match sweep.decide_leq_budgeted(index, k, limits, budget) {
                Ok(r) => r,
                Err(e) if e.is_internal() => {
                    // Cached state is inconsistent: drop every artefact
                    // of this hypergraph and decide this width cold.
                    self.evict(hash);
                    let (_, index) = self.indexes.entry(h);
                    let ids = soft_bag_ids_budgeted(index, k, limits, budget)?;
                    let cold = CtdInstance::build_budgeted(index, &ids, budget)?
                        .try_decide_budgeted(budget)?;
                    self.touch(hash);
                    cold
                }
                // Budget errors land here: the sweep already reset
                // itself, nothing is memoised for this width, and the
                // warm decisions of smaller widths stay untouched.
                Err(e) => return Err(e),
            };
            self.shw_results.insert((hash, k), result.clone());
            if let Some(td) = result {
                return Ok((k, td));
            }
        }
        Err(DecompError::internal("no width up to |E(H)| accepted"))
    }

    /// The raw (no-reduction) cached exact sweep; see
    /// [`DecompCache::try_shw_with`].
    fn try_shw_raw_with(
        &mut self,
        h: &Hypergraph,
        limits: &SoftLimits,
    ) -> Result<(usize, TreeDecomposition), DecompError> {
        let (hash, _) = self.indexes.entry(h);
        self.touch(hash);
        for k in 1..=h.num_edges().max(1) {
            if let Some(cached) = self.shw_results.get(&(hash, k)) {
                self.stats.result_hits += 1;
                match cached {
                    Some(td) => return Ok((k, td.clone())),
                    None => continue,
                }
            }
            self.stats.result_misses += 1;
            let (_, index) = self.indexes.entry(h);
            let sweep = self.sweeps.entry(hash).or_default();
            let result = match sweep.decide_leq(index, k, limits) {
                Ok(r) => r,
                Err(e) if e.is_internal() => {
                    // Cached state is inconsistent: drop every artefact
                    // of this hypergraph and decide this width cold. (A
                    // second internal error on a cold build is a real
                    // bug, not cache corruption — surface it.)
                    self.evict(hash);
                    let (_, index) = self.indexes.entry(h);
                    let ids = soft_bag_ids(index, k, limits)?;
                    let cold = CtdInstance::build(index, &ids).try_decide()?;
                    self.touch(hash);
                    cold
                }
                Err(e) => return Err(e),
            };
            self.shw_results.insert((hash, k), result.clone());
            if let Some(td) = result {
                return Ok((k, td));
            }
        }
        // Unreachable for well-formed hypergraphs (shw ≤ |E(H)|): the
        // full vertex set is always a candidate at k = |E|.
        Err(DecompError::internal("no width up to |E(H)| accepted"))
    }

    /// The `hw ≤ k` decision with cross-query memoisation (decision +
    /// witness); a budget abort memoises and evicts nothing, and the
    /// unlimited budget takes the never-checking fast path.
    fn hw_decision(
        &mut self,
        h: &Hypergraph,
        k: usize,
        budget: &Budget,
    ) -> Result<Option<Ghd>, DecompError> {
        let (hash, _) = self.indexes.entry(h);
        if let Some(cached) = self.hw_results.get(&(hash, k)).cloned() {
            self.stats.result_hits += 1;
            self.touch(hash);
            return Ok(cached);
        }
        self.stats.result_misses += 1;
        let result = if budget.is_unlimited() {
            hw::hw_leq(h, k)
        } else {
            hw::hw_leq_budgeted(h, k, budget)?
        };
        self.hw_results.insert((hash, k), result.clone());
        self.touch(hash);
        Ok(result)
    }

    /// `hw(h) ≤ k` with cross-query memoisation (decision + witness).
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::hw_leq`].
    pub fn hw_leq(&mut self, h: &Hypergraph, k: usize) -> Option<Ghd> {
        match self.solve(h, &SolveSpec::hw_leq(k)) {
            Ok(Solved::HwDecision(r)) => r,
            Ok(_) => unreachable!("hw_leq specs answer with an hw decision"),
            Err(_) => unreachable!("unlimited budgets never abort the hw decision"),
        }
    }

    /// [`DecompCache::hw_leq`] with a cooperative [`Budget`]; a budget
    /// abort memoises and evicts nothing.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::hw_leq`] + [`SolveSpec::with_budget`].
    pub fn hw_leq_budgeted(
        &mut self,
        h: &Hypergraph,
        k: usize,
        budget: &Budget,
    ) -> Result<Option<Ghd>, DecompError> {
        match self.solve(h, &SolveSpec::hw_leq(k).with_budget(budget.clone()))? {
            Solved::HwDecision(r) => Ok(r),
            _ => unreachable!("hw_leq specs answer with an hw decision"),
        }
    }

    /// `hw(h)` exactly, memoised per width across queries. Reduce-aware
    /// with the no-peel (HD-safe) pipeline: pieces are swept through the
    /// cache under their own structural hashes and the piece HDs lifted
    /// back; irreducible connected inputs sweep raw.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::hw`].
    pub fn hw(&mut self, h: &Hypergraph) -> (usize, Ghd) {
        self.try_hw(h).expect("no width up to |E(H)| admits an HD")
    }

    /// [`DecompCache::hw`] without the panicking path: `None` when no
    /// width up to `|E(H)|` admits an HD (degenerate inputs), which
    /// long-lived callers map to an error response.
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::hw`] (there the degenerate `None` surfaces as an
    /// internal [`DecompError`]).
    pub fn try_hw(&mut self, h: &Hypergraph) -> Option<(usize, Ghd)> {
        match self.hw_exact(h, &Budget::unlimited(), true) {
            Ok(r) => r,
            Err(_) => unreachable!("unlimited budgets never abort the hw sweep"),
        }
    }

    /// The exact-`hw` solver behind [`DecompCache::solve`]: reduce-aware
    /// with the no-peel (HD-safe) pipeline unless `reduce` is off (or
    /// the cache-wide `no_reduce` toggle is set), budgeted unless the
    /// budget is unlimited; same warm abort guarantees as the `shw`
    /// sweep. `Ok(None)` when no width up to `|E(H)|` admits an HD.
    fn hw_exact(
        &mut self,
        h: &Hypergraph,
        budget: &Budget,
        reduce: bool,
    ) -> Result<Option<(usize, Ghd)>, DecompError> {
        if self.no_reduce || !reduce {
            return self.try_hw_raw_budgeted(h, budget);
        }
        let red = self.reduction_no_peel(h);
        if red.is_trivial() {
            return self.try_hw_raw_budgeted(h, budget);
        }
        let mut width = 1usize;
        let mut ghds = Vec::with_capacity(red.pieces.len());
        for piece in &red.pieces {
            budget.check()?;
            match self.try_hw_raw_budgeted(&piece.h, budget)? {
                Some((w, g)) => {
                    width = width.max(w);
                    ghds.push(g);
                }
                None => return Ok(None),
            }
        }
        let g = lift_ghd(h, &red, &ghds);
        debug_assert!(g.is_hd(h), "lifted HD must satisfy the special condition");
        Ok(Some((width, g)))
    }

    /// [`DecompCache::try_hw`] with a cooperative [`Budget`]; same warm
    /// abort guarantees as [`DecompCache::try_shw_budgeted`].
    ///
    /// Deprecated wrapper — prefer [`DecompCache::solve`] with
    /// [`SolveSpec::hw`] + [`SolveSpec::with_budget`].
    pub fn try_hw_budgeted(
        &mut self,
        h: &Hypergraph,
        budget: &Budget,
    ) -> Result<Option<(usize, Ghd)>, DecompError> {
        self.hw_exact(h, budget, true)
    }

    /// The raw (no-reduction) cached budgeted `hw` sweep. The per-width
    /// decisions route through [`DecompCache::hw_decision`], so the
    /// unlimited budget solves on the never-checking fast path.
    fn try_hw_raw_budgeted(
        &mut self,
        h: &Hypergraph,
        budget: &Budget,
    ) -> Result<Option<(usize, Ghd)>, DecompError> {
        for k in 1..=h.num_edges().max(1) {
            if let Some(g) = self.hw_decision(h, k, budget)? {
                return Ok(Some((k, g)));
            }
        }
        Ok(None)
    }

    /// Imports a persisted `shw(h) ≤ k` decision (the warm-start path of
    /// the disk-backed decomposition store). A witness is **re-validated
    /// before it is trusted**: it must be a valid tree decomposition of
    /// `h` in component normal form, exactly what the solver's own
    /// witnesses satisfy. Returns `false` — importing nothing — on a
    /// witness that fails validation or when a decision for `(h, k)` is
    /// already cached (imports never clobber live state). Negative
    /// decisions carry no witness to check and are accepted as-is; the
    /// store's record checksums are their integrity guard.
    pub fn import_shw_leq(
        &mut self,
        h: &Hypergraph,
        k: usize,
        witness: Option<TreeDecomposition>,
    ) -> bool {
        if let Some(td) = &witness {
            if td.validate(h).is_err() || !td.is_comp_nf(h) {
                return false;
            }
        }
        let (hash, _) = self.indexes.entry(h);
        if self.shw_results.contains_key(&(hash, k)) {
            return false;
        }
        self.shw_results.insert((hash, k), witness);
        self.touch(hash);
        true
    }

    /// Imports a persisted `hw(h) ≤ k` decision. A witness tree is
    /// re-validated and completed into a GHD by searching width-`k`
    /// covers ([`Ghd::from_td`]); a tree admitting no such covers is
    /// rejected. Same no-clobber rule as
    /// [`DecompCache::import_shw_leq`].
    pub fn import_hw_leq(
        &mut self,
        h: &Hypergraph,
        k: usize,
        witness: Option<TreeDecomposition>,
    ) -> bool {
        let ghd = match witness {
            Some(td) => {
                if td.validate(h).is_err() {
                    return false;
                }
                match Ghd::from_td(h, td, k) {
                    Some(g) => Some(g),
                    None => return false,
                }
            }
            None => None,
        };
        let (hash, _) = self.indexes.entry(h);
        if self.hw_results.contains_key(&(hash, k)) {
            return false;
        }
        self.hw_results.insert((hash, k), ghd);
        self.touch(hash);
        true
    }

    /// Imports a persisted *exact* `shw(h) = width` answer in one shot:
    /// the witness at `width` plus the negative decisions the solver's
    /// sweep implies for every smaller width — computing the structural
    /// hash once instead of once per width. Same validation and
    /// no-clobber rules as [`DecompCache::import_shw_leq`].
    pub fn import_shw_exact(
        &mut self,
        h: &Hypergraph,
        width: usize,
        td: TreeDecomposition,
    ) -> bool {
        if td.validate(h).is_err() || !td.is_comp_nf(h) {
            return false;
        }
        let (hash, _) = self.indexes.entry(h);
        for k in 1..width {
            self.shw_results.entry((hash, k)).or_insert(None);
        }
        self.shw_results.entry((hash, width)).or_insert(Some(td));
        self.touch(hash);
        true
    }

    /// Imports a persisted exact `hw(h) = width` answer (witness plus
    /// implied negatives below it), one hash computation total. Same
    /// validation as [`DecompCache::import_hw_leq`].
    pub fn import_hw_exact(&mut self, h: &Hypergraph, width: usize, td: TreeDecomposition) -> bool {
        if td.validate(h).is_err() {
            return false;
        }
        let Some(ghd) = Ghd::from_td(h, td, width) else {
            return false;
        };
        let (hash, _) = self.indexes.entry(h);
        for k in 1..width {
            self.hw_results.entry((hash, k)).or_insert(None);
        }
        self.hw_results.entry((hash, width)).or_insert(Some(ghd));
        self.touch(hash);
        true
    }

    /// Exports every cached `shw ≤ k` decision for `h` (width-sorted),
    /// witnesses cloned — the persistence snapshot of this hypergraph's
    /// decision state, mirrored by [`DecompCache::import_shw_leq`].
    pub fn export_shw_decisions(
        &mut self,
        h: &Hypergraph,
    ) -> Vec<(usize, Option<TreeDecomposition>)> {
        let (hash, _) = self.indexes.entry(h);
        let mut out: Vec<(usize, Option<TreeDecomposition>)> = self
            .shw_results
            .iter()
            .filter(|((h2, _), _)| *h2 == hash)
            .map(|((_, k), v)| (*k, v.clone()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Exports every cached `hw ≤ k` decision for `h` (width-sorted),
    /// the underlying trees cloned — importable via
    /// [`DecompCache::import_hw_leq`], which rebuilds the covers.
    pub fn export_hw_decisions(
        &mut self,
        h: &Hypergraph,
    ) -> Vec<(usize, Option<TreeDecomposition>)> {
        let (hash, _) = self.indexes.entry(h);
        let mut out: Vec<(usize, Option<TreeDecomposition>)> = self
            .hw_results
            .iter()
            .filter(|((h2, _), _)| *h2 == hash)
            .map(|((_, k), v)| (*k, v.as_ref().map(|g| g.td.clone())))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shw;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn cached_candidate_td_equals_cold_runs() {
        let mut cache = DecompCache::new();
        for (h, k) in [
            (named::h2(), 1),
            (named::h2(), 2),
            (named::cycle(6), 2),
            (named::grid(3, 3), 2),
        ] {
            let bags = soft_bags(&h, k);
            let cold = crate::ctd::candidate_td(&h, &bags);
            let warm1 = cache.candidate_td(&h, &bags);
            let warm2 = cache.candidate_td(&h, &bags);
            assert_eq!(cold.is_some(), warm1.is_some(), "k = {k}");
            match (&cold, &warm1, &warm2) {
                (Some(c), Some(w1), Some(w2)) => {
                    // Same decomposition, node for node.
                    assert_eq!(c.bags(), w1.bags(), "k = {k}");
                    assert_eq!(w1.bags(), w2.bags(), "k = {k}");
                }
                (None, None, None) => {}
                _ => panic!("cold/warm disagree at k = {k}"),
            }
        }
        let s = cache.stats();
        assert!(s.instance_hits >= 4, "repeat calls must hit: {s:?}");
    }

    #[test]
    fn cached_shw_and_hw_equal_cold_runs() {
        let mut cache = DecompCache::new();
        for h in [named::h2(), named::cycle(8), named::triangle_star(3)] {
            let (cold_w, cold_td) = shw::shw(&h);
            let (warm_w, warm_td) = cache.shw(&h);
            assert_eq!(cold_w, warm_w);
            assert_eq!(cold_td.bags(), warm_td.bags());
            // Second query over the same structure: pure memo hits.
            let before = cache.stats().result_misses;
            let (again_w, again_td) = cache.shw(&h);
            assert_eq!(again_w, warm_w);
            assert_eq!(again_td.bags(), warm_td.bags());
            assert_eq!(cache.stats().result_misses, before, "sweep must be cached");

            let (cold_hw, _) = hw::hw(&h);
            let (warm_hw, warm_ghd) = cache.hw(&h);
            assert_eq!(cold_hw, warm_hw);
            assert!(warm_ghd.is_hd(&h));
        }
    }

    #[test]
    fn capacity_bound_evicts_lru_and_stays_correct() {
        let mut cache = DecompCache::with_capacity(2);
        let graphs = [
            named::h2(),
            named::cycle(5),
            named::cycle(6),
            named::grid(3, 3),
        ];
        let mut widths = Vec::new();
        for h in &graphs {
            widths.push(cache.shw(h).0);
        }
        // Four distinct structures through a bound of two: the cache must
        // stay within bound and must have evicted.
        assert!(cache.tracked_graphs() <= 2, "{}", cache.tracked_graphs());
        assert!(cache.stats().evictions >= 2, "{:?}", cache.stats());
        // Evicted structures recompute cold with identical results.
        for (h, w) in graphs.iter().zip(&widths) {
            let (again, td) = cache.shw(h);
            assert_eq!(again, *w);
            assert_eq!(td.validate(h), Ok(()));
            assert_eq!((again, td.bags().to_vec()), {
                let (cw, ctd) = crate::shw::shw(h);
                (cw, ctd.bags().to_vec())
            });
        }
        assert!(cache.tracked_graphs() <= 2);
    }

    #[test]
    fn edge_capacities_survive_eviction_storms_cold_identical() {
        // with_capacity(0) clamps to 1; both degenerate bounds force an
        // eviction on every schema change. Interleaving four schemas
        // over several rounds is a worst-case eviction storm: every
        // probe except repeats within a round is a cold rebuild. The
        // cache must never panic and must answer exactly like the cold
        // entry points throughout.
        for cap in [0, 1] {
            let mut cache = DecompCache::with_capacity(cap);
            assert_eq!(cache.max_graphs(), 1);
            let graphs = [
                named::h2(),
                named::cycle(5),
                named::cycle(6),
                named::grid(3, 3),
            ];
            for round in 0..3 {
                for h in &graphs {
                    let (w, td) = cache.shw(h);
                    let (cold_w, cold_td) = shw::shw(h);
                    assert_eq!(w, cold_w, "cap {cap} round {round}");
                    assert_eq!(td.bags(), cold_td.bags(), "cap {cap} round {round}");
                    // Mix in instance-level and hw traffic on the same
                    // storm so all three artefact kinds churn together.
                    let bags = soft_bags(h, w);
                    assert_eq!(
                        cache.candidate_td(h, &bags).map(|t| t.bags().to_vec()),
                        crate::ctd::candidate_td(h, &bags).map(|t| t.bags().to_vec()),
                        "cap {cap} round {round}"
                    );
                    let (hw_w, ghd) = cache.hw(h);
                    assert_eq!(hw_w, hw::hw(h).0);
                    assert!(ghd.is_hd(h));
                    assert!(cache.tracked_graphs() <= 1, "bound violated");
                }
            }
            let s = cache.stats();
            // Four interleaved schemas through a bound of one: every
            // schema switch evicts.
            assert!(s.evictions >= 11, "expected an eviction storm: {s:?}");
        }
    }

    #[test]
    fn pinned_schemas_survive_eviction_storms_warm() {
        // Capacity 2, one pinned hot schema, three cold schemas cycling
        // through the remaining slot: a worst-case eviction storm. The
        // pinned schema's decisions must stay warm throughout — every
        // repeat query over it is a pure memo hit — while the cold
        // schemas evict each other freely.
        let mut cache = DecompCache::with_capacity(2);
        let hot = named::h2();
        let (hot_w, hot_td) = cache.shw(&hot);
        let hot_hash = softhw_hypergraph::cache::structural_hash(&hot);
        cache.pin(hot_hash);
        assert!(cache.is_pinned(hot_hash));
        let cold = [named::cycle(5), named::cycle(6), named::grid(3, 3)];
        for round in 0..3 {
            for h in &cold {
                let (w, td) = cache.shw(h);
                let (cw, ctd) = shw::shw(h);
                assert_eq!((w, td.bags()), (cw, ctd.bags()), "round {round}");
                // The hot schema answers from memo despite the churn.
                let misses_before = cache.stats().result_misses;
                let (w2, td2) = cache.shw(&hot);
                assert_eq!((w2, td2.bags()), (hot_w, hot_td.bags()));
                assert_eq!(
                    cache.stats().result_misses,
                    misses_before,
                    "pinned schema fell cold in round {round}"
                );
            }
        }
        assert!(cache.stats().evictions >= 6, "{:?}", cache.stats());
        assert!(cache.tracked_graphs() <= 2);
        // Unpinning makes it evictable again: two fresh schemas push it
        // out, and the next query over it is a (correct) cold rebuild.
        assert!(cache.unpin(hot_hash));
        cache.shw(&cold[0]);
        cache.shw(&cold[1]);
        let misses_before = cache.stats().result_misses;
        let (w3, td3) = cache.shw(&hot);
        assert_eq!((w3, td3.bags()), (hot_w, hot_td.bags()));
        assert!(cache.stats().result_misses > misses_before);
    }

    #[test]
    fn pinning_more_than_capacity_overshoots_without_evicting_pins() {
        let mut cache = DecompCache::with_capacity(1);
        let graphs = [named::h2(), named::cycle(5), named::cycle(6)];
        for h in &graphs {
            cache.shw(h);
            cache.pin(softhw_hypergraph::cache::structural_hash(h));
        }
        // All three pinned through a bound of one: nothing evicts.
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.tracked_graphs(), 3);
        assert_eq!(cache.pinned_count(), 3);
    }

    #[test]
    fn imported_decisions_serve_and_validate() {
        let h = named::h2();
        let (w, td) = shw::shw(&h);
        let (hw_w, ghd) = hw::hw(&h);

        let mut cache = DecompCache::new();
        assert!(cache.import_shw_leq(&h, w, Some(td.clone())));
        for k in 1..w {
            assert!(cache.import_shw_leq(&h, k, None));
        }
        assert!(cache.import_hw_leq(&h, hw_w, Some(ghd.td.clone())));
        // Imports are visible through the ordinary entry points without
        // any solver work (pure result hits).
        let (warm_w, warm_td) = cache.try_shw(&h).unwrap();
        assert_eq!((warm_w, warm_td.bags()), (w, td.bags()));
        assert_eq!(cache.stats().result_misses, 0, "{:?}", cache.stats());
        assert!(cache.hw_leq(&h, hw_w).is_some());
        // Export mirrors what was imported.
        let exported = cache.export_shw_decisions(&h);
        assert_eq!(exported.len(), w);
        assert_eq!(exported[w - 1].0, w);
        assert!(exported[w - 1].1.is_some());
        assert_eq!(cache.export_hw_decisions(&h).len(), 1);

        // Invalid witnesses are rejected, not trusted: a bag set from a
        // different hypergraph fails validation.
        let mut cache = DecompCache::new();
        let other = shw::shw(&named::cycle(4)).1;
        assert!(!cache.import_shw_leq(&h, w, Some(other.clone())));
        assert!(!cache.import_hw_leq(&h, hw_w, Some(other)));
        assert!(cache.export_shw_decisions(&h).is_empty());
        // And imports never clobber live state.
        let (w1, _) = cache.try_shw(&h).unwrap();
        assert_eq!(w1, w);
        assert!(!cache.import_shw_leq(&h, w, Some(td.clone())));

        // The one-shot exact imports (witness + implied negatives in a
        // single hash pass) fill the same state the per-width imports
        // do, and reject invalid witnesses the same way.
        let mut exact = DecompCache::new();
        assert!(exact.import_shw_exact(&h, w, td.clone()));
        assert!(exact.import_hw_exact(&h, hw_w, ghd.td.clone()));
        let (we, tde) = exact.try_shw(&h).unwrap();
        assert_eq!((we, tde.bags()), (w, td.bags()));
        assert_eq!(exact.stats().result_misses, 0, "{:?}", exact.stats());
        assert!(exact.hw_leq(&h, hw_w).is_some());
        if hw_w > 1 {
            assert!(exact.hw_leq(&h, hw_w - 1).is_none(), "implied negative");
        }
        assert!(!exact.import_shw_exact(&h, w, shw::shw(&named::cycle(4)).1));
    }

    #[test]
    fn try_shw_reports_limits_as_errors() {
        let mut cache = DecompCache::with_capacity(2);
        let h = named::grid(3, 3);
        let tight = SoftLimits {
            max_lambda_sets: 4,
            max_bags: 4,
        };
        match cache.try_shw_with(&h, &tight) {
            Err(DecompError::Limit(_)) | Err(DecompError::Shards(_)) => {}
            other => panic!("expected a limit error, got {other:?}"),
        }
        // The same cache still answers correctly under sane limits.
        let (w, td) = cache.try_shw(&h).expect("default limits suffice");
        assert_eq!((w, td.bags().to_vec()), {
            let (cw, ctd) = shw::shw(&h);
            (cw, ctd.bags().to_vec())
        });
    }

    #[test]
    fn repeated_queries_never_evict_below_bound() {
        let mut cache = DecompCache::with_capacity(4);
        for _ in 0..10 {
            cache.shw(&named::h2());
            cache.candidate_td(&named::h2(), &soft_bags(&named::h2(), 2));
            cache.hw(&named::cycle(5));
        }
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.tracked_graphs(), 2);
    }

    #[test]
    fn raw_and_prereduced_schemas_share_piece_entries() {
        // A schema with reducible clutter (duplicate edge + pendant
        // path) and the same schema submitted already reduced must land
        // on the same piece-level cache entries: solving the second
        // after the first does no fresh width decisions.
        let raw = {
            let mut b = softhw_hypergraph::HypergraphBuilder::new();
            b.edge("c0", &["v0", "v1"]);
            b.edge("c1", &["v1", "v2"]);
            b.edge("c2", &["v2", "v3"]);
            b.edge("c3", &["v3", "v0"]);
            b.edge("dup", &["v0", "v1"]);
            b.edge("p1", &["v2", "p"]);
            b.edge("p2", &["p", "q"]);
            b.build()
        };
        // What a client would submit post-reduction: the surviving piece
        // (the 4-cycle), edges in ascending original id, vertices
        // numbered by first occurrence — exactly how `reduce` rebuilds
        // pieces, so the structural hashes agree.
        let prereduced = {
            let mut b = softhw_hypergraph::HypergraphBuilder::new();
            b.edge("c0", &["v0", "v1"]);
            b.edge("c1", &["v1", "v2"]);
            b.edge("c2", &["v2", "v3"]);
            b.edge("c3", &["v3", "v0"]);
            b.build()
        };
        let red = softhw_hypergraph::reduce(&raw);
        assert_eq!(red.pieces.len(), 1);
        assert_eq!(
            softhw_hypergraph::cache::structural_hash(&red.pieces[0].h),
            softhw_hypergraph::cache::structural_hash(&prereduced),
            "deterministic piece rebuild must match a pre-reduced submission"
        );

        let mut cache = DecompCache::new();
        let (w_raw, td_raw) = cache.shw(&raw);
        assert_eq!(w_raw, 2);
        assert_eq!(td_raw.validate(&raw), Ok(()));
        let misses_before = cache.stats().result_misses;
        let instance_misses_before = cache.stats().instance_misses;
        let (w_pre, td_pre) = cache.shw(&prereduced);
        assert_eq!(w_pre, 2);
        assert_eq!(td_pre.validate(&prereduced), Ok(()));
        let s = cache.stats();
        assert_eq!(
            (s.result_misses, s.instance_misses),
            (misses_before, instance_misses_before),
            "pre-reduced submission must be answered from the raw schema's piece entries"
        );
        // And the other direction: a fresh cache primed with the
        // pre-reduced schema answers the raw schema's piece solves from
        // cache (only the lift is new work).
        let mut cache = DecompCache::new();
        cache.shw(&prereduced);
        let misses_before = cache.stats().result_misses;
        let (w, td) = cache.shw(&raw);
        assert_eq!(w, 2);
        assert_eq!(td.validate(&raw), Ok(()));
        assert_eq!(cache.stats().result_misses, misses_before);
    }

    #[test]
    fn no_reduce_toggle_takes_the_raw_path() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["b", "c"]);
        b.edge("e3", &["c", "a"]);
        b.edge("pendant", &["a", "x"]);
        let h = b.build();
        let mut cache = DecompCache::new();
        cache.set_no_reduce(true);
        assert!(cache.no_reduce());
        let (w, td) = cache.shw(&h);
        assert_eq!(td.validate(&h), Ok(()));
        let (w_hw, g) = cache.hw(&h);
        assert!(g.is_hd(&h));
        // Same widths as the reduce-aware path on a fresh cache.
        let mut reduced = DecompCache::new();
        assert_eq!(reduced.shw(&h).0, w);
        assert_eq!(reduced.hw(&h).0, w_hw);
    }

    #[test]
    fn solve_matches_the_legacy_entry_points() {
        // One spec-driven pass and one legacy-wrapper pass over the same
        // workload must agree decomposition-for-decomposition — the
        // wrappers are thin shims over `solve`, and both must equal the
        // cold solvers.
        for h in [named::h2(), named::cycle(6), named::triangle_star(3)] {
            let mut via_spec = DecompCache::new();
            let mut via_legacy = DecompCache::new();
            let (sw, std_) = match via_spec.solve(&h, &SolveSpec::shw()).unwrap() {
                Solved::ShwWidth(w, td) => (w, td),
                other => panic!("expected ShwWidth, got {other:?}"),
            };
            let (lw, ltd) = via_legacy.try_shw(&h).unwrap();
            assert_eq!((sw, std_.bags()), (lw, ltd.bags()));
            for k in 1..=sw {
                let spec_dec = via_spec.solve(&h, &SolveSpec::shw_leq(k)).unwrap();
                let legacy_dec = via_legacy.shw_leq(&h, k, &SoftLimits::default()).unwrap();
                assert_eq!(spec_dec.accepted(), Some(legacy_dec.is_some()), "k = {k}");
            }
            let (hw_w, hw_g) = match via_spec.solve(&h, &SolveSpec::hw()).unwrap() {
                Solved::HwWidth(w, g) => (w, g),
                other => panic!("expected HwWidth, got {other:?}"),
            };
            let (lhw, _) = via_legacy.try_hw(&h).unwrap();
            assert_eq!(hw_w, lhw);
            assert!(hw_g.is_hd(&h));
            assert_eq!(
                via_spec
                    .solve(&h, &SolveSpec::hw_leq(hw_w))
                    .unwrap()
                    .accepted(),
                Some(true)
            );
            // A budgeted spec with room to finish answers identically.
            let budgeted = SolveSpec::shw().with_budget(Budget::with_work_cap(u64::MAX));
            let mut fresh = DecompCache::new();
            match fresh.solve(&h, &budgeted).unwrap() {
                Solved::ShwWidth(w, td) => assert_eq!((w, td.bags()), (sw, std_.bags())),
                other => panic!("expected ShwWidth, got {other:?}"),
            }
            // The raw (reduce-off) spec answers the same width.
            let mut raw = DecompCache::new();
            assert_eq!(
                raw.solve(&h, &SolveSpec::shw().with_reduce(false))
                    .unwrap()
                    .width(),
                Some(sw)
            );
        }
    }

    #[test]
    fn distinct_bag_sets_get_distinct_instances() {
        let mut cache = DecompCache::new();
        let h = named::h2();
        let b1 = soft_bags(&h, 1);
        let b2 = soft_bags(&h, 2);
        assert!(cache.candidate_td(&h, &b1).is_none());
        assert!(cache.candidate_td(&h, &b2).is_some());
        assert_eq!(cache.stats().instance_misses, 2);
        assert!(cache.candidate_td(&h, &b2).is_some());
        assert_eq!(cache.stats().instance_hits, 1);
    }
}
