//! Cross-query decomposition cache: solver-level memoisation on top of
//! the structural-hash [`IndexCache`] of `softhw-hypergraph`.
//!
//! Repeated workloads (the `shw` width sweep per query, `table1`-style
//! harness runs, a service answering many queries over one schema)
//! re-decompose structurally identical hypergraphs. [`DecompCache`] keeps,
//! per structurally distinct hypergraph:
//!
//! - one warm [`BlockIndex`] (arena + `[S]`-components + blocks + unions),
//!   shared across widths `k` and across queries;
//! - prepared [`CtdInstance`]s *with their satisfied-block tables*, keyed
//!   by the candidate-bag id set, so a repeated Algorithm 1 run is a hash
//!   probe plus extraction — the DP itself is not re-run;
//! - `shw ≤ k` / `hw ≤ k` decisions with witness decompositions, so width
//!   sweeps over repeated queries skip generation and search entirely.
//!
//! All cached entry points return exactly what the cold entry points
//! return (the solvers are deterministic); the unit tests assert this
//! decomposition-for-decomposition.
//!
//! The cache is **bounded**: it tracks at most
//! [`DecompCache::max_graphs`] structurally distinct hypergraphs and
//! evicts the least-recently-used one (warm index, prepared instances,
//! sweep state, and width decisions together) when a new structure would
//! exceed the bound. Eviction only costs recomputation — an evicted
//! structure rebuilds cold on its next query, with identical results.

use crate::ctd::{CtdInstance, Satisfaction};
use crate::ghd::Ghd;
use crate::hw;
use crate::soft::{soft_bag_ids, LimitExceeded, SoftLimits};
use crate::sweep::IncrementalSweep;
use crate::td::TreeDecomposition;
use softhw_hypergraph::cache::IndexCache;
use softhw_hypergraph::{BagId, BitSet, FxHashMap, Hypergraph};

/// Hit/miss counters of a [`DecompCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompCacheStats {
    /// Prepared-instance probes answered from the cache.
    pub instance_hits: u64,
    /// Prepared-instance probes that built (and satisfied) fresh.
    pub instance_misses: u64,
    /// Width-decision probes answered from the cache.
    pub result_hits: u64,
    /// Width-decision probes computed fresh.
    pub result_misses: u64,
    /// Hypergraphs evicted to keep the cache within its bound.
    pub evictions: u64,
}

/// A prepared instance together with its satisfaction table.
struct CachedInstance {
    /// The interned candidate-bag ids this instance was built from
    /// (cache-key verification against hash collisions).
    ids: Vec<BagId>,
    inst: CtdInstance,
    sat: Satisfaction,
}

/// Default bound on the number of structurally distinct hypergraphs a
/// [`DecompCache`] tracks before evicting the least-recently-used one.
pub const DEFAULT_MAX_GRAPHS: usize = 128;

/// Cross-query cache for Algorithm 1 instances and width decisions. See
/// the module docs for what is shared at which level and how the
/// capacity bound evicts.
pub struct DecompCache {
    indexes: IndexCache,
    instances: FxHashMap<(u64, u64), Vec<CachedInstance>>,
    shw_results: FxHashMap<(u64, usize), Option<TreeDecomposition>>,
    hw_results: FxHashMap<(u64, usize), Option<Ghd>>,
    /// Incremental sweep state per hypergraph, so repeated `shw` sweeps
    /// (and first-time sweeps over many widths) ride the grown instance.
    sweeps: FxHashMap<u64, IncrementalSweep>,
    /// hash → last-use tick, the LRU clock.
    last_used: FxHashMap<u64, u64>,
    tick: u64,
    max_graphs: usize,
    stats: DecompCacheStats,
}

impl Default for DecompCache {
    fn default() -> Self {
        DecompCache::with_capacity(DEFAULT_MAX_GRAPHS)
    }
}

fn hash_ids(ids: &[BagId]) -> u64 {
    softhw_hypergraph::fxhash::hash_u64_iter(
        std::iter::once(ids.len() as u64).chain(ids.iter().map(|id| id.0 as u64)),
    )
}

impl DecompCache {
    /// An empty cache bounded to [`DEFAULT_MAX_GRAPHS`] hypergraphs.
    pub fn new() -> Self {
        DecompCache::default()
    }

    /// An empty cache tracking at most `max_graphs` structurally
    /// distinct hypergraphs (minimum 1).
    pub fn with_capacity(max_graphs: usize) -> Self {
        DecompCache {
            indexes: IndexCache::new(),
            instances: FxHashMap::default(),
            shw_results: FxHashMap::default(),
            hw_results: FxHashMap::default(),
            sweeps: FxHashMap::default(),
            last_used: FxHashMap::default(),
            tick: 0,
            max_graphs: max_graphs.max(1),
            stats: DecompCacheStats::default(),
        }
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> DecompCacheStats {
        self.stats
    }

    /// The underlying structural-hash index cache.
    pub fn index_cache(&self) -> &IndexCache {
        &self.indexes
    }

    /// The capacity bound (structurally distinct hypergraphs).
    pub fn max_graphs(&self) -> usize {
        self.max_graphs
    }

    /// Number of structurally distinct hypergraphs currently tracked.
    pub fn tracked_graphs(&self) -> usize {
        self.last_used.len()
    }

    /// Marks `hash` as just used and evicts the least-recently-used
    /// *other* hypergraph if the bound is now exceeded. Called on every
    /// entry point, right after the index probe.
    fn touch(&mut self, hash: u64) {
        self.tick += 1;
        self.last_used.insert(hash, self.tick);
        while self.last_used.len() > self.max_graphs {
            let victim = self
                .last_used
                .iter()
                .filter(|&(&h2, _)| h2 != hash)
                .min_by_key(|&(_, &t)| t)
                .map(|(&h2, _)| h2)
                .expect("over-capacity cache has another entry");
            self.evict(victim);
        }
    }

    /// Drops every cached artefact of hypergraph `victim`: warm index,
    /// prepared instances, sweep state, and width decisions.
    fn evict(&mut self, victim: u64) {
        self.indexes.remove(victim);
        self.instances.retain(|&(h2, _), _| h2 != victim);
        self.shw_results.retain(|&(h2, _), _| h2 != victim);
        self.hw_results.retain(|&(h2, _), _| h2 != victim);
        self.sweeps.remove(&victim);
        self.last_used.remove(&victim);
        self.stats.evictions += 1;
    }

    /// The prepared (instance, satisfaction) pair for `(h, bags)`,
    /// building and satisfying on first sight.
    fn instance(&mut self, h: &Hypergraph, bags: &[BitSet]) -> &CachedInstance {
        let (hash, index) = self.indexes.entry(h);
        let ids: Vec<BagId> = bags.iter().map(|b| index.arena.intern(b)).collect();
        let key = (hash, hash_ids(&ids));
        let bucket = self.instances.entry(key).or_default();
        let pos = bucket.iter().position(|c| c.ids == ids);
        match pos {
            Some(_) => self.stats.instance_hits += 1,
            None => self.stats.instance_misses += 1,
        }
        if pos.is_none() {
            let (_, index) = self.indexes.entry(h);
            let inst = CtdInstance::build(index, &ids);
            let sat = inst.satisfy();
            self.instances
                .get_mut(&key)
                .expect("bucket just created")
                .push(CachedInstance { ids, inst, sat });
        }
        self.touch(hash);
        let bucket = self.instances.get(&key).expect("bucket exists");
        match pos {
            Some(p) => &bucket[p],
            None => bucket.last().expect("just pushed"),
        }
    }

    /// Algorithm 1 with cross-query reuse: repeated calls with a
    /// structurally identical hypergraph and bag set skip index build,
    /// block construction, *and* the satisfaction DP — only extraction
    /// runs. Returns exactly what [`crate::ctd::candidate_td`] returns.
    pub fn candidate_td(&mut self, h: &Hypergraph, bags: &[BitSet]) -> Option<TreeDecomposition> {
        let cached = self.instance(h, bags);
        cached.inst.extract(&cached.sat)
    }

    /// The prepared instance for `(h, bags)` (for callers that want to
    /// run their own DP variants — e.g. [`crate::ctd_opt`] — against the
    /// cached block tables).
    pub fn instance_for(&mut self, h: &Hypergraph, bags: &[BitSet]) -> &CtdInstance {
        &self.instance(h, bags).inst
    }

    /// `shw(h) ≤ k` with cross-query memoisation of the decision and
    /// witness. Generation limits only apply on a cache miss.
    pub fn shw_leq(
        &mut self,
        h: &Hypergraph,
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Option<TreeDecomposition>, LimitExceeded> {
        let (hash, index) = self.indexes.entry(h);
        if let Some(cached) = self.shw_results.get(&(hash, k)).cloned() {
            self.stats.result_hits += 1;
            self.touch(hash);
            return Ok(cached);
        }
        self.stats.result_misses += 1;
        let bags = soft_bag_ids(index, k, limits)?;
        let result = CtdInstance::build(index, &bags).decide();
        self.shw_results.insert((hash, k), result.clone());
        self.touch(hash);
        Ok(result)
    }

    /// `shw(h)` exactly, memoised per width across queries and computed
    /// through the incremental sweep engine on a miss: the per-graph
    /// [`IncrementalSweep`] grows one instance across the widths (and
    /// across *calls* — a repeated sweep over the same structure is pure
    /// memo hits, and a sweep interrupted by eviction simply restarts
    /// cold). Returns what [`crate::shw::shw`] returns.
    pub fn shw(&mut self, h: &Hypergraph) -> (usize, TreeDecomposition) {
        let (hash, _) = self.indexes.entry(h);
        self.touch(hash);
        for k in 1..=h.num_edges().max(1) {
            if let Some(cached) = self.shw_results.get(&(hash, k)) {
                self.stats.result_hits += 1;
                match cached {
                    Some(td) => return (k, td.clone()),
                    None => continue,
                }
            }
            self.stats.result_misses += 1;
            let (_, index) = self.indexes.entry(h);
            let sweep = self.sweeps.entry(hash).or_default();
            let result = sweep
                .decide_leq(index, k, &SoftLimits::default())
                .expect("default limits exceeded");
            self.shw_results.insert((hash, k), result.clone());
            if let Some(td) = result {
                return (k, td);
            }
        }
        unreachable!("shw is at most |E(H)|")
    }

    /// `hw(h) ≤ k` with cross-query memoisation (decision + witness).
    pub fn hw_leq(&mut self, h: &Hypergraph, k: usize) -> Option<Ghd> {
        let (hash, _) = self.indexes.entry(h);
        if let Some(cached) = self.hw_results.get(&(hash, k)).cloned() {
            self.stats.result_hits += 1;
            self.touch(hash);
            return cached;
        }
        self.stats.result_misses += 1;
        let result = hw::hw_leq(h, k);
        self.hw_results.insert((hash, k), result.clone());
        self.touch(hash);
        result
    }

    /// `hw(h)` exactly, memoised per width across queries.
    pub fn hw(&mut self, h: &Hypergraph) -> (usize, Ghd) {
        crate::width_sweep(h.num_edges(), |k| self.hw_leq(h, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shw;
    use crate::soft::soft_bags;
    use softhw_hypergraph::named;

    #[test]
    fn cached_candidate_td_equals_cold_runs() {
        let mut cache = DecompCache::new();
        for (h, k) in [
            (named::h2(), 1),
            (named::h2(), 2),
            (named::cycle(6), 2),
            (named::grid(3, 3), 2),
        ] {
            let bags = soft_bags(&h, k);
            let cold = crate::ctd::candidate_td(&h, &bags);
            let warm1 = cache.candidate_td(&h, &bags);
            let warm2 = cache.candidate_td(&h, &bags);
            assert_eq!(cold.is_some(), warm1.is_some(), "k = {k}");
            match (&cold, &warm1, &warm2) {
                (Some(c), Some(w1), Some(w2)) => {
                    // Same decomposition, node for node.
                    assert_eq!(c.bags(), w1.bags(), "k = {k}");
                    assert_eq!(w1.bags(), w2.bags(), "k = {k}");
                }
                (None, None, None) => {}
                _ => panic!("cold/warm disagree at k = {k}"),
            }
        }
        let s = cache.stats();
        assert!(s.instance_hits >= 4, "repeat calls must hit: {s:?}");
    }

    #[test]
    fn cached_shw_and_hw_equal_cold_runs() {
        let mut cache = DecompCache::new();
        for h in [named::h2(), named::cycle(8), named::triangle_star(3)] {
            let (cold_w, cold_td) = shw::shw(&h);
            let (warm_w, warm_td) = cache.shw(&h);
            assert_eq!(cold_w, warm_w);
            assert_eq!(cold_td.bags(), warm_td.bags());
            // Second query over the same structure: pure memo hits.
            let before = cache.stats().result_misses;
            let (again_w, again_td) = cache.shw(&h);
            assert_eq!(again_w, warm_w);
            assert_eq!(again_td.bags(), warm_td.bags());
            assert_eq!(cache.stats().result_misses, before, "sweep must be cached");

            let (cold_hw, _) = hw::hw(&h);
            let (warm_hw, warm_ghd) = cache.hw(&h);
            assert_eq!(cold_hw, warm_hw);
            assert!(warm_ghd.is_hd(&h));
        }
    }

    #[test]
    fn capacity_bound_evicts_lru_and_stays_correct() {
        let mut cache = DecompCache::with_capacity(2);
        let graphs = [
            named::h2(),
            named::cycle(5),
            named::cycle(6),
            named::grid(3, 3),
        ];
        let mut widths = Vec::new();
        for h in &graphs {
            widths.push(cache.shw(h).0);
        }
        // Four distinct structures through a bound of two: the cache must
        // stay within bound and must have evicted.
        assert!(cache.tracked_graphs() <= 2, "{}", cache.tracked_graphs());
        assert!(cache.stats().evictions >= 2, "{:?}", cache.stats());
        // Evicted structures recompute cold with identical results.
        for (h, w) in graphs.iter().zip(&widths) {
            let (again, td) = cache.shw(h);
            assert_eq!(again, *w);
            assert_eq!(td.validate(h), Ok(()));
            assert_eq!((again, td.bags().to_vec()), {
                let (cw, ctd) = crate::shw::shw(h);
                (cw, ctd.bags().to_vec())
            });
        }
        assert!(cache.tracked_graphs() <= 2);
    }

    #[test]
    fn repeated_queries_never_evict_below_bound() {
        let mut cache = DecompCache::with_capacity(4);
        for _ in 0..10 {
            cache.shw(&named::h2());
            cache.candidate_td(&named::h2(), &soft_bags(&named::h2(), 2));
            cache.hw(&named::cycle(5));
        }
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.tracked_graphs(), 2);
    }

    #[test]
    fn distinct_bag_sets_get_distinct_instances() {
        let mut cache = DecompCache::new();
        let h = named::h2();
        let b1 = soft_bags(&h, 1);
        let b2 = soft_bags(&h, 2);
        assert!(cache.candidate_td(&h, &b1).is_none());
        assert!(cache.candidate_td(&h, &b2).is_some());
        assert_eq!(cache.stats().instance_misses, 2);
        assert!(cache.candidate_td(&h, &b2).is_some());
        assert_eq!(cache.stats().instance_hits, 1);
    }
}
