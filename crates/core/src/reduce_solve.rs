//! Reduce-before-solve: run the width-preserving simplification pipeline
//! of [`softhw_hypergraph::reduce`], solve each reduced piece
//! independently, and lift the piece witnesses back to one valid
//! decomposition of the *original* hypergraph.
//!
//! Widths recombine by max (with a floor of 1 once any reduction event
//! fired: every peeled or dropped edge still needs a covering node). The
//! lift replays the reduction trace **backwards**, maintaining two
//! invariants at every step:
//!
//! * the tree under construction is a valid decomposition of the
//!   intermediate hypergraph state (the state just after the event being
//!   undone), and
//! * `cover[e]` points at a node whose bag contains edge `e`'s current
//!   vertex set, flagged *owned* when the lift created it.
//!
//! Undoing a peel of `v` from host `e` grows `e`'s owned node in place —
//! safe because a peeled vertex occurs in no other bag at that point —
//! or adds one leaf under `e`'s cover node. Undoing a subsumption drop
//! `d ⊆ f` adds a leaf with `d`'s set under `f`'s cover node (a subset
//! of that bag, so connectedness is preserved). Growing in place rather
//! than chaining one leaf per peel is what makes the lifted witness of a
//! fully-peelable (α-acyclic) hypergraph a genuine join tree: one node
//! per surviving edge, each coverable by a single edge.
//!
//! The `shw`/`hw` entry points here are **cold** reduce-aware solvers;
//! long-lived callers should prefer
//! [`crate::cache::DecompCache::solve`] with a
//! [`crate::spec::SolveSpec`], which routes through the same pipeline
//! with cross-query memoisation of the piece solves.

use crate::budget::Budget;
use crate::error::DecompError;
use crate::ghd::Ghd;
use crate::soft::SoftLimits;
use crate::td::TreeDecomposition;
use softhw_hypergraph::reduce::{reduce, reduce_no_peel, ReduceEvent, ReducePiece, Reduction};
use softhw_hypergraph::{BitSet, Hypergraph};

/// Where a lifted node came from: copied out of a solved piece, or
/// created by the replay for a specific original edge (its bag stays a
/// subset of that edge, so `λ = {edge}` covers it).
#[derive(Clone, Copy, Debug)]
enum NodeOrigin {
    /// Node `node` of the witness for piece `piece`.
    Piece { piece: usize, node: usize },
    /// Created by the replay; owned by original edge `edge`.
    Owned { edge: usize },
}

struct Lifter<'a> {
    h: &'a Hypergraph,
    red: &'a Reduction,
    td: Option<TreeDecomposition>,
    /// Parallel to the nodes of `td`, in creation order.
    origin: Vec<NodeOrigin>,
    /// Per original edge: `(node, owned)` with `bag(node) ⊇` the edge's
    /// current set in the backward replay.
    cover: Vec<Option<(usize, bool)>>,
}

impl<'a> Lifter<'a> {
    fn new(h: &'a Hypergraph, red: &'a Reduction) -> Self {
        Lifter {
            h,
            red,
            td: None,
            origin: Vec::new(),
            cover: vec![None; red.num_edges],
        }
    }

    /// Adds a node (the root if none exists yet, otherwise a child of
    /// `parent`, defaulting to the root) and records its origin.
    fn add_node(&mut self, parent: Option<usize>, bag: BitSet, origin: NodeOrigin) -> usize {
        let id = match &mut self.td {
            None => {
                debug_assert!(parent.is_none());
                self.td = Some(TreeDecomposition::new(bag));
                0
            }
            Some(td) => {
                let p = parent.unwrap_or(td.root());
                td.add_child(p, bag)
            }
        };
        debug_assert_eq!(id, self.origin.len());
        self.origin.push(origin);
        id
    }

    /// Grafts one solved piece into the global tree (piece 0's root
    /// becomes the global root; later pieces hang under it — the pieces
    /// are vertex-disjoint, so any attachment point is valid) and
    /// records a cover node for every piece edge.
    fn stitch(&mut self, piece_idx: usize, piece: &ReducePiece, ptd: &TreeDecomposition) {
        let remap = |bag: &BitSet| -> BitSet {
            let mut out = BitSet::empty(self.h.num_vertices());
            for v in bag.iter() {
                out.insert(piece.vertex_map[v]);
            }
            out
        };
        let mut node_map = vec![usize::MAX; ptd.num_nodes()];
        for u in ptd.preorder() {
            let origin = NodeOrigin::Piece {
                piece: piece_idx,
                node: u,
            };
            let parent = ptd.parent(u).map(|p| node_map[p]);
            node_map[u] = self.add_node(parent, remap(ptd.bag(u)), origin);
        }
        for (pe, &re) in piece.edge_map.iter().enumerate() {
            let eset = piece.h.edge(pe);
            let n = (0..ptd.num_nodes())
                .find(|&u| eset.is_subset(ptd.bag(u)))
                .expect("piece witness covers every piece edge");
            self.cover[re] = Some((node_map[n], false));
        }
    }

    /// Replays the reduction trace backwards, restoring every peeled
    /// vertex and dropped edge into the tree.
    fn replay(&mut self) {
        for ev in self.red.events.iter().rev() {
            match ev {
                ReduceEvent::Peel {
                    vertex,
                    edge,
                    host_before,
                } => match self.cover[*edge] {
                    Some((node, true)) => {
                        // The peeled vertex occurs in no bag yet, so
                        // growing its host's owned node keeps every
                        // vertex's occurrence set a subtree.
                        self.td
                            .as_mut()
                            .expect("cover implies nodes")
                            .grow_bag(node, *vertex);
                    }
                    Some((node, false)) => {
                        let leaf = self.add_node(
                            Some(node),
                            host_before.clone(),
                            NodeOrigin::Owned { edge: *edge },
                        );
                        self.cover[*edge] = Some((leaf, true));
                    }
                    None => {
                        // The edge is currently empty (fully peeled):
                        // this event restored its last vertex, which is
                        // fresh, so the node can attach anywhere.
                        let leaf = self.add_node(
                            None,
                            host_before.clone(),
                            NodeOrigin::Owned { edge: *edge },
                        );
                        self.cover[*edge] = Some((leaf, true));
                    }
                },
                ReduceEvent::Drop {
                    edge,
                    subsumer,
                    set,
                } => {
                    let (anchor, _) = self.cover[*subsumer]
                        .expect("subsumer is alive, hence placed, when a drop is undone");
                    let leaf =
                        self.add_node(Some(anchor), set.clone(), NodeOrigin::Owned { edge: *edge });
                    self.cover[*edge] = Some((leaf, true));
                }
            }
        }
    }

    fn finish(self) -> (TreeDecomposition, Vec<NodeOrigin>) {
        let td = self
            .td
            .expect("non-trivial reduction lifts at least one node");
        (td, self.origin)
    }
}

fn lift(
    h: &Hypergraph,
    red: &Reduction,
    piece_tds: &[&TreeDecomposition],
) -> (TreeDecomposition, Vec<NodeOrigin>) {
    assert_eq!(piece_tds.len(), red.pieces.len());
    let mut lifter = Lifter::new(h, red);
    for (i, (piece, ptd)) in red.pieces.iter().zip(piece_tds).enumerate() {
        lifter.stitch(i, piece, ptd);
    }
    lifter.replay();
    lifter.finish()
}

/// Lifts per-piece tree decompositions back to one valid decomposition
/// of the original hypergraph by replaying the reduction trace
/// backwards. Panics if the reduction is trivial *and* empty (nothing to
/// lift); callers handle `red.is_trivial()` with the raw solver path.
pub fn lift_td(
    h: &Hypergraph,
    red: &Reduction,
    piece_tds: &[TreeDecomposition],
) -> TreeDecomposition {
    let refs: Vec<&TreeDecomposition> = piece_tds.iter().collect();
    lift(h, red, &refs).0
}

/// Lifts per-piece GHDs back to one GHD of the original hypergraph.
/// Piece λ-labels map through the piece's edge map; replay-created nodes
/// get `λ = {owning edge}` (their bags are subsets of that edge).
pub fn lift_ghd(h: &Hypergraph, red: &Reduction, piece_ghds: &[Ghd]) -> Ghd {
    let refs: Vec<&TreeDecomposition> = piece_ghds.iter().map(|g| &g.td).collect();
    let (td, origin) = lift(h, red, &refs);
    let lambdas: Vec<Vec<usize>> = origin
        .iter()
        .map(|o| match *o {
            NodeOrigin::Piece { piece, node } => piece_ghds[piece].lambdas[node]
                .iter()
                .map(|&e| red.pieces[piece].edge_map[e])
                .collect(),
            NodeOrigin::Owned { edge } => vec![edge],
        })
        .collect();
    Ghd { td, lambdas }
}

/// Exact soft hypertree width via reduce-before-solve: simplify, solve
/// each piece with the incremental sweep, recombine widths by max (floor
/// 1 when anything was reduced) and lift the witness. Irreducible
/// connected inputs take the raw path unchanged.
pub fn shw(h: &Hypergraph) -> (usize, TreeDecomposition) {
    let red = reduce(h);
    if red.is_trivial() {
        return crate::shw::shw_raw(h);
    }
    let mut width = 1usize;
    let mut tds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        let (w, td) = crate::shw::shw_raw(&piece.h);
        width = width.max(w);
        tds.push(td);
    }
    let td = lift_td(h, &red, &tds);
    debug_assert_eq!(td.validate(h), Ok(()));
    (width, td)
}

/// [`shw`] with a cooperative [`Budget`], checked before every reduced
/// piece (the per-piece sweeps check it far more finely on their own).
/// On abort the partially solved pieces are dropped; a retry re-reduces
/// and re-solves from scratch.
pub fn shw_budgeted(
    h: &Hypergraph,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<(usize, TreeDecomposition), DecompError> {
    let red = reduce(h);
    if red.is_trivial() {
        return crate::shw::shw_raw_budgeted(h, limits, budget);
    }
    let mut width = 1usize;
    let mut tds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        budget.check()?;
        let (w, td) = crate::shw::shw_raw_budgeted(&piece.h, limits, budget)?;
        width = width.max(w);
        tds.push(td);
    }
    let td = lift_td(h, &red, &tds);
    debug_assert_eq!(td.validate(h), Ok(()));
    Ok((width, td))
}

/// Decides `shw(H) <= k` via reduce-before-solve (every piece must
/// accept). `k = 0` falls back to the raw decision.
pub fn shw_leq(h: &Hypergraph, k: usize) -> Option<TreeDecomposition> {
    if k == 0 {
        return crate::shw::shw_leq(h, k);
    }
    let red = reduce(h);
    if red.is_trivial() {
        return crate::shw::shw_leq(h, k);
    }
    let mut tds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        tds.push(crate::shw::shw_leq(&piece.h, k)?);
    }
    let td = lift_td(h, &red, &tds);
    debug_assert_eq!(td.validate(h), Ok(()));
    Some(td)
}

/// [`shw_leq`] with a cooperative [`Budget`] and explicit limits.
pub fn shw_leq_budgeted(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Option<TreeDecomposition>, DecompError> {
    let raw = |h: &Hypergraph| {
        let mut index = softhw_hypergraph::BlockIndex::new(h);
        crate::shw::shw_leq_indexed_budgeted(&mut index, k, limits, budget)
    };
    if k == 0 {
        return raw(h);
    }
    let red = reduce(h);
    if red.is_trivial() {
        return raw(h);
    }
    let mut tds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        budget.check()?;
        match raw(&piece.h)? {
            Some(td) => tds.push(td),
            None => return Ok(None),
        }
    }
    let td = lift_td(h, &red, &tds);
    debug_assert_eq!(td.validate(h), Ok(()));
    Ok(Some(td))
}

/// Exact hypertree width via reduce-before-solve; the lifted witness is
/// a genuine HD (special condition included) of the reported width.
///
/// Uses [`reduce_no_peel`]: degree-1 peeling is sound for tree
/// decompositions but re-enters peeled vertices *below* nodes that may
/// carry their host edge in `λ`, violating the HD special condition —
/// so the `hw` path restricts itself to subsumption and splitting.
pub fn hw(h: &Hypergraph) -> (usize, Ghd) {
    let red = reduce_no_peel(h);
    if red.is_trivial() {
        return crate::hw::hw_raw(h);
    }
    let mut width = 1usize;
    let mut ghds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        let (w, g) = crate::hw::hw_raw(&piece.h);
        width = width.max(w);
        ghds.push(g);
    }
    let g = lift_ghd(h, &red, &ghds);
    debug_assert!(g.is_hd(h), "lifted HD must satisfy the special condition");
    (width, g)
}

/// [`hw`] with a cooperative [`Budget`], checked before every reduced
/// piece and per sub-problem inside each piece's search.
pub fn hw_budgeted(h: &Hypergraph, budget: &Budget) -> Result<(usize, Ghd), DecompError> {
    let red = reduce_no_peel(h);
    if red.is_trivial() {
        return crate::hw::hw_raw_budgeted(h, budget);
    }
    let mut width = 1usize;
    let mut ghds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        budget.check()?;
        let (w, g) = crate::hw::hw_raw_budgeted(&piece.h, budget)?;
        width = width.max(w);
        ghds.push(g);
    }
    let g = lift_ghd(h, &red, &ghds);
    debug_assert!(g.is_hd(h), "lifted HD must satisfy the special condition");
    Ok((width, g))
}

/// Decides `hw(H) <= k` via reduce-before-solve (every piece must
/// accept). `k = 0` falls back to the raw decision.
pub fn hw_leq(h: &Hypergraph, k: usize) -> Option<Ghd> {
    if k == 0 {
        return crate::hw::hw_leq(h, k);
    }
    let red = reduce_no_peel(h);
    if red.is_trivial() {
        return crate::hw::hw_leq(h, k);
    }
    let mut ghds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        ghds.push(crate::hw::hw_leq(&piece.h, k)?);
    }
    let g = lift_ghd(h, &red, &ghds);
    debug_assert!(g.is_hd(h), "lifted HD must satisfy the special condition");
    Some(g)
}

/// [`hw_leq`] with a cooperative [`Budget`].
pub fn hw_leq_budgeted(
    h: &Hypergraph,
    k: usize,
    budget: &Budget,
) -> Result<Option<Ghd>, DecompError> {
    if k == 0 {
        return crate::hw::hw_leq_budgeted(h, k, budget);
    }
    let red = reduce_no_peel(h);
    if red.is_trivial() {
        return crate::hw::hw_leq_budgeted(h, k, budget);
    }
    let mut ghds = Vec::with_capacity(red.pieces.len());
    for piece in &red.pieces {
        budget.check()?;
        match crate::hw::hw_leq_budgeted(&piece.h, k, budget)? {
            Some(g) => ghds.push(g),
            None => return Ok(None),
        }
    }
    let g = lift_ghd(h, &red, &ghds);
    debug_assert!(g.is_hd(h), "lifted HD must satisfy the special condition");
    Ok(Some(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::HypergraphBuilder;

    fn acyclic_chain() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b", "c"]);
        b.edge("e2", &["c", "d"]);
        b.edge("e3", &["d", "e"]);
        b.build()
    }

    #[test]
    fn acyclic_chain_lifts_to_a_hypertree() {
        let h = acyclic_chain();
        let (w, g) = hw(&h);
        assert_eq!(w, 1);
        assert!(
            g.is_hd(&h),
            "fully-peeled lift is a join tree:\n{}",
            g.render(&h)
        );
        let (ws, td) = shw(&h);
        assert_eq!(ws, 1);
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn disconnected_input_is_solved_piecewise() {
        let mut b = HypergraphBuilder::new();
        for (p, vs) in [("a", ["a1", "a2", "a3"]), ("b", ["b1", "b2", "b3"])] {
            b.edge(&format!("{p}_e1"), &[vs[0], vs[1]]);
            b.edge(&format!("{p}_e2"), &[vs[1], vs[2]]);
            b.edge(&format!("{p}_e3"), &[vs[2], vs[0]]);
        }
        let h = b.build();
        // The raw sweep cannot decompose disconnected inputs at all;
        // the reduce path splits and recombines.
        let (w, td) = shw(&h);
        assert_eq!(w, 2, "each triangle has shw 2");
        assert_eq!(td.validate(&h), Ok(()));
        let (wh, g) = hw(&h);
        assert_eq!(wh, 2);
        assert!(g.is_hd(&h));
    }

    #[test]
    fn pendant_and_subsumed_edges_do_not_change_width() {
        // A 6-cycle (shw = hw = 2) with a pendant path and a subsumed
        // edge attached: the reductions strip them, the width stays 2.
        let mut b = HypergraphBuilder::new();
        for i in 0..6 {
            b.edge(
                &format!("c{i}"),
                &[&format!("v{i}"), &format!("v{}", (i + 1) % 6)],
            );
        }
        b.edge("sub", &["v0", "v1"]); // duplicate of c0
        b.edge("p1", &["v3", "p"]);
        b.edge("p2", &["p", "q"]);
        let h = b.build();
        let (w, td) = shw(&h);
        assert_eq!(w, 2);
        assert_eq!(td.validate(&h), Ok(()));
        let (wh, g) = hw(&h);
        assert_eq!(wh, 2);
        assert!(g.is_hd(&h));
    }

    #[test]
    fn decisions_agree_with_exact_widths() {
        let h = acyclic_chain();
        assert!(shw_leq(&h, 1).is_some());
        assert!(hw_leq(&h, 1).is_some());
        let mut b = HypergraphBuilder::new();
        for i in 0..5 {
            b.edge(
                &format!("c{i}"),
                &[&format!("v{i}"), &format!("v{}", (i + 1) % 5)],
            );
        }
        b.edge("pendant", &["v0", "x"]);
        let h = b.build();
        assert!(shw_leq(&h, 1).is_none(), "a 5-cycle needs width 2");
        let td = shw_leq(&h, 2).expect("width 2 suffices");
        assert_eq!(td.validate(&h), Ok(()));
        let g = hw_leq(&h, 2).expect("width 2 suffices");
        assert_eq!(g.validate(&h), Ok(()));
    }
}
