//! Cooperative cancellation and deadline budgets for the solver stack.
//!
//! Width computation is worst-case exponential, so every long-running
//! path — candidate enumeration, instance build/extension, the
//! satisfaction worklist, the incremental sweep, reduce-before-solve —
//! accepts a [`Budget`] and checks it at *coarse* granularity (per
//! enumeration node, per comp-group scan, per DP wave, per reduced
//! piece). A tripped budget surfaces as
//! [`DecompError::DeadlineExceeded`] or [`DecompError::Canceled`], which
//! are **not** internal errors: callers must leave their state either
//! untouched or `reset()` to a cold-rebuildable state, so a
//! cancel-then-retry is bit-identical to a never-cancelled cold run
//! (property-tested in `tests/budget_props.rs`).
//!
//! A `Budget` is an `Option<Arc>` under the hood: the unlimited budget
//! allocates nothing and its checks compile to a branch on `None`, so
//! threading budgets through hot paths costs nothing when no deadline is
//! set. Deadline checks amortise the `Instant::now()` syscall-ish cost:
//! the cancel flag and work cap are checked on every [`Budget::tick`]
//! (two relaxed atomic ops), the clock only every
//! [`DEADLINE_CHECK_INTERVAL`] ticks and at every [`Budget::check`]
//! boundary — which bounds cancellation latency to one check interval of
//! solver work past the deadline.
//!
//! The optional *work cap* bounds total ticks across all clones (one
//! shared counter, like [`crate::soft::SoftLimits`] budgets). Exceeding
//! it reports [`DecompError::DeadlineExceeded`] too: a work cap is a
//! deterministic deadline, which is exactly what the cancel-then-retry
//! property tests use to abort at reproducible points without wall-clock
//! flakiness.

use crate::error::DecompError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The wall clock is consulted every this many [`Budget::tick`]s (checks
/// of the cancel flag and work cap happen on every tick). Must be a
/// power of two.
pub const DEADLINE_CHECK_INTERVAL: u64 = 256;

#[derive(Debug)]
struct BudgetInner {
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    /// Maximum total ticks across all clones, if any.
    work_cap: Option<u64>,
    /// Set by [`Budget::cancel`]; observed by every tick/check.
    cancel: AtomicBool,
    /// Ticks consumed so far, shared across clones (and across parallel
    /// workers holding clones).
    ticks: AtomicU64,
}

/// A cheap, clonable cancellation budget: an optional deadline instant,
/// an optional work cap, and a shared cancel flag. Clones share all
/// state — cancelling any clone cancels them all, and work ticks count
/// against one shared cap. See the module docs for the checking
/// contract.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl Budget {
    /// The no-op budget: never expires, never cancels, allocates
    /// nothing. Checks against it are a single branch.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget with no deadline or cap, but a live cancel flag — for
    /// callers that only need cooperative cancellation (e.g. a server
    /// draining in-flight requests at shutdown).
    pub fn cancellable() -> Budget {
        Budget::build(None, None)
    }

    /// A budget expiring `after` from now.
    pub fn with_deadline(after: Duration) -> Budget {
        Budget::build(Some(Instant::now() + after), None)
    }

    /// A budget expiring at an absolute instant (for sharing one
    /// deadline across pipeline stages).
    pub fn with_deadline_at(at: Instant) -> Budget {
        Budget::build(Some(at), None)
    }

    /// A budget bounded by total work ticks instead of wall clock —
    /// deterministic, so tests can abort at reproducible points.
    pub fn with_work_cap(cap: u64) -> Budget {
        Budget::build(None, Some(cap))
    }

    fn build(deadline: Option<Instant>, work_cap: Option<u64>) -> Budget {
        Budget {
            inner: Some(Arc::new(BudgetInner {
                deadline,
                work_cap,
                cancel: AtomicBool::new(false),
                ticks: AtomicU64::new(0),
            })),
        }
    }

    /// True iff this is the no-op budget (no deadline, no cap, no cancel
    /// flag).
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Requests cancellation: every clone's next tick or check fails
    /// with [`DecompError::Canceled`]. No-op on the unlimited budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// True iff [`Budget::cancel`] was called on any clone.
    pub fn is_canceled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancel.load(Ordering::Relaxed))
    }

    /// Consumes one work unit: always checks the cancel flag and work
    /// cap, consults the wall clock every [`DEADLINE_CHECK_INTERVAL`]
    /// ticks. Call this from per-item loops (enumeration nodes, group
    /// scans); use [`Budget::check`] at stage boundaries.
    #[inline]
    pub fn tick(&self) -> Result<(), DecompError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(DecompError::Canceled);
        }
        let t = inner.ticks.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = inner.work_cap {
            if t >= cap {
                return Err(DecompError::DeadlineExceeded);
            }
        }
        if t % DEADLINE_CHECK_INTERVAL == 0 {
            if let Some(deadline) = inner.deadline {
                if Instant::now() >= deadline {
                    return Err(DecompError::DeadlineExceeded);
                }
            }
        }
        Ok(())
    }

    /// Full check including the wall clock, without consuming a tick.
    /// Call at stage boundaries (before a wave, a piece, a scan
    /// fan-out) so a deadline that passed during a parallel region is
    /// observed before the next one starts.
    pub fn check(&self) -> Result<(), DecompError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(DecompError::Canceled);
        }
        if let Some(cap) = inner.work_cap {
            if inner.ticks.load(Ordering::Relaxed) > cap {
                return Err(DecompError::DeadlineExceeded);
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(DecompError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero when already past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.tick().unwrap();
        }
        b.check().unwrap();
        assert!(b.is_unlimited());
        assert!(b.deadline().is_none());
        b.cancel(); // no-op
        b.check().unwrap();
    }

    #[test]
    fn cancel_is_seen_by_all_clones() {
        let a = Budget::cancellable();
        let b = a.clone();
        a.tick().unwrap();
        b.cancel();
        assert!(a.is_canceled());
        assert_eq!(a.tick(), Err(DecompError::Canceled));
        assert_eq!(a.check(), Err(DecompError::Canceled));
    }

    #[test]
    fn work_cap_is_shared_and_deterministic() {
        let a = Budget::with_work_cap(10);
        let b = a.clone();
        for _ in 0..5 {
            a.tick().unwrap();
            b.tick().unwrap();
        }
        assert_eq!(a.tick(), Err(DecompError::DeadlineExceeded));
        assert_eq!(b.check(), Err(DecompError::DeadlineExceeded));
    }

    #[test]
    fn past_deadline_trips_check_immediately() {
        let b = Budget::with_deadline_at(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.check(), Err(DecompError::DeadlineExceeded));
        // tick 0 consults the clock, so the very first tick trips too.
        assert_eq!(b.tick(), Err(DecompError::DeadlineExceeded));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        for _ in 0..1000 {
            b.tick().unwrap();
        }
        b.check().unwrap();
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }
}
