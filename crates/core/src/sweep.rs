//! The incremental width-sweep engine.
//!
//! Algorithm 1 decides `shw(H) ≤ k` per width; an exact-`shw` sweep asks
//! that question for `k = 1, 2, …` until the first accept. The candidate
//! set `Soft_{H,k}` grows monotonically in `k` (every `λ` bounded by `k`
//! is bounded by `k+1`), so consecutive widths share almost all of their
//! instance: before this engine the sweep rebuilt the [`CtdInstance`]
//! and re-ran the satisfaction DP from scratch at every width.
//!
//! [`IncrementalSweep`] keeps one instance across the sweep and brings
//! it from width `k` to `k+1` with [`CtdInstance::extend`] — new bags
//! and blocks are appended, only comp groups whose candidate sets
//! changed are rescanned — and with [`CtdInstance::satisfy_extend`],
//! which keeps every previously satisfied block's basis and timestamp
//! and re-enqueues only the extension's dirty blocks. The per-width
//! accept/reject decisions are identical to cold runs (the DP's
//! satisfied set is the least fixpoint of a monotone operator, reached
//! from any sound starting state); `tests/worklist_props.rs` asserts
//! both the decision equality and the bit-identity of the extended
//! instance against a cold build.

use crate::budget::Budget;
use crate::ctd::{CtdInstance, Satisfaction};
use crate::error::DecompError;
use crate::soft::{soft_bag_ids_budgeted, SoftLimits};
use crate::td::TreeDecomposition;
use softhw_hypergraph::BlockIndex;

/// Reusable sweep state: the growing instance plus its satisfaction
/// table. Create once per hypergraph, then ask widths in ascending
/// order; each width pays one candidate-set delta instead of a cold
/// build. Asking a width below one already asked falls back to a cold
/// decision (the grown instance cannot shrink), so the engine is safe to
/// hold in caches that serve arbitrary queries.
#[derive(Default)]
pub struct IncrementalSweep {
    inst: Option<CtdInstance>,
    sat: Option<Satisfaction>,
    max_k: usize,
}

impl IncrementalSweep {
    /// A sweep with no state yet.
    pub fn new() -> Self {
        IncrementalSweep::default()
    }

    /// The largest width decided through the incremental path so far.
    pub fn max_width(&self) -> usize {
        self.max_k
    }

    /// Approximate heap footprint in bytes of the grown instance and its
    /// satisfaction state.
    pub fn approx_bytes(&self) -> u64 {
        self.inst.as_ref().map_or(0, |i| i.approx_bytes())
            + self.sat.as_ref().map_or(0, |s| s.approx_bytes())
    }

    /// The grown instance, once any width has been decided.
    pub fn instance(&self) -> Option<&CtdInstance> {
        self.inst.as_ref()
    }

    /// The incrementally maintained satisfaction table, once any width
    /// has been decided. Exposed so the cancel-then-retry property tests
    /// can assert bit-identity (bases and timestamps) between an
    /// interrupted-then-reset sweep and a never-interrupted one.
    pub fn satisfaction(&self) -> Option<&Satisfaction> {
        self.sat.as_ref()
    }

    /// Drops all grown state; the next width decided re-seeds from an
    /// empty instance. Used by caches when an entry must be rebuilt, and
    /// internally to degrade from an inconsistent extension.
    pub fn reset(&mut self) {
        self.inst = None;
        self.sat = None;
        self.max_k = 0;
    }

    /// Decides `shw(H) ≤ k` for the index's hypergraph, reusing the
    /// instance and satisfaction state of every smaller width already
    /// decided through this sweep. Returns exactly the accept/reject
    /// outcome of a cold [`crate::shw::shw_leq_indexed`] call; on accept
    /// the witness is extracted from the incrementally maintained
    /// satisfaction table (a valid CompNF decomposition over
    /// `Soft_{H,k}` bags — basis choices may differ from a cold run's,
    /// which is the documented latitude of
    /// [`CtdInstance::satisfy_extend`]).
    ///
    /// This entry point does not panic: generation blow-ups surface as
    /// [`DecompError::Limit`]/[`DecompError::Shards`], and if the grown
    /// state is ever found inconsistent the sweep drops it and decides
    /// the width cold ([`DecompError::Internal`] escapes only if the
    /// cold run is inconsistent too).
    pub fn decide_leq(
        &mut self,
        index: &mut BlockIndex,
        k: usize,
        limits: &SoftLimits,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        self.decide_leq_budgeted(index, k, limits, &Budget::unlimited())
    }

    /// [`IncrementalSweep::decide_leq`] with a cooperative [`Budget`].
    ///
    /// **Reset contract:** when the budget trips mid-decision (during
    /// candidate generation, an extension, or the DP), the sweep
    /// [`reset`](IncrementalSweep::reset)s itself before propagating the
    /// budget error — an interrupted extension tears the instance's
    /// dependency tables, so the grown state must not be reused. A retry
    /// therefore re-seeds from an empty instance and, because cold
    /// builds and never-interrupted incremental runs are bit-identical,
    /// produces exactly the state a never-cancelled sweep would have
    /// (property-tested in `tests/budget_props.rs`).
    pub fn decide_leq_budgeted(
        &mut self,
        index: &mut BlockIndex,
        k: usize,
        limits: &SoftLimits,
        budget: &Budget,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        match self.decide_leq_inner(index, k, limits, budget) {
            Err(e) if e.is_budget() => {
                // The budget tripped with the grown state possibly torn
                // mid-extension: drop it so the next call re-seeds cold.
                // Nothing is memoised for this width, so the retry is
                // bit-identical to a never-interrupted run.
                self.reset();
                Err(e)
            }
            other => other,
        }
    }

    fn decide_leq_inner(
        &mut self,
        index: &mut BlockIndex,
        k: usize,
        limits: &SoftLimits,
        budget: &Budget,
    ) -> Result<Option<TreeDecomposition>, DecompError> {
        if k < self.max_k {
            // The grown instance already contains wider-width bags; a
            // smaller width must be decided against its own candidate
            // set, so run it cold.
            let ids = soft_bag_ids_budgeted(index, k, limits, budget)?;
            return CtdInstance::build_budgeted(index, &ids, budget)?.try_decide_budgeted(budget);
        }
        let ids = soft_bag_ids_budgeted(index, k, limits, budget)?;
        if self.inst.is_none() {
            let inst = CtdInstance::empty(index);
            self.sat = Some(inst.satisfy());
            self.inst = Some(inst);
        }
        let (Some(inst), Some(prev)) = (self.inst.as_mut(), self.sat.as_ref()) else {
            // Unreachable by construction (just seeded); degrade to a
            // cold decision rather than unwrap.
            self.reset();
            return CtdInstance::build_budgeted(index, &ids, budget)?.try_decide_budgeted(budget);
        };
        let delta = inst.extend_budgeted(index, &ids, budget)?;
        let sat = inst.satisfy_extend_budgeted(prev, &delta, budget)?;
        self.max_k = k;
        match inst.try_extract(&sat) {
            Ok(out) => {
                self.sat = Some(sat);
                Ok(out)
            }
            Err(e) if e.is_internal() => {
                // The grown state disagrees with its own satisfaction
                // table: drop it and decide this width cold. The next
                // call re-seeds the sweep from scratch.
                self.reset();
                CtdInstance::build_budgeted(index, &ids, budget)?.try_decide_budgeted(budget)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shw;
    use softhw_hypergraph::named;

    #[test]
    fn sweep_decisions_match_cold_per_width_runs() {
        for h in [named::h2(), named::cycle(6), named::grid(3, 3)] {
            let mut index = BlockIndex::new(&h);
            let mut sweep = IncrementalSweep::new();
            let limits = SoftLimits::default();
            for k in 1..=3 {
                let inc = sweep.decide_leq(&mut index, k, &limits).unwrap();
                let cold = shw::shw_leq_with(&h, k, &limits).unwrap();
                assert_eq!(inc.is_some(), cold.is_some(), "k = {k}");
                if let Some(td) = inc {
                    assert_eq!(td.validate(&h), Ok(()));
                    assert!(td.is_comp_nf(&h));
                }
            }
            assert_eq!(sweep.max_width(), 3);
        }
    }

    #[test]
    fn asking_a_smaller_width_falls_back_to_cold() {
        let h = named::h2();
        let mut index = BlockIndex::new(&h);
        let mut sweep = IncrementalSweep::new();
        let limits = SoftLimits::default();
        assert!(sweep.decide_leq(&mut index, 2, &limits).unwrap().is_some());
        // k = 1 after k = 2: must still reject (cold fallback), and must
        // not corrupt the grown state.
        assert!(sweep.decide_leq(&mut index, 1, &limits).unwrap().is_none());
        assert!(sweep.decide_leq(&mut index, 2, &limits).unwrap().is_some());
    }

    #[test]
    fn repeated_width_is_idempotent() {
        let h = named::cycle(5);
        let mut index = BlockIndex::new(&h);
        let mut sweep = IncrementalSweep::new();
        let limits = SoftLimits::default();
        let first = sweep.decide_leq(&mut index, 2, &limits).unwrap().unwrap();
        let again = sweep.decide_leq(&mut index, 2, &limits).unwrap().unwrap();
        assert_eq!(first.bags(), again.bags());
    }
}
