//! The iterated soft hierarchy of Section 5 (Definition 6):
//!
//! ```text
//! E^(0)   = E(H)                Soft^0_{H,k} = Soft_{H,k}
//! E^(i+1) = E^(i) ⋂× Soft^i     Soft^i_{H,k} = { (⋃λ1) ∩ (⋃C) }
//! ```
//!
//! with `λ1` drawn from `E^(i)` and `λ2` (which induces the component `C`)
//! still drawn from `E(H)`. The associated width measures `shw_i`
//! interpolate between `shw = shw_0` and `ghw = shw_∞` (Theorem 7); by
//! Lemma 6 the hierarchy reaches its fixpoint after at most `3n` steps.
//!
//! Materialising `Soft^i` is exponential-ish in practice (the `λ1` side
//! ranges over subsets of `E^(i)`, which grows by intersections), so all
//! entry points take [`SoftLimits`]. For hypergraphs too large to
//! materialise — e.g. `H'3` of Example 2 — [`soft_i_witness`] offers a
//! *membership check with witness* that only materialises `E^(i)`.

use crate::ctd::candidate_td_ids;
use crate::soft::{self, LimitExceeded, SoftLimits};
use crate::td::TreeDecomposition;
use softhw_hypergraph::arena::{words_empty, words_intersect_into, IdSet};
use softhw_hypergraph::{BagId, BitSet, BlockIndex, Hypergraph};

/// Lazily computed levels of the `E^(i)` / `Soft^i_{H,k}` hierarchy.
///
/// All levels live as interned [`BagId`]s in one shared [`BlockIndex`]:
/// the subedge products `E^(i+1) = E^(i) ⋂× Soft^i` dedup by arena
/// interning, and the per-level `Soft^i` generation reuses the index's
/// component/union caches — the `λ2` side of Definition 3 does not
/// depend on the level, so every level past the first enumerates it for
/// free. Materialised [`BitSet`] views are kept per level for the
/// public slice API.
pub struct SoftHierarchy<'h> {
    h: &'h Hypergraph,
    k: usize,
    limits: SoftLimits,
    index: BlockIndex,
    /// `subedges[i]` = `E^(i)` (ids, sorted by content).
    subedge_ids: Vec<Vec<BagId>>,
    /// `bags[i]` = `Soft^i_{H,k}` (ids, sorted by content).
    bag_ids: Vec<Vec<BagId>>,
    /// Materialised views, index-aligned with the id levels.
    subedges: Vec<Vec<BitSet>>,
    bags: Vec<Vec<BitSet>>,
}

impl<'h> SoftHierarchy<'h> {
    /// Creates an empty hierarchy for `H` and width bound `k`.
    pub fn new(h: &'h Hypergraph, k: usize, limits: SoftLimits) -> Self {
        SoftHierarchy {
            h,
            k,
            limits,
            index: BlockIndex::new(h),
            subedge_ids: Vec::new(),
            bag_ids: Vec::new(),
            subedges: Vec::new(),
            bags: Vec::new(),
        }
    }

    /// The width parameter `k` of this hierarchy.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Ensures levels `0..=i` are materialised; returns `Soft^i_{H,k}`.
    pub fn soft_level(&mut self, i: usize) -> Result<&[BitSet], LimitExceeded> {
        self.ensure(i)?;
        Ok(&self.bags[i])
    }

    /// [`SoftHierarchy::soft_level`] as interned ids into
    /// [`SoftHierarchy::index`].
    pub fn soft_level_ids(&mut self, i: usize) -> Result<&[BagId], LimitExceeded> {
        self.ensure(i)?;
        Ok(&self.bag_ids[i])
    }

    /// The shared block index holding every level's bags.
    pub fn index_mut(&mut self) -> &mut BlockIndex {
        &mut self.index
    }

    fn materialise(index: &BlockIndex, ids: &[BagId]) -> Vec<BitSet> {
        ids.iter().map(|&id| index.arena.to_bitset(id)).collect()
    }

    /// Ensures `E^(i)` is materialised (this requires `Soft^(i-1)` for
    /// `i > 0`); returns it.
    pub fn subedge_level(&mut self, i: usize) -> Result<&[BitSet], LimitExceeded> {
        self.ensure_subedges(i)?;
        Ok(&self.subedges[i])
    }

    fn ensure_subedges(&mut self, i: usize) -> Result<(), LimitExceeded> {
        if i == 0 {
            if self.subedge_ids.is_empty() {
                let mut seen = IdSet::new();
                let mut v: Vec<BagId> = Vec::new();
                for e in 0..self.h.num_edges() {
                    let id = self.index.arena.intern_words(self.h.edge(e).blocks());
                    if seen.insert(id) {
                        v.push(id);
                    }
                }
                v.sort_unstable_by(|&a, &b| self.index.arena.cmp_bags(a, b));
                self.subedges.push(Self::materialise(&self.index, &v));
                self.subedge_ids.push(v);
            }
            return Ok(());
        }
        self.ensure(i - 1)?;
        while self.subedge_ids.len() <= i {
            let lvl = self.subedge_ids.len();
            let words = self.index.arena.words_per_bag();
            let mut seen = IdSet::new();
            let mut v: Vec<BagId> = Vec::new();
            let mut buf = vec![0u64; words];
            for ei in 0..self.subedge_ids[lvl - 1].len() {
                for bi in 0..self.bag_ids[lvl - 1].len() {
                    let (e, b) = (self.subedge_ids[lvl - 1][ei], self.bag_ids[lvl - 1][bi]);
                    buf.copy_from_slice(self.index.arena.words(e));
                    words_intersect_into(self.index.arena.words(b), &mut buf);
                    if !words_empty(&buf) {
                        let id = self.index.arena.intern_words(&buf);
                        if seen.insert(id) {
                            v.push(id);
                            if v.len() > self.limits.max_bags {
                                return Err(LimitExceeded {
                                    what: "max_bags (subedge level)",
                                });
                            }
                        }
                    }
                }
            }
            v.sort_unstable_by(|&a, &b| self.index.arena.cmp_bags(a, b));
            self.subedges.push(Self::materialise(&self.index, &v));
            self.subedge_ids.push(v);
        }
        Ok(())
    }

    fn ensure(&mut self, i: usize) -> Result<(), LimitExceeded> {
        while self.bag_ids.len() <= i {
            let lvl = self.bag_ids.len();
            self.ensure_subedges(lvl)?;
            let elements = self.subedge_ids[lvl].clone();
            let ids =
                soft::soft_bag_ids_from_elements(&mut self.index, &elements, self.k, &self.limits)?;
            self.bags.push(Self::materialise(&self.index, &ids));
            self.bag_ids.push(ids);
        }
        Ok(())
    }

    /// Iterates until `Soft^{i+1} = Soft^i` (Lemma 6 guarantees
    /// convergence within `3·max(|V|,|E|)` steps) or `max_iters` levels.
    /// Returns the fixpoint level.
    pub fn fixpoint(&mut self, max_iters: usize) -> Result<usize, LimitExceeded> {
        let bound = max_iters.min(3 * self.h.num_vertices().max(self.h.num_edges()) + 1);
        let mut i = 0;
        loop {
            self.ensure(i + 1)?;
            if self.bags[i] == self.bags[i + 1] {
                return Ok(i);
            }
            i += 1;
            if i >= bound {
                return Ok(i); // conservative: caller sees the last level
            }
        }
    }
}

/// Decides `shw_i(H) ≤ k` (soft hypertree width of order `i`); returns a
/// witness CTD over `Soft^i_{H,k}` on success. The CTD instance is built
/// on the hierarchy's own block index, so the components cached while
/// generating the levels are reused for the block table.
pub fn shw_i_leq(
    h: &Hypergraph,
    k: usize,
    i: usize,
    limits: &SoftLimits,
) -> Result<Option<TreeDecomposition>, LimitExceeded> {
    let mut hier = SoftHierarchy::new(h, k, limits.clone());
    let bags = hier.soft_level_ids(i)?.to_vec();
    Ok(candidate_td_ids(hier.index_mut(), &bags))
}

/// Computes `shw_i(H)` exactly (least `k` with `shw_i(H) ≤ k`).
pub fn shw_i(h: &Hypergraph, i: usize, limits: &SoftLimits) -> Result<usize, LimitExceeded> {
    for k in 1..=h.num_edges().max(1) {
        if shw_i_leq(h, k, i, limits)?.is_some() {
            return Ok(k);
        }
    }
    unreachable!("shw_i(H) <= hw(H) <= |E(H)|")
}

/// Decides `ghw(H) ≤ k` via the fixpoint of the soft hierarchy
/// (Theorem 7: `shw_∞ = ghw`). Exponential-ish; intended for small
/// hypergraphs (tests, the `hierarchy` experiment binary).
pub fn ghw_leq_via_fixpoint(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
) -> Result<Option<TreeDecomposition>, LimitExceeded> {
    let mut hier = SoftHierarchy::new(h, k, limits.clone());
    let lvl = hier.fixpoint(usize::MAX)?;
    let bags = hier.soft_level_ids(lvl)?.to_vec();
    Ok(candidate_td_ids(hier.index_mut(), &bags))
}

/// Computes `ghw(H)` exactly via the fixpoint characterisation.
pub fn ghw(h: &Hypergraph, limits: &SoftLimits) -> Result<usize, LimitExceeded> {
    for k in 1..=h.num_edges().max(1) {
        if ghw_leq_via_fixpoint(h, k, limits)?.is_some() {
            return Ok(k);
        }
    }
    unreachable!("ghw(H) <= |E(H)|")
}

/// A witness for `bag ∈ Soft^i_{H,k}`: the chosen `λ1 ⊆ E^(i)` (by value,
/// since `E^(i)` elements are subedges without stable ids) and the
/// component union `⋃C` of the `[λ2]`-component side.
#[derive(Clone, Debug)]
pub struct SoftIWitness {
    /// The subedges forming `λ1`.
    pub lambda1: Vec<BitSet>,
    /// `⋃C` for the witnessing `[λ2]`-component `C`.
    pub component_union: BitSet,
}

/// Membership check `bag ∈ Soft^i_{H,k}` that materialises only `E^(i)`
/// and the component-union side — usable on hypergraphs where the full
/// `Soft^i` would be too large (e.g. `H'3` at `i = 1`).
pub fn soft_i_witness(
    h: &Hypergraph,
    k: usize,
    i: usize,
    bag: &BitSet,
    limits: &SoftLimits,
) -> Result<Option<SoftIWitness>, LimitExceeded> {
    let mut hier = SoftHierarchy::new(h, k, limits.clone());
    let subedges = hier.subedge_level(i)?.to_vec();
    let u_side = soft::component_unions(h, k, limits)?;
    for u in &u_side {
        if !bag.is_subset(u) {
            continue;
        }
        // Candidates: subedges whose inside-U part sits within the bag.
        // Only the inside-U projection matters for the intersection with
        // ⋃C, so deduplicate by projection and keep maximal ones.
        let mut projections: Vec<(BitSet, BitSet)> = Vec::new(); // (proj, witness subedge)
        for e in &subedges {
            let inside = e.intersection(u);
            if inside.is_empty() || !inside.is_subset(bag) {
                continue;
            }
            if projections.iter().any(|(p, _)| inside.is_subset(p)) {
                continue;
            }
            projections.retain(|(p, _)| !p.is_subset(&inside));
            projections.push((inside, e.clone()));
        }
        if let Some(choice) = cover_with(bag, &projections, k) {
            return Ok(Some(SoftIWitness {
                lambda1: choice,
                component_union: u.clone(),
            }));
        }
    }
    Ok(None)
}

/// Set-cover of `bag` by at most `k` projections; returns the witness
/// subedges.
fn cover_with(bag: &BitSet, cands: &[(BitSet, BitSet)], k: usize) -> Option<Vec<BitSet>> {
    fn rec(
        uncovered: &BitSet,
        cands: &[(BitSet, BitSet)],
        k: usize,
        chosen: &mut Vec<BitSet>,
    ) -> bool {
        let Some(pivot) = uncovered.first() else {
            return true;
        };
        if k == 0 {
            return false;
        }
        for (proj, witness) in cands {
            if proj.contains(pivot) {
                let rest = uncovered.difference(proj);
                chosen.push(witness.clone());
                if rec(&rest, cands, k - 1, chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    let mut chosen = Vec::with_capacity(k);
    if rec(bag, cands, k, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;

    fn limits() -> SoftLimits {
        SoftLimits::default()
    }

    #[test]
    fn lemma3_monotonicity_on_h2() {
        // E^(i) ⊆ E^(i+1) ⊆ Soft^i and Soft^i ⊆ Soft^{i+1} (Lemma 3).
        let h = named::h2();
        let mut hier = SoftHierarchy::new(&h, 2, limits());
        let e0 = hier.subedge_level(0).unwrap().to_vec();
        let e1 = hier.subedge_level(1).unwrap().to_vec();
        let s0 = hier.soft_level(0).unwrap().to_vec();
        let s1 = hier.soft_level(1).unwrap().to_vec();
        for e in &e0 {
            assert!(e1.contains(e), "E0 ⊆ E1");
        }
        for e in &e1 {
            assert!(s1.contains(e), "E1 ⊆ Soft1");
        }
        for b in &s0 {
            assert!(s1.contains(b), "Soft0 ⊆ Soft1");
        }
    }

    #[test]
    fn level_zero_matches_definition_3() {
        let h = named::h2();
        let mut hier = SoftHierarchy::new(&h, 2, limits());
        let s0 = hier.soft_level(0).unwrap().to_vec();
        let direct = crate::soft::soft_bags(&h, 2);
        assert_eq!(s0, direct);
    }

    #[test]
    fn fixpoint_reaches_ghw_on_h2() {
        // ghw(H2) = 2 (Example 1); fixpoint of Soft^i at k=2 must accept,
        // and at k=1 must reject.
        let h = named::h2();
        assert!(ghw_leq_via_fixpoint(&h, 2, &limits()).unwrap().is_some());
        assert!(ghw_leq_via_fixpoint(&h, 1, &limits()).unwrap().is_none());
        assert_eq!(ghw(&h, &limits()).unwrap(), 2);
    }

    #[test]
    fn shw_i_between_ghw_and_shw() {
        let h = named::h2();
        let s0 = shw_i(&h, 0, &limits()).unwrap();
        let s1 = shw_i(&h, 1, &limits()).unwrap();
        let g = ghw(&h, &limits()).unwrap();
        assert!(g <= s1 && s1 <= s0, "ghw {g} <= shw1 {s1} <= shw0 {s0}");
        assert_eq!(s0, 2); // Example 1
    }

    #[test]
    fn witness_matches_materialised_membership() {
        let h = named::cycle(5);
        let mut hier = SoftHierarchy::new(&h, 2, limits());
        let s1 = hier.soft_level(1).unwrap().to_vec();
        for bag in s1.iter().take(40) {
            let w = soft_i_witness(&h, 2, 1, bag, &limits()).unwrap();
            assert!(w.is_some(), "bag {bag:?} must have a level-1 witness");
            let w = w.unwrap();
            let mut union = h.empty_vertex_set();
            for e in &w.lambda1 {
                union.union_with(e);
            }
            union.intersect_with(&w.component_union);
            assert_eq!(&union, bag, "witness must reconstruct the bag");
            assert!(w.lambda1.len() <= 2);
        }
    }

    #[test]
    fn witness_rejects_non_members() {
        let h = named::h2();
        // {1,5} is in no Soft^0 or Soft^1 bag at k=1: 1 and 5 never share
        // an edge and subedge intersections only shrink edges.
        let bag = h.vset(&["1", "5"]);
        assert!(soft_i_witness(&h, 1, 1, &bag, &limits()).unwrap().is_none());
    }

    #[test]
    fn fixpoint_terminates_quickly_on_small_graphs() {
        let h = named::cycle(4);
        let mut hier = SoftHierarchy::new(&h, 2, limits());
        let lvl = hier.fixpoint(usize::MAX).unwrap();
        assert!(lvl <= 3 * 4 + 1);
    }
}
