//! # softhw-core
//!
//! The paper's primary contribution: soft hypertree decompositions and
//! soft hypertree width, computed through candidate tree decompositions
//! (CTDs), plus the constrained/preference-guided decomposition framework
//! and the classical baselines it is compared against.
//!
//! Module map (paper section in parentheses):
//! - [`td`], [`ghd`]: (generalised) hypertree decompositions and checks (§2)
//! - [`ctd`]: blocks, bases, Algorithm 1 on the worklist DP engine (§3)
//! - [`cache`]: cross-query decomposition cache (structural-hash keyed
//!   instance + width-decision memoisation)
//! - [`spec`]: the unified [`SolveSpec`] request surface consumed by
//!   [`cache::DecompCache::solve`] — the front door over every
//!   (class × exactness × budget × reduction) corner
//! - [`soft`]: the candidate bag set `Soft_{H,k}` (§4, Def. 3)
//! - [`soft_iter`]: the iterated hierarchy `Soft^i`, `shw_i`, ghw as the
//!   fixpoint (§5)
//! - [`shw`]: the shw solver (§4, Thm. 1)
//! - [`sweep`]: the incremental width-sweep engine (one instance grown
//!   across `k` instead of a cold build per width)
//! - [`hw`]: det-k-decomp-style hypertree width baseline (§2)
//! - [`cover`]: (connected) edge covers (§6, ConCov)
//! - [`ctd_opt`]: Algorithm 2 — constraints and preferences over CTDs,
//!   top-n enumeration, random sampling (§6)
//! - [`constraints`]: ConCov / ShallowCyc / PartClust / cost evaluators (§6)
//! - [`games`]: (institutional) robber & marshals games (App. A.1)
//! - [`budget`]: cooperative deadline/cancellation budgets threaded
//!   through every long-running solver path

#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod constraints;
pub mod cover;
pub mod ctd;
pub mod ctd_opt;
pub mod error;
pub mod games;
pub mod ghd;
pub mod hw;
pub mod reduce_solve;
pub mod shw;
pub mod soft;
pub mod soft_iter;
pub mod spec;
pub mod sweep;
pub mod td;

pub use budget::Budget;
pub use cache::DecompCache;
pub use ctd::{candidate_td, CtdInstance};
pub use error::DecompError;
pub use sweep::IncrementalSweep;

/// Enumerates all subsets of `pool` with size between 1 and `k`.
/// Re-exported helper shared by the cover searches.
pub(crate) fn bitset_subsets(pool: &[usize], k: usize, f: impl FnMut(&[usize])) {
    softhw_hypergraph::bitset::for_each_subset_up_to_k(pool, k, f)
}

/// Shared exact-width sweep: the least `k ≤ max_width` accepted by `leq`,
/// with its witness. Used by the cold and cached `shw`/`hw` entry
/// points, which all rely on `width ≤ |E(H)|` for totality.
pub(crate) fn width_sweep<T>(
    max_width: usize,
    mut leq: impl FnMut(usize) -> Option<T>,
) -> (usize, T) {
    for k in 1..=max_width.max(1) {
        if let Some(t) = leq(k) {
            return (k, t);
        }
    }
    unreachable!("every width measure here is at most |E(H)|")
}
pub use ghd::Ghd;
pub use soft::{soft_bags, SoftLimits};
pub use spec::{SolveClass, SolveSpec, Solved};
pub use td::{FrameError, TdError, TreeDecomposition};
