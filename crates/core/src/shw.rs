//! Soft hypertree width (Definition 4): `shw(H)` is the least `k` such
//! that a candidate tree decomposition for `Soft_{H,k}` exists.
//!
//! By Theorem 1 deciding `shw(H) ≤ k` for fixed `k` is polynomial (even
//! LogCFL); this module combines the `Soft_{H,k}` generator with
//! Algorithm 1. A witness "soft hypertree decomposition" is a CompNF tree
//! decomposition all of whose bags are `Soft_{H,k}` elements; each bag is
//! coverable by at most `k` edges (Theorem 2), so the result can always be
//! upgraded to a GHD of width ≤ k via [`crate::ghd::Ghd::from_td`].
//!
//! The free functions here are the **cold** solvers. Long-lived callers
//! should prefer [`crate::cache::DecompCache::solve`] with a
//! [`crate::spec::SolveSpec`] (`SolveSpec::shw()` /
//! `SolveSpec::shw_leq(k)`), which adds cross-query memoisation, budget
//! plumbing, and the reduce-before-solve pipeline behind one entry
//! point.

use crate::budget::Budget;
use crate::ctd::CtdInstance;
use crate::error::DecompError;
use crate::soft::{soft_bag_ids, soft_bag_ids_budgeted, LimitExceeded, SoftLimits};
use crate::td::TreeDecomposition;
use softhw_hypergraph::{BlockIndex, Hypergraph};

/// Decides `shw(H) ≤ k`; on success returns a soft hypertree
/// decomposition of width `k`.
pub fn shw_leq(h: &Hypergraph, k: usize) -> Option<TreeDecomposition> {
    shw_leq_with(h, k, &SoftLimits::default()).expect("default limits exceeded")
}

/// Like [`shw_leq`] but with explicit generation limits.
pub fn shw_leq_with(
    h: &Hypergraph,
    k: usize,
    limits: &SoftLimits,
) -> Result<Option<TreeDecomposition>, LimitExceeded> {
    let mut index = BlockIndex::new(h);
    shw_leq_indexed(&mut index, k, limits)
}

/// Decides `shw(H) ≤ k` against a shared [`BlockIndex`]: candidate
/// generation and block construction reuse every component, block, and
/// component union the index has already cached — from smaller widths or
/// other solvers on the same hypergraph.
pub fn shw_leq_indexed(
    index: &mut BlockIndex,
    k: usize,
    limits: &SoftLimits,
) -> Result<Option<TreeDecomposition>, LimitExceeded> {
    let bags = soft_bag_ids(index, k, limits)?;
    Ok(CtdInstance::build(index, &bags).decide())
}

/// [`shw_leq_indexed`] with a cooperative [`Budget`] threaded through
/// candidate generation, instance build, and the satisfaction DP. The
/// shared index stays valid on abort (it only ever holds fully-computed
/// cache entries), so a retry reuses everything already cached.
pub fn shw_leq_indexed_budgeted(
    index: &mut BlockIndex,
    k: usize,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<Option<TreeDecomposition>, DecompError> {
    let bags = soft_bag_ids_budgeted(index, k, limits, budget)?;
    CtdInstance::build_budgeted(index, &bags, budget)?.try_decide_budgeted(budget)
}

/// Computes `shw(H)` exactly: the least `k` admitting a soft HD, together
/// with a witness decomposition. The input is first simplified by the
/// width-preserving reduction pipeline ([`softhw_hypergraph::reduce`]);
/// each reduced piece is swept with [`shw_raw`] and the piece witnesses
/// are lifted back to one decomposition of the original hypergraph
/// ([`crate::reduce_solve`]). Irreducible connected inputs take the raw
/// sweep unchanged.
pub fn shw(h: &Hypergraph) -> (usize, TreeDecomposition) {
    crate::reduce_solve::shw(h)
}

/// The raw exact sweep, with no reduction preprocessing. The sweep runs
/// on the incremental engine ([`crate::sweep::IncrementalSweep`]): one
/// [`crate::CtdInstance`] is grown across the widths — `Soft_{H,k}` is
/// monotone in `k`, so each width appends its new candidate bags and
/// re-enqueues only the blocks whose candidate sets changed, instead of
/// rebuilding the instance and re-running the satisfaction DP from
/// scratch. Decisions per width are identical to cold runs; see
/// [`shw_rebuild`] for the retained rebuild-per-width reference the
/// engine is benchmarked against. Panics on disconnected inputs (no
/// single sweep witness exists); [`shw`] handles those by splitting.
pub fn shw_raw(h: &Hypergraph) -> (usize, TreeDecomposition) {
    let mut index = BlockIndex::new(h);
    let mut sweep = crate::sweep::IncrementalSweep::new();
    crate::width_sweep(h.num_edges(), |k| {
        sweep
            .decide_leq(&mut index, k, &SoftLimits::default())
            .expect("default limits exceeded")
    })
}

/// [`shw_raw`] with a cooperative [`Budget`]: the incremental sweep
/// checks the budget per width stage (and, inside each stage, per
/// enumeration node / comp-group scan / DP wave). On abort the sweep
/// state is local and dropped, so nothing is poisoned.
pub fn shw_raw_budgeted(
    h: &Hypergraph,
    limits: &SoftLimits,
    budget: &Budget,
) -> Result<(usize, TreeDecomposition), DecompError> {
    let mut index = BlockIndex::new(h);
    let mut sweep = crate::sweep::IncrementalSweep::new();
    for k in 1..=h.num_edges().max(1) {
        if let Some(td) = sweep.decide_leq_budgeted(&mut index, k, limits, budget)? {
            return Ok((k, td));
        }
    }
    // Unreachable for valid inputs: shw(H) ≤ |E(H)| always accepts.
    Err(DecompError::internal(
        "width sweep exhausted |E(H)| without accepting",
    ))
}

/// The pre-incremental sweep, retained as the reference and benchmark
/// baseline (`sweep_cold` in `bench_baseline`): one shared [`BlockIndex`]
/// across widths — candidate generation hits its caches — but the
/// [`crate::CtdInstance`] is rebuilt and the satisfaction DP re-run from
/// scratch at every width. Same width and a valid witness, like
/// [`shw`]; the two may pick different (equally valid) witness
/// decompositions.
pub fn shw_rebuild(h: &Hypergraph) -> (usize, TreeDecomposition) {
    let mut index = BlockIndex::new(h);
    crate::width_sweep(h.num_edges(), |k| {
        shw_leq_indexed(&mut index, k, &SoftLimits::default()).expect("default limits exceeded")
    })
}

/// [`shw`] against a cross-query [`crate::cache::DecompCache`]: repeated
/// sweeps over structurally identical hypergraphs (a service answering
/// many queries over one schema, `table1`-style harness runs) reuse the
/// cached index, per-width decisions, and witnesses instead of
/// regenerating them per call.
pub fn shw_cached(
    cache: &mut crate::cache::DecompCache,
    h: &Hypergraph,
) -> (usize, TreeDecomposition) {
    use crate::spec::{Solved, SolveSpec};
    match cache.solve(h, &SolveSpec::shw()) {
        Ok(Solved::ShwWidth(w, td)) => (w, td),
        Ok(_) => panic!("SolveSpec::shw yielded a mismatched variant"),
        Err(e) => panic!("shw under default limits: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;
    use softhw_hypergraph::named;
    use softhw_hypergraph::random::{random_hypergraph, RandomConfig};

    #[test]
    fn acyclic_has_shw_1() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b", "c"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        let (w, td) = shw(&h);
        assert_eq!(w, 1);
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn h2_has_shw_2() {
        // Example 1's headline: shw(H2) = 2 < hw(H2) = 3.
        let h = named::h2();
        assert!(shw_leq(&h, 1).is_none());
        let td = shw_leq(&h, 2).expect("shw(H2) = 2");
        assert_eq!(td.validate(&h), Ok(()));
        assert!(td.is_comp_nf(&h));
        // Every bag is coverable by <= 2 edges, yielding a width-2 GHD.
        let ghd = crate::ghd::Ghd::from_td(&h, td, 2).unwrap();
        assert!(ghd.validate(&h).is_ok());
        assert_eq!(ghd.width(), 2);
    }

    #[test]
    fn cycles_shw_2() {
        for n in [4, 5, 6, 8] {
            let h = named::cycle(n);
            assert!(shw_leq(&h, 1).is_none(), "C{n}");
            assert!(shw_leq(&h, 2).is_some(), "C{n}");
        }
    }

    #[test]
    fn incremental_sweep_agrees_with_rebuild_sweep() {
        for h in [named::h2(), named::cycle(8), named::triangle_star(3)] {
            let (w_inc, td_inc) = shw(&h);
            let (w_reb, td_reb) = shw_rebuild(&h);
            assert_eq!(w_inc, w_reb);
            assert_eq!(td_inc.validate(&h), Ok(()));
            assert_eq!(td_reb.validate(&h), Ok(()));
            assert!(td_inc.is_comp_nf(&h));
        }
    }

    #[test]
    fn shw_never_exceeds_hw_on_random_graphs() {
        // Theorem 2: ghw <= shw <= hw. Randomised check of the right half.
        for seed in 0..8 {
            let h = random_hypergraph(
                &RandomConfig {
                    num_vertices: 7,
                    num_edges: 7,
                    min_arity: 2,
                    max_arity: 3,
                    connect: true,
                },
                seed,
            );
            let (hw_val, _) = hw::hw(&h);
            let (shw_val, td) = shw(&h);
            assert!(
                shw_val <= hw_val,
                "seed {seed}: shw {shw_val} > hw {hw_val}"
            );
            assert_eq!(td.validate(&h), Ok(()));
        }
    }

    #[test]
    fn soft_td_bags_have_small_covers() {
        // Every Soft_{H,k} bag is a subset of a union of k edges
        // (Theorem 2's ghw <= shw argument); check on the witness.
        let h = named::h2();
        let td = shw_leq(&h, 2).unwrap();
        for bag in td.bags() {
            assert!(crate::cover::find_cover(&h, bag, 2).is_some());
        }
    }
}
