//! The unified solve specification: one request surface over the
//! width solvers.
//!
//! Historically every (class × exactness × budget × reduction) corner
//! grew its own entry point — `shw`, `try_shw`, `try_shw_budgeted`,
//! `shw_leq`, `shw_leq_budgeted`, and the `hw` twins of each. Callers
//! (the service dispatch, the CLI, benches) had to pick the right one
//! of ten methods and thread limits/budgets positionally. A
//! [`SolveSpec`] names those axes once:
//!
//! - **class** — which width measure ([`SolveClass::Shw`] or
//!   [`SolveClass::Hw`]);
//! - **bound** — `None` for the exact width (a sweep), `Some(k)` for
//!   the `width ≤ k` decision;
//! - **budget** — a cooperative [`Budget`]; [`Budget::unlimited`] costs
//!   nothing and never trips;
//! - **reduce** — whether exact solves may run the reduce-before-solve
//!   pipeline (bounded decisions have a fixed per-class strategy; see
//!   [`SolveSpec::reduce`]);
//! - **limits** — the [`SoftLimits`] generation guards for `shw` paths.
//!
//! [`crate::cache::DecompCache::solve`] is the single entry point that
//! consumes a spec; the legacy methods survive as thin wrappers over it
//! (see the deprecation table in the cache module docs).

use crate::budget::Budget;
use crate::ghd::Ghd;
use crate::soft::SoftLimits;
use crate::td::TreeDecomposition;

/// Which width measure a [`SolveSpec`] asks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveClass {
    /// Soft hypertree width (the paper's `shw`, Thm. 1 solver).
    Shw,
    /// Classical hypertree width (the det-k-decomp-style baseline).
    Hw,
}

/// A complete description of one width query: class, exact-vs-bounded,
/// budget, reduction policy, and generation limits. Construct with
/// [`SolveSpec::shw`] / [`SolveSpec::shw_leq`] / [`SolveSpec::hw`] /
/// [`SolveSpec::hw_leq`] and refine with the builder methods.
#[derive(Clone, Debug)]
pub struct SolveSpec {
    /// The width measure to compute or decide.
    pub class: SolveClass,
    /// `None`: compute the exact width (and a witness). `Some(k)`:
    /// decide `width ≤ k` (with a witness on yes).
    pub bound: Option<usize>,
    /// Cooperative deadline/cancellation budget. The unlimited budget
    /// allocates nothing and solves on the never-checking fast path.
    pub budget: Budget,
    /// Whether **exact** solves run the reduce-before-solve pipeline
    /// (simplify, solve pieces, lift). Bounded decisions keep their
    /// class's fixed strategy regardless of this flag — `shw ≤ k`
    /// decides on the raw input, `hw ≤ k` reduces internally — so a
    /// decision answered warm and one answered cold are bit-identical.
    pub reduce: bool,
    /// Generation guards for the `Soft_{H,k}` candidate bag sets; only
    /// `shw` paths consult them.
    pub limits: SoftLimits,
}

impl SolveSpec {
    /// Exact `shw` under default limits, unlimited budget, reduction on.
    pub fn shw() -> Self {
        SolveSpec {
            class: SolveClass::Shw,
            bound: None,
            budget: Budget::unlimited(),
            reduce: true,
            limits: SoftLimits::default(),
        }
    }

    /// The `shw ≤ k` decision under default limits, unlimited budget.
    pub fn shw_leq(k: usize) -> Self {
        SolveSpec {
            bound: Some(k),
            ..SolveSpec::shw()
        }
    }

    /// Exact `hw`, unlimited budget, reduction on.
    pub fn hw() -> Self {
        SolveSpec {
            class: SolveClass::Hw,
            ..SolveSpec::shw()
        }
    }

    /// The `hw ≤ k` decision, unlimited budget.
    pub fn hw_leq(k: usize) -> Self {
        SolveSpec {
            bound: Some(k),
            ..SolveSpec::hw()
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the reduction policy for exact solves (see
    /// [`SolveSpec::reduce`]).
    pub fn with_reduce(mut self, reduce: bool) -> Self {
        self.reduce = reduce;
        self
    }

    /// Replaces the generation limits.
    pub fn with_limits(mut self, limits: SoftLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// The answer to a [`SolveSpec`], one variant per (class, exactness)
/// corner. Decisions carry `Some(witness)` on yes, `None` on no.
#[derive(Clone, Debug)]
pub enum Solved {
    /// Exact `shw`: the width and a witness decomposition.
    ShwWidth(usize, TreeDecomposition),
    /// `shw ≤ k`: a witness iff the answer is yes.
    ShwDecision(Option<TreeDecomposition>),
    /// Exact `hw`: the width and a witness HD.
    HwWidth(usize, Ghd),
    /// `hw ≤ k`: a witness iff the answer is yes.
    HwDecision(Option<Ghd>),
}

impl Solved {
    /// The exact width, when this is an exact answer.
    pub fn width(&self) -> Option<usize> {
        match self {
            Solved::ShwWidth(w, _) | Solved::HwWidth(w, _) => Some(*w),
            _ => None,
        }
    }

    /// The decision bit, when this is a decision answer.
    pub fn accepted(&self) -> Option<bool> {
        match self {
            Solved::ShwDecision(w) => Some(w.is_some()),
            Solved::HwDecision(w) => Some(w.is_some()),
            _ => None,
        }
    }
}
