//! The non-panicking error type of the decomposition entry points.
//!
//! A long-lived decomposition service cannot tolerate the library
//! `panic!`ing on internal disagreement: one malformed or adversarial
//! request must degrade to an error response (or a cold recompute), not
//! kill the process and every in-flight request with it. [`DecompError`]
//! is the single `Result` error threaded through the `cache`, `sweep`,
//! and `ctd` entry points:
//!
//! - [`DecompError::Limit`] — candidate-bag generation tripped a
//!   [`SoftLimits`](crate::soft::SoftLimits) guard (combinatorial
//!   blow-up; the request is too wide for the configured budget);
//! - [`DecompError::Shards`] — parallel enumeration outgrew the sharded
//!   id space (`MAX_BAGS_PER_SHARD` / `MAX_SHARDS`); before this variant
//!   the high bits of a [`BagId`](softhw_hypergraph::BagId) silently
//!   wrapped into another shard's range;
//! - [`DecompError::Internal`] — an internal invariant (a satisfied
//!   block without a basis, a cache bucket that vanished) failed to
//!   hold. In debug builds these still `debug_assert!`; in release the
//!   caller degrades — [`DecompCache`](crate::cache::DecompCache) evicts
//!   the inconsistent entry and recomputes cold;
//! - [`DecompError::DeadlineExceeded`] / [`DecompError::Canceled`] — a
//!   [`Budget`](crate::budget::Budget) tripped. These are *not*
//!   internal: nothing is inconsistent, the caller ran out of time (or
//!   asked to stop), so caches must not evict or memoise — they leave
//!   state untouched or `reset()` it to a cold-rebuildable seed and
//!   propagate.

use crate::soft::LimitExceeded;
use softhw_hypergraph::ShardError;
use std::fmt;

/// Why a decomposition entry point could not produce an answer. See the
/// module docs for the recovery contract per variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// Candidate-bag generation exceeded its [`crate::soft::SoftLimits`].
    Limit(LimitExceeded),
    /// Parallel enumeration outgrew the sharded [`BagId`] space.
    ///
    /// [`BagId`]: softhw_hypergraph::BagId
    Shards(ShardError),
    /// An internal invariant did not hold; the computation was abandoned
    /// rather than continued on inconsistent state.
    Internal {
        /// Which invariant failed.
        what: &'static str,
    },
    /// A [`Budget`](crate::budget::Budget) deadline or work cap expired
    /// before the computation finished.
    DeadlineExceeded,
    /// The computation was cooperatively cancelled through its
    /// [`Budget`](crate::budget::Budget)'s cancel flag.
    Canceled,
}

impl DecompError {
    /// Shorthand constructor for invariant failures.
    pub fn internal(what: &'static str) -> Self {
        DecompError::Internal { what }
    }

    /// True iff this error reports an internal inconsistency (the
    /// variant caches recover from by evicting and recomputing cold).
    pub fn is_internal(&self) -> bool {
        matches!(self, DecompError::Internal { .. })
    }

    /// True iff this error came from a tripped
    /// [`Budget`](crate::budget::Budget) (deadline, work cap, or
    /// cancellation). Budget errors are transient: nothing is wrong with
    /// the input or the cached state, so callers reset to a
    /// cold-rebuildable state and propagate rather than evict or
    /// memoise.
    pub fn is_budget(&self) -> bool {
        matches!(self, DecompError::DeadlineExceeded | DecompError::Canceled)
    }
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::Limit(e) => write!(f, "{e}"),
            DecompError::Shards(e) => write!(f, "{e}"),
            DecompError::Internal { what } => {
                write!(f, "internal decomposition invariant failed: {what}")
            }
            DecompError::DeadlineExceeded => {
                write!(f, "deadline or work budget exceeded before completion")
            }
            DecompError::Canceled => write!(f, "computation canceled"),
        }
    }
}

impl std::error::Error for DecompError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecompError::Limit(e) => Some(e),
            DecompError::Shards(e) => Some(e),
            DecompError::Internal { .. }
            | DecompError::DeadlineExceeded
            | DecompError::Canceled => None,
        }
    }
}

impl From<LimitExceeded> for DecompError {
    fn from(e: LimitExceeded) -> Self {
        DecompError::Limit(e)
    }
}

impl From<ShardError> for DecompError {
    fn from(e: ShardError) -> Self {
        DecompError::Shards(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let l: DecompError = LimitExceeded { what: "max_bags" }.into();
        assert!(l.to_string().contains("max_bags"));
        assert!(!l.is_internal());
        let s: DecompError = ShardError::NoShards.into();
        assert!(matches!(s, DecompError::Shards(_)));
        let i = DecompError::internal("basis missing");
        assert!(i.is_internal());
        assert!(i.to_string().contains("basis missing"));
        for budget_err in [DecompError::DeadlineExceeded, DecompError::Canceled] {
            assert!(budget_err.is_budget());
            assert!(!budget_err.is_internal(), "budget errors must not evict");
        }
        assert!(!i.is_budget());
        assert!(!l.is_budget());
    }
}
