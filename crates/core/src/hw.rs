//! Hypertree width via a det-k-decomp-style top-down search
//! (Gottlob & Samer \[22\]; the paper's baseline notion from Section 2).
//!
//! The solver searches for an HD of width ≤ k in the Gottlob–Leone–
//! Scarcello normal form: every node `u` handling a sub-problem
//! `(comp, conn)` — an edge component `comp` and the connector vertices
//! `conn` shared with the parent — carries the bag
//! `χ_u = ⋃λ_u ∩ (conn ∪ V(comp))` for some `λ_u` of at most `k` edges
//! with `conn ⊆ ⋃λ_u`, and its children handle the `[χ_u]`-components of
//! `comp`, which are strictly smaller. Restricting bags to this normal
//! form is complete for HDs (\[19\], Lemma 5.2-style normalisation; also
//! re-derived as Equation (1)'s ancestor in Section 4 of the paper), and
//! it enforces the special condition by construction: vertices of `⋃λ_u`
//! outside `conn ∪ V(comp)` never occur in the subtree below `u`.
//!
//! Sub-problems are memoised on `(comp, conn)`; separator enumeration is
//! cover-guided (branch on the lowest uncovered connector vertex) with a
//! free extension phase, which prunes the `|E|^k` space drastically.
//!
//! The free functions here are the **cold** solvers. Long-lived callers
//! should prefer [`crate::cache::DecompCache::solve`] with a
//! [`crate::spec::SolveSpec`] (`SolveSpec::hw()` / `SolveSpec::hw_leq(k)`)
//! for cross-query memoisation and budget plumbing behind one entry
//! point.

use crate::budget::Budget;
use crate::error::DecompError;
use crate::ghd::Ghd;
use crate::td::TreeDecomposition;
use softhw_hypergraph::{BagArena, BagId, BitSet, FxHashMap, Hypergraph};

struct Solver<'h> {
    h: &'h Hypergraph,
    k: usize,
    /// Interner for component edge sets (edge universe).
    comp_arena: BagArena,
    /// Interner for connector vertex sets (vertex universe).
    conn_arena: BagArena,
    /// `(component id, connector id)` → witness separator. Keying the
    /// memo on interned ids makes probes a u64 hash + two u32 compares
    /// instead of re-hashing and re-comparing two boxed bitsets.
    memo: FxHashMap<(BagId, BagId), Option<Vec<usize>>>,
    /// Cooperative budget, ticked once per sub-problem. The boolean
    /// recursion cannot carry a `Result`, so a trip is latched in
    /// `tripped` and `decompose` answers `false` from then on — the
    /// top-level entry point checks the latch and converts it to the
    /// budget error before any (now meaningless) reject can escape.
    budget: Budget,
    /// First budget error observed, if any.
    tripped: Option<DecompError>,
}

impl<'h> Solver<'h> {
    fn new(h: &'h Hypergraph, k: usize, budget: Budget) -> Self {
        Solver {
            h,
            k,
            comp_arena: BagArena::new(h.num_edges()),
            conn_arena: BagArena::new(h.num_vertices()),
            memo: FxHashMap::default(),
            budget,
            tripped: None,
        }
    }

    fn key(&mut self, comp: &BitSet, conn: &BitSet) -> (BagId, BagId) {
        (self.comp_arena.intern(comp), self.conn_arena.intern(conn))
    }

    /// Does the sub-problem `(comp, conn)` admit an HD subtree of width ≤ k?
    fn decompose(&mut self, comp: &BitSet, conn: &BitSet) -> bool {
        if self.tripped.is_some() {
            return false; // unwind: the top level reports the trip
        }
        if let Err(e) = self.budget.tick() {
            self.tripped = Some(e);
            return false;
        }
        if comp.is_empty() && conn.is_empty() {
            return true;
        }
        let key = self.key(comp, conn);
        if let Some(r) = self.memo.get(&key) {
            return r.is_some();
        }
        // Candidate separator edges: those touching the sub-problem. Edges
        // disjoint from conn ∪ V(comp) contribute nothing to the bag and
        // can be dropped from any separator without harm.
        let mut scope = self.h.union_of_edge_set(comp);
        scope.union_with(conn);
        let pool: Vec<usize> = (0..self.h.num_edges())
            .filter(|&e| self.h.edge(e).intersects(&scope))
            .collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
        let found = self.search(&pool, comp, conn, &scope, conn.clone(), &mut chosen, 0);
        if self.tripped.is_some() {
            // A trip mid-search makes `found` meaningless: do not poison
            // the memo with it (the solver is discarded on the error
            // path anyway, but the invariant is cheap to keep).
            return false;
        }
        let entry = if found { Some(chosen) } else { None };
        self.memo.insert(key, entry);
        found
    }

    /// Cover phase: branch on the lowest connector vertex not yet covered
    /// by the current separator; once covered, try the separator and then
    /// extend it with further pool edges.
    #[allow(clippy::too_many_arguments)]
    fn search(
        &mut self,
        pool: &[usize],
        comp: &BitSet,
        conn: &BitSet,
        scope: &BitSet,
        uncovered: BitSet,
        chosen: &mut Vec<usize>,
        ext_from: usize,
    ) -> bool {
        if let Some(pivot) = uncovered.first() {
            if chosen.len() == self.k {
                return false;
            }
            for &e in pool {
                if !self.h.edge(e).contains(pivot) || chosen.contains(&e) {
                    continue;
                }
                let rest = uncovered.difference(self.h.edge(e));
                chosen.push(e);
                // Extension ordering restarts at 0: splitter edges may have
                // smaller pool indices than cover edges.
                if self.search(pool, comp, conn, scope, rest, chosen, 0) {
                    return true;
                }
                chosen.pop();
            }
            return false;
        }
        // Connector covered: try the current separator.
        if !chosen.is_empty() && self.try_separator(comp, conn, scope, chosen) {
            return true;
        }
        // Extension phase: grow with pool edges at positions >= ext_from
        // (canonical ascending order avoids re-enumerating extensions).
        if chosen.len() < self.k {
            for pos in ext_from..pool.len() {
                let e = pool[pos];
                if chosen.contains(&e) {
                    continue;
                }
                chosen.push(e);
                if self.search(
                    pool,
                    comp,
                    conn,
                    scope,
                    BitSet::empty(self.h.num_vertices()),
                    chosen,
                    pos + 1,
                ) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }

    /// Evaluates one candidate separator: derive the bag, split the
    /// component, require strict progress, and recurse.
    fn try_separator(
        &mut self,
        comp: &BitSet,
        _conn: &BitSet,
        scope: &BitSet,
        lambda: &[usize],
    ) -> bool {
        let mut chi = self.h.union_of_edges(lambda.iter().copied());
        chi.intersect_with(scope);
        let comp_size = comp.len();
        let subcomps = self.h.edge_components_within(&chi, comp);
        for sc in &subcomps {
            if sc.len() >= comp_size {
                return false; // no progress; normal form guarantees some λ splits
            }
        }
        for sc in &subcomps {
            let sub_conn = self.h.union_of_edge_set(sc).intersection(&chi);
            if !self.decompose(sc, &sub_conn) {
                return false;
            }
        }
        true
    }

    /// Rebuilds the HD from the memo table after a successful run.
    fn build(&self, comp: &BitSet, conn: &BitSet, td: &mut Option<Ghd>, parent: Option<usize>) {
        // Every sub-problem reached here was decomposed, so both keys are
        // already interned; lookup needs no `&mut self`.
        let key = (
            self.comp_arena
                .lookup_words(comp.blocks())
                .expect("memoised component"),
            self.conn_arena
                .lookup_words(conn.blocks())
                .expect("memoised connector"),
        );
        let lambda = self
            .memo
            .get(&key)
            .expect("memoised")
            .clone()
            .expect("successful sub-problem");
        let mut scope = self.h.union_of_edge_set(comp);
        scope.union_with(conn);
        let mut chi = self.h.union_of_edges(lambda.iter().copied());
        chi.intersect_with(&scope);
        let node = match (td.as_mut(), parent) {
            (None, _) => {
                *td = Some(Ghd {
                    td: TreeDecomposition::new(chi.clone()),
                    lambdas: vec![lambda.clone()],
                });
                0
            }
            (Some(g), Some(p)) => {
                let n = g.td.add_child(p, chi.clone());
                g.lambdas.push(lambda.clone());
                n
            }
            (Some(g), None) => {
                // extra connected component: chain under the root
                let n = g.td.add_child(g.td.root(), chi.clone());
                g.lambdas.push(lambda.clone());
                n
            }
        };
        for sc in self.h.edge_components_within(&chi, comp) {
            let sub_conn = self.h.union_of_edge_set(&sc).intersection(&chi);
            self.build(&sc, &sub_conn, td, Some(node));
        }
    }
}

/// Decides `hw(H) ≤ k`; on success returns a witness HD (validated
/// special condition included in debug builds).
pub fn hw_leq(h: &Hypergraph, k: usize) -> Option<Ghd> {
    hw_leq_budgeted(h, k, &Budget::unlimited()).expect("the unlimited budget cannot trip")
}

/// [`hw_leq`] with a cooperative [`Budget`], ticked once per sub-problem
/// of the top-down search. On a trip the solver (memo included) is
/// dropped and the budget error propagates; a retry restarts the search
/// cold.
pub fn hw_leq_budgeted(
    h: &Hypergraph,
    k: usize,
    budget: &Budget,
) -> Result<Option<Ghd>, DecompError> {
    if h.num_edges() == 0 {
        return Ok(None);
    }
    let mut solver = Solver::new(h, k, budget.clone());
    let comps = h.edge_components(&h.empty_vertex_set());
    let empty = h.empty_vertex_set();
    for comp in &comps {
        let ok = solver.decompose(comp, &empty);
        if let Some(e) = solver.tripped.take() {
            return Err(e);
        }
        if !ok {
            return Ok(None);
        }
    }
    let mut ghd: Option<Ghd> = None;
    for comp in &comps {
        solver.build(comp, &empty, &mut ghd, None);
    }
    let ghd = ghd.expect("at least one component");
    debug_assert!(ghd.is_hd(h), "constructed decomposition must be an HD");
    Ok(Some(ghd))
}

/// Computes `hw(H)` exactly, returning the width and a witness HD. The
/// input is first simplified by the width-preserving reduction pipeline
/// ([`softhw_hypergraph::reduce`]); each piece is swept with [`hw_raw`]
/// and the piece witnesses lifted back ([`crate::reduce_solve`]).
pub fn hw(h: &Hypergraph) -> (usize, Ghd) {
    crate::reduce_solve::hw(h)
}

/// The raw exact sweep, with no reduction preprocessing.
pub fn hw_raw(h: &Hypergraph) -> (usize, Ghd) {
    crate::width_sweep(h.num_edges(), |k| hw_leq(h, k))
}

/// [`hw_raw`] with a cooperative [`Budget`] shared across all widths of
/// the sweep.
pub fn hw_raw_budgeted(h: &Hypergraph, budget: &Budget) -> Result<(usize, Ghd), DecompError> {
    for k in 1..=h.num_edges().max(1) {
        if let Some(g) = hw_leq_budgeted(h, k, budget)? {
            return Ok((k, g));
        }
    }
    Err(DecompError::internal(
        "width sweep exhausted |E(H)| without accepting",
    ))
}

/// [`hw`] against a cross-query [`crate::cache::DecompCache`]: per-width
/// decisions and witnesses are memoised by structural hash, so repeated
/// baseline sweeps over the same schema skip the search entirely.
pub fn hw_cached(cache: &mut crate::cache::DecompCache, h: &Hypergraph) -> (usize, Ghd) {
    use crate::spec::{Solved, SolveSpec};
    match cache.solve(h, &SolveSpec::hw()) {
        Ok(Solved::HwWidth(w, g)) => (w, g),
        Ok(_) => panic!("SolveSpec::hw yielded a mismatched variant"),
        Err(e) => panic!("hw: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;

    #[test]
    fn acyclic_has_hw_1() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b", "c"]);
        b.edge("e2", &["c", "d"]);
        b.edge("e3", &["d", "e"]);
        let h = b.build();
        let (w, ghd) = hw(&h);
        assert_eq!(w, 1);
        assert!(ghd.is_hd(&h));
    }

    #[test]
    fn cycles_have_hw_2() {
        for n in [4, 5, 6, 7, 8] {
            let h = named::cycle(n);
            assert!(hw_leq(&h, 1).is_none(), "C{n} is cyclic");
            let g = hw_leq(&h, 2).unwrap_or_else(|| panic!("hw(C{n}) = 2"));
            assert!(g.is_hd(&h));
            assert_eq!(g.width(), 2);
        }
    }

    #[test]
    fn h2_has_hw_3() {
        // Example 1: hw(H2) = 3 (while ghw = shw = 2).
        let h = named::h2();
        assert!(hw_leq(&h, 2).is_none(), "hw(H2) > 2");
        let g = hw_leq(&h, 3).expect("hw(H2) = 3");
        assert!(g.is_hd(&h));
    }

    #[test]
    fn triangle_star_hw_2() {
        let h = named::triangle_star(3);
        let (w, g) = hw(&h);
        assert_eq!(w, 2);
        assert!(g.is_hd(&h));
    }

    #[test]
    fn grid_3x3_hw() {
        let h = named::grid(3, 3);
        let (w, g) = hw(&h);
        assert!(g.is_hd(&h));
        // The 3x3 grid graph is cyclic (hw >= 2) and its treewidth-3 bags
        // are coverable by pairs of its binary edges (hw <= 3).
        assert!((2..=3).contains(&w), "hw(grid3x3) = {w}");
    }

    #[test]
    fn single_edge() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e", &["x", "y", "z"]);
        let h = b.build();
        let (w, g) = hw(&h);
        assert_eq!(w, 1);
        assert_eq!(g.td.num_nodes(), 1);
    }

    #[test]
    fn disconnected_components_each_decomposed() {
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        let (w, g) = hw(&h);
        assert_eq!(w, 1);
        assert_eq!(g.td.num_nodes(), 2);
        assert!(g.validate(&h).is_ok());
    }
}
