//! Edge covers of bags.
//!
//! A bag `B` in a (G)HD must satisfy `B ⊆ ⋃λ` for a set `λ` of at most `k`
//! hyperedges. This module provides the cover searches used throughout the
//! framework: plain covers (for width computation) and *connected* covers
//! (the `ConCov` constraint of Section 6, which rules out Cartesian
//! products in the bag joins).

use softhw_hypergraph::{BitSet, Hypergraph};

/// Finds some edge cover of `bag` using at most `k` edges, if one exists.
///
/// Branch-and-bound: repeatedly branch on the uncovered vertex with the
/// fewest incident edges. Returns edge ids in ascending order of
/// selection. Delegates to [`Hypergraph::find_edge_cover`], so there is
/// exactly one plain cover search in the workspace (the per-bag cover
/// *cache* with production consumers lives in
/// `softhw_query::CostContext`, keyed by interned bag id).
pub fn find_cover(h: &Hypergraph, bag: &BitSet, k: usize) -> Option<Vec<usize>> {
    h.find_edge_cover(bag, k)
}

/// The minimum number of edges needed to cover `bag` (the integral edge
/// cover number `ρ(B)`), or `None` if some vertex of `bag` lies in no edge.
pub fn min_cover_size(h: &Hypergraph, bag: &BitSet) -> Option<usize> {
    for v in bag.iter() {
        if h.incident_edges(v).is_empty() {
            return None;
        }
    }
    let mut k = 1;
    loop {
        if find_cover(h, bag, k).is_some() {
            return Some(k);
        }
        k += 1;
        if k > bag.len().max(1) {
            return None; // unreachable with the check above; defensive
        }
    }
}

/// True iff the given edges form a connected subhypergraph: the
/// intersection graph of the edges (adjacency = sharing a vertex) is
/// connected. The empty set counts as disconnected, a singleton as
/// connected.
pub fn edges_connected(h: &Hypergraph, edges: &[usize]) -> bool {
    if edges.is_empty() {
        return false;
    }
    let n = edges.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 0;
    while let Some(i) = stack.pop() {
        count += 1;
        for (j, sj) in seen.iter_mut().enumerate() {
            if !*sj && h.edge(edges[i]).intersects(h.edge(edges[j])) {
                *sj = true;
                stack.push(j);
            }
        }
    }
    count == n
}

/// Finds a *connected* edge cover of `bag` with at most `k` edges
/// (the `ConCov` witness), if one exists.
///
/// Unlike plain covers, a connected cover may need redundant edges (e.g.
/// on `C5` a width-2 bag of four cycle vertices is only coverable
/// connectedly with 3 edges), so the search enumerates connected edge
/// subsets by growth rather than by cover-minimality: start from each edge
/// intersecting the bag, repeatedly add an edge sharing a vertex with the
/// current selection, and test coverage at every step.
pub fn find_connected_cover(h: &Hypergraph, bag: &BitSet, k: usize) -> Option<Vec<usize>> {
    if bag.is_empty() || k == 0 {
        return None;
    }
    // The pool is *all* edges: an edge disjoint from the bag can still be
    // the connector making an otherwise-disconnected cover connected.
    let pool: Vec<usize> = (0..h.num_edges()).collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);

    fn rec(
        h: &Hypergraph,
        bag: &BitSet,
        pool: &[usize],
        k: usize,
        chosen: &mut Vec<usize>,
        covered: &BitSet,
        reach: &BitSet, // vertices of chosen edges
    ) -> bool {
        if bag.is_subset(covered) {
            return true;
        }
        if chosen.len() == k {
            return false;
        }
        // To avoid enumerating each connected set once per spanning-tree
        // order, only extend with pool edges larger than the minimum id we
        // could otherwise have started from — growth-with-restart: extend
        // with any edge intersecting `reach`; dedup is traded for
        // simplicity, the pools here are small (bags touch few edges).
        for &e in pool {
            if chosen.contains(&e) {
                continue;
            }
            if !chosen.is_empty() && !h.edge(e).intersects(reach) {
                continue; // keep the selection connected at every step
            }
            let mut covered2 = covered.clone();
            covered2.union_with(&h.edge(e).intersection(bag));
            let mut reach2 = reach.clone();
            reach2.union_with(h.edge(e));
            chosen.push(e);
            if rec(h, bag, pool, k, chosen, &covered2, &reach2) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    let covered = BitSet::empty(h.num_vertices());
    let reach = BitSet::empty(h.num_vertices());
    if rec(h, bag, &pool, k, &mut chosen, &covered, &reach) {
        debug_assert!(edges_connected(h, &chosen));
        Some(chosen)
    } else {
        None
    }
}

/// Smallest `k` such that a connected cover of `bag` with `k` edges exists,
/// searched up to `max_k` inclusive.
pub fn min_connected_cover_size(h: &Hypergraph, bag: &BitSet, max_k: usize) -> Option<usize> {
    (1..=max_k).find(|&k| find_connected_cover(h, bag, k).is_some())
}

/// Finds a connected cover whose union is *exactly* the bag (`⋃λ = B`,
/// not merely `⊇ B`). This is the ConCov notion of the paper's prototype:
/// candidate bags are generated as cover unions, and a bag counts as
/// ConCov iff one of its *generating* covers is connected. Since the
/// union must equal the bag, only edges fully inside the bag qualify.
pub fn find_exact_connected_cover(h: &Hypergraph, bag: &BitSet, k: usize) -> Option<Vec<usize>> {
    if bag.is_empty() || k == 0 {
        return None;
    }
    let pool: Vec<usize> = (0..h.num_edges())
        .filter(|&e| h.edge(e).is_subset(bag))
        .collect();
    let mut found: Option<Vec<usize>> = None;
    crate::bitset_subsets(&pool, k, |subset| {
        if found.is_some() {
            return;
        }
        let union = h.union_of_edges(subset.iter().copied());
        if &union == bag && edges_connected(h, subset) {
            found = Some(subset.to_vec());
        }
    });
    found
}

/// Like [`find_connected_cover`] but additionally requiring the cover to
/// be *non-redundant*: every chosen edge must contribute at least one bag
/// vertex not covered by the others. A strictly stronger variant kept for
/// ablation studies.
pub fn find_connected_cover_nonredundant(
    h: &Hypergraph,
    bag: &BitSet,
    k: usize,
) -> Option<Vec<usize>> {
    if bag.is_empty() || k == 0 {
        return None;
    }
    let pool: Vec<usize> = (0..h.num_edges())
        .filter(|&e| h.edge(e).intersects(bag))
        .collect();
    // Enumerate subsets of the pool up to size k and test the three
    // conditions; pools are small (edges touching one bag).
    let mut found: Option<Vec<usize>> = None;
    crate::bitset_subsets(&pool, k, |subset| {
        if found.is_some() {
            return;
        }
        let union = h.union_of_edges(subset.iter().copied());
        if !bag.is_subset(&union) || !edges_connected(h, subset) {
            return;
        }
        let nonredundant = subset.iter().all(|&e| {
            let mut others = BitSet::empty(h.num_vertices());
            for &f in subset {
                if f != e {
                    others.union_with(h.edge(f));
                }
            }
            let mut own = h.edge(e).intersection(bag);
            own.difference_with(&others);
            !own.is_empty()
        });
        if nonredundant {
            found = Some(subset.to_vec());
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_hypergraph::named;

    #[test]
    fn simple_cover() {
        let h = named::cycle(4);
        let bag = h.vset(&["v0", "v1", "v2"]);
        let cover = find_cover(h.edges().first().map(|_| &h).unwrap(), &bag, 2).unwrap();
        assert_eq!(cover.len(), 2);
        let mut u = h.union_of_edges(cover.iter().copied());
        u.intersect_with(&bag);
        assert_eq!(u, bag);
    }

    #[test]
    fn cover_requires_enough_edges() {
        let h = named::cycle(6);
        // all six vertices need 3 edges
        let bag = h.all_vertices();
        assert!(find_cover(&h, &bag, 2).is_none());
        assert!(find_cover(&h, &bag, 3).is_some());
        assert_eq!(min_cover_size(&h, &bag), Some(3));
    }

    #[test]
    fn c5_connected_cover_needs_three_edges() {
        // Section 6: ConCov-hw(C5) = 3 although hw(C5) = 2. The width-2
        // bag {v0,v1,v2,v3} is covered by e0={v0,v1} and e2={v2,v3},
        // but those two edges are disjoint; the connected cover adds e1.
        let h = named::cycle(5);
        let bag = h.vset(&["v0", "v1", "v2", "v3"]);
        assert!(find_cover(&h, &bag, 2).is_some());
        assert!(find_connected_cover(&h, &bag, 2).is_none());
        let cc = find_connected_cover(&h, &bag, 3).unwrap();
        assert!(edges_connected(&h, &cc));
        assert_eq!(min_connected_cover_size(&h, &bag, 4), Some(3));
    }

    #[test]
    fn connected_cover_single_edge() {
        let h = named::h2();
        let bag = h.vset(&["1", "2", "a"]);
        let cc = find_connected_cover(&h, &bag, 1).unwrap();
        assert_eq!(cc.len(), 1);
    }

    #[test]
    fn edges_connected_cases() {
        let h = named::cycle(6);
        assert!(edges_connected(&h, &[0]));
        assert!(edges_connected(&h, &[0, 1]));
        assert!(!edges_connected(&h, &[0, 3]));
        assert!(!edges_connected(&h, &[]));
        assert!(edges_connected(&h, &[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn min_cover_of_empty_bag_is_trivial() {
        let h = named::cycle(4);
        let empty = h.empty_vertex_set();
        assert_eq!(find_cover(&h, &empty, 0), Some(vec![]));
    }
}

#[cfg(test)]
mod nonredundant_tests {
    use super::*;
    use softhw_hypergraph::named;

    #[test]
    fn nonredundant_accepts_contributing_covers() {
        // C5 bag {v0,v1,v2}: e0={v0,v1} contributes v0, e1={v1,v2}
        // contributes v2 — connected and non-redundant.
        let h = named::cycle(5);
        let bag = h.vset(&["v0", "v1", "v2"]);
        assert!(find_connected_cover_nonredundant(&h, &bag, 2).is_some());
    }

    #[test]
    fn nonredundant_is_strictly_stronger_than_concov() {
        // C5 bag {v0,v2,v3}: a *connected* 3-cover exists (e2,e3,e4) but
        // e3 = {v3,v4} contributes no fresh bag vertex, so the
        // non-redundant variant rejects it. This is exactly where the
        // paper's formal ConCov and its prototype's counting diverge.
        let h = named::cycle(5);
        let bag = h.vset(&["v0", "v2", "v3"]);
        assert!(find_connected_cover(&h, &bag, 3).is_some());
        assert!(find_connected_cover_nonredundant(&h, &bag, 3).is_none());
    }

    #[test]
    fn connector_edges_outside_bag_are_usable() {
        // Path a-b-c-d: bag {a, d}: the connected cover must route
        // through e2 = {b,c}, which is disjoint from the bag.
        let mut b = softhw_hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["b", "c"]);
        b.edge("e3", &["c", "d"]);
        let h = b.build();
        let bag = h.vset(&["a", "d"]);
        assert!(find_connected_cover(&h, &bag, 2).is_none());
        let cc = find_connected_cover(&h, &bag, 3).unwrap();
        assert_eq!(cc.len(), 3);
        assert!(find_connected_cover_nonredundant(&h, &bag, 3).is_none());
    }
}
