//! Rooted tree decompositions and their validity checks
//! (Section 2 of the paper), including the component normal form
//! (CompNF, Definition 2) that the CandidateTD machinery relies on.

use softhw_hypergraph::arena::words_iter;
use softhw_hypergraph::{ArenaSnapshot, BitSet, Hypergraph};
use std::fmt;

/// A rooted tree decomposition `(T, B)` of a hypergraph.
///
/// Nodes are dense indices; `bags[u]` is `B(u)`. The root is node
/// `self.root`. Construction goes through [`TreeDecomposition::new`] and
/// [`TreeDecomposition::add_child`]; validity is *not* enforced during
/// construction — call [`TreeDecomposition::validate`].
#[derive(Clone)]
pub struct TreeDecomposition {
    bags: Vec<BitSet>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

/// Violations reported by [`TreeDecomposition::validate`] and
/// [`crate::ghd::Ghd::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdError {
    /// Some hyperedge is not contained in any bag.
    EdgeNotCovered {
        /// The offending edge id.
        edge: usize,
    },
    /// The nodes whose bags contain `vertex` do not induce a subtree.
    ConnectednessViolated {
        /// The offending vertex id.
        vertex: usize,
    },
    /// A vertex of the decomposition's bags is outside the hypergraph.
    BagOutOfRange {
        /// The offending node id.
        node: usize,
    },
    /// `B(u) ⊄ ⋃λ(u)` for some GHD node.
    NotCovered {
        /// The offending node id.
        node: usize,
    },
    /// The special condition `B(T_u) ∩ ⋃λ(u) ⊆ B(u)` fails at `node`.
    SpecialConditionViolated {
        /// The offending node id.
        node: usize,
    },
}

impl fmt::Display for TdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdError::EdgeNotCovered { edge } => write!(f, "edge {edge} not covered by any bag"),
            TdError::ConnectednessViolated { vertex } => {
                write!(f, "occurrences of vertex {vertex} do not form a subtree")
            }
            TdError::BagOutOfRange { node } => write!(f, "bag of node {node} out of range"),
            TdError::NotCovered { node } => write!(f, "bag of node {node} not covered by λ"),
            TdError::SpecialConditionViolated { node } => {
                write!(f, "special condition violated at node {node}")
            }
        }
    }
}

impl std::error::Error for TdError {}

/// Why a flat bag-frame (arena snapshot + `(parent, bag-id)` node
/// table) could not be reconstructed into a [`TreeDecomposition`]. The
/// wire protocol and the persistent store both frame witnesses this
/// way; both reject corrupt frames through this error instead of
/// panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What was malformed.
    pub message: String,
}

impl FrameError {
    fn new(message: impl Into<String>) -> Self {
        FrameError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FrameError {}

impl TreeDecomposition {
    /// Creates a decomposition consisting of a single root node.
    pub fn new(root_bag: BitSet) -> Self {
        TreeDecomposition {
            bags: vec![root_bag],
            parent: vec![None],
            children: vec![Vec::new()],
            root: 0,
        }
    }

    /// Approximate heap footprint in bytes: bag bitsets plus the tree
    /// arrays. Feeds the service's `bytes_per_cached_schema` stat.
    pub fn approx_bytes(&self) -> u64 {
        let bags: usize = self
            .bags
            .iter()
            .map(|b| b.num_blocks() * 8 + std::mem::size_of::<BitSet>())
            .sum();
        let tree = self.parent.capacity() * std::mem::size_of::<Option<usize>>()
            + self
                .children
                .iter()
                .map(|c| c.capacity() * 8 + std::mem::size_of::<Vec<usize>>())
                .sum::<usize>();
        (bags + tree + std::mem::size_of::<Self>()) as u64
    }

    /// Inserts vertex `v` into the bag of node `u`.
    ///
    /// The caller is responsible for keeping the decomposition valid;
    /// the witness-lifting replay of `reduce_solve` uses this to restore
    /// peeled vertices into the node that owns their host edge (safe
    /// there because a peeled vertex occurs in no other bag).
    pub fn grow_bag(&mut self, u: usize, v: usize) {
        self.bags[u].insert(v);
    }

    /// Appends a new node with the given bag under `parent`; returns its id.
    pub fn add_child(&mut self, parent: usize, bag: BitSet) -> usize {
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Reconstructs a decomposition from its flat framing: deduplicated
    /// bag words (an [`ArenaSnapshot`] over `universe` vertices) plus a
    /// `(parent, bag-id)` node table in preorder (node 0 is the root and
    /// has no parent). This is the shared decode path of the wire
    /// protocol's `TdFrame` and the persistent store's witness records;
    /// every malformed shape — bag or parent references out of range,
    /// wrong preorder, bag words with bits beyond the universe — is an
    /// error, never a panic, because both callers feed it bytes from
    /// outside the process.
    pub fn from_bag_frame(
        universe: usize,
        snapshot: &ArenaSnapshot,
        nodes: &[(Option<u32>, u32)],
    ) -> Result<TreeDecomposition, FrameError> {
        let num_bags = snapshot.len();
        if snapshot.universe != universe || snapshot.words_per_bag() != universe.div_ceil(64).max(1)
        {
            return Err(FrameError::new("snapshot width disagrees with universe"));
        }
        // Bits in the last word's slack (universe..words*64) would decode
        // into nonexistent vertices; reject them explicitly.
        let tail_bits = universe % 64;
        let last_word_mask = if universe == 0 {
            0
        } else if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        let bag = |id: u32| -> Result<BitSet, FrameError> {
            if (id as usize) >= num_bags {
                return Err(FrameError::new(format!("bag id {id} out of range")));
            }
            let words = snapshot.words(id as usize);
            let Some((last, _)) = words.split_last() else {
                return Err(FrameError::new("empty bag words"));
            };
            if last & !last_word_mask != 0 {
                return Err(FrameError::new("bag words exceed the universe"));
            }
            Ok(BitSet::from_iter(universe, words_iter(words)))
        };
        let (first, rest) = nodes
            .split_first()
            .ok_or_else(|| FrameError::new("decomposition frame with no nodes"))?;
        if first.0.is_some() {
            return Err(FrameError::new("root node has a parent"));
        }
        let mut td = TreeDecomposition::new(bag(first.1)?);
        for (i, &(parent, b)) in rest.iter().enumerate() {
            let node = i + 1;
            let Some(p) = parent else {
                return Err(FrameError::new("non-root node without parent"));
            };
            if (p as usize) >= node {
                return Err(FrameError::new("node table is not in preorder"));
            }
            td.add_child(p as usize, bag(b)?);
        }
        Ok(td)
    }

    /// Root node id.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Bag of node `u`.
    #[inline]
    pub fn bag(&self, u: usize) -> &BitSet {
        &self.bags[u]
    }

    /// All bags, indexed by node id.
    #[inline]
    pub fn bags(&self) -> &[BitSet] {
        &self.bags
    }

    /// Children of node `u`.
    #[inline]
    pub fn children(&self, u: usize) -> &[usize] {
        &self.children[u]
    }

    /// Parent of node `u` (None for the root).
    #[inline]
    pub fn parent(&self, u: usize) -> Option<usize> {
        self.parent[u]
    }

    /// Nodes in preorder (root first, children in order). Sibling order
    /// is preserved so that framing a decomposition as a preorder node
    /// table ([`TreeDecomposition::from_bag_frame`]'s input) and
    /// rebuilding it is *idempotent* — the persistent store and the
    /// wire protocol both rely on a decode → re-encode roundtrip being
    /// byte-stable.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u].iter().rev().copied());
        }
        out
    }

    /// Nodes in postorder (children before parents).
    pub fn postorder(&self) -> Vec<usize> {
        let mut pre = self.preorder();
        pre.reverse();
        pre
    }

    /// `B(T_u)`: union of the bags in the subtree rooted at `u`.
    pub fn subtree_vertices(&self, u: usize) -> BitSet {
        let mut acc = self.bags[u].clone();
        let mut stack: Vec<usize> = self.children[u].clone();
        while let Some(v) = stack.pop() {
            acc.union_with(&self.bags[v]);
            stack.extend(self.children[v].iter().copied());
        }
        acc
    }

    /// Depth of node `u` (root has depth 0).
    pub fn depth(&self, u: usize) -> usize {
        let mut d = 0;
        let mut cur = u;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Tree-decomposition width: `max |B(u)| - 1`.
    pub fn tw_width(&self) -> usize {
        self.bags.iter().map(BitSet::len).max().unwrap_or(1) - 1
    }

    /// Validates the two tree-decomposition conditions against `h`:
    /// every edge is inside some bag, and every vertex's occurrences form a
    /// non-empty connected subtree.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), TdError> {
        for (u, bag) in self.bags.iter().enumerate() {
            if bag.num_blocks() != h.empty_vertex_set().num_blocks() {
                return Err(TdError::BagOutOfRange { node: u });
            }
        }
        'edges: for e in 0..h.num_edges() {
            for bag in &self.bags {
                if h.edge(e).is_subset(bag) {
                    continue 'edges;
                }
            }
            return Err(TdError::EdgeNotCovered { edge: e });
        }
        for v in 0..h.num_vertices() {
            let occurrences: Vec<usize> = (0..self.num_nodes())
                .filter(|&u| self.bags[u].contains(v))
                .collect();
            if occurrences.is_empty() {
                return Err(TdError::ConnectednessViolated { vertex: v });
            }
            // BFS through tree edges restricted to occurrence nodes.
            let mut seen = vec![false; self.num_nodes()];
            let mut stack = vec![occurrences[0]];
            seen[occurrences[0]] = true;
            let mut count = 0usize;
            while let Some(u) = stack.pop() {
                count += 1;
                let mut nbrs: Vec<usize> = self.children[u].clone();
                if let Some(p) = self.parent[u] {
                    nbrs.push(p);
                }
                for n in nbrs {
                    if !seen[n] && self.bags[n].contains(v) {
                        seen[n] = true;
                        stack.push(n);
                    }
                }
            }
            if count != occurrences.len() {
                return Err(TdError::ConnectednessViolated { vertex: v });
            }
        }
        Ok(())
    }

    /// Checks the component normal form (Definition 2): for each node `u`
    /// and child `c` there is exactly one `[B(u)]`-component `C_c` with
    /// `B(T_c) = ⋃C_c ∪ (B(u) ∩ B(c))`.
    pub fn is_comp_nf(&self, h: &Hypergraph) -> bool {
        for u in self.preorder() {
            let comps = h.edge_components(&self.bags[u]);
            for &c in &self.children[u] {
                let subtree = self.subtree_vertices(c);
                let interface = self.bags[u].intersection(&self.bags[c]);
                let matching = comps
                    .iter()
                    .filter(|comp| {
                        let mut target = h.union_of_edge_set(comp);
                        target.union_with(&interface);
                        target == subtree
                    })
                    .count();
                if matching != 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Pretty-prints the decomposition with vertex names from `h`.
    pub fn render(&self, h: &Hypergraph) -> String {
        let mut out = String::new();
        fn rec(td: &TreeDecomposition, h: &Hypergraph, u: usize, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&h.render_vertex_set(td.bag(u)));
            out.push('\n');
            for &c in td.children(u) {
                rec(td, h, c, depth + 1, out);
            }
        }
        rec(self, h, self.root, 0, &mut out);
        out
    }
}

impl fmt::Debug for TreeDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TreeDecomposition({} nodes, root {})",
            self.num_nodes(),
            self.root
        )
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use softhw_hypergraph::named;

    /// The soft HD of H2 from Figure 1b of the paper.
    pub(crate) fn h2_soft_td() -> (Hypergraph, TreeDecomposition) {
        let h = named::h2();
        let mut td = TreeDecomposition::new(h.vset(&["2", "6", "7", "a", "b"]));
        let mid = td.add_child(td.root(), h.vset(&["2", "5", "6", "a", "b"]));
        td.add_child(mid, h.vset(&["2", "3", "4", "5", "a", "b"]));
        td.add_child(td.root(), h.vset(&["1", "2", "7", "8", "a", "b"]));
        (h, td)
    }

    #[test]
    fn figure_1b_is_valid_td() {
        let (h, td) = h2_soft_td();
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn figure_1b_is_comp_nf() {
        let (h, td) = h2_soft_td();
        assert!(td.is_comp_nf(&h));
    }

    #[test]
    fn missing_edge_detected() {
        let h = named::h2();
        let td = TreeDecomposition::new(h.vset(&["1", "2", "a"]));
        assert!(matches!(
            td.validate(&h),
            Err(TdError::EdgeNotCovered { .. })
        ));
    }

    #[test]
    fn connectedness_violation_detected() {
        let h = named::cycle(4);
        // v0 appears in two bags separated by a bag without it
        let mut td = TreeDecomposition::new(h.vset(&["v0", "v1"]));
        let mid = td.add_child(td.root(), h.vset(&["v1", "v2"]));
        td.add_child(mid, h.vset(&["v2", "v3", "v0"]));
        assert!(matches!(
            td.validate(&h),
            Err(TdError::ConnectednessViolated { .. })
        ));
    }

    #[test]
    fn orders_and_subtrees() {
        let (_, td) = h2_soft_td();
        let pre = td.preorder();
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], td.root());
        let post = td.postorder();
        assert_eq!(post.last().copied(), Some(td.root()));
        let all = td.subtree_vertices(td.root());
        assert_eq!(all.len(), 10);
        assert_eq!(td.depth(pre[0]), 0);
    }

    #[test]
    fn tw_width_counts_largest_bag() {
        let (_, td) = h2_soft_td();
        assert_eq!(td.tw_width(), 5); // largest bag has 6 vertices
    }

    /// Frames `td` as (snapshot, preorder node table) the way the wire
    /// and the store do.
    fn bag_frame(
        td: &TreeDecomposition,
        universe: usize,
    ) -> (ArenaSnapshot, Vec<(Option<u32>, u32)>) {
        let order = td.preorder();
        let mut new_id = vec![u32::MAX; td.num_nodes()];
        for (i, &u) in order.iter().enumerate() {
            new_id[u] = i as u32;
        }
        let mut arena = softhw_hypergraph::BagArena::new(universe);
        let nodes = order
            .iter()
            .map(|&u| {
                let bag = arena.intern(td.bag(u));
                (td.parent(u).map(|p| new_id[p]), bag.0)
            })
            .collect();
        (arena.snapshot(), nodes)
    }

    #[test]
    fn bag_frame_roundtrip_is_idempotent() {
        // frame → rebuild → frame again must be byte-identical: the
        // store serves frames that were decoded and re-encoded, and the
        // service's byte-identity contract depends on stability.
        let (h, td) = h2_soft_td();
        let universe = h.num_vertices();
        let (snap1, nodes1) = bag_frame(&td, universe);
        let back = TreeDecomposition::from_bag_frame(universe, &snap1, &nodes1).unwrap();
        assert_eq!(back.validate(&h), Ok(()));
        // The rebuilt tree's preorder is the identity, so re-framing
        // reproduces the exact same snapshot and node table.
        assert_eq!(back.preorder(), (0..back.num_nodes()).collect::<Vec<_>>());
        let (snap2, nodes2) = bag_frame(&back, universe);
        assert_eq!(snap1, snap2);
        assert_eq!(nodes1, nodes2);
    }

    #[test]
    fn corrupt_bag_frames_are_rejected() {
        let (h, td) = h2_soft_td();
        let universe = h.num_vertices();
        let (snap, nodes) = bag_frame(&td, universe);
        // Root with a parent.
        let mut bad = nodes.clone();
        bad[0].0 = Some(0);
        assert!(TreeDecomposition::from_bag_frame(universe, &snap, &bad).is_err());
        // Parent out of preorder range.
        let mut bad = nodes.clone();
        bad[1].0 = Some(99);
        assert!(TreeDecomposition::from_bag_frame(universe, &snap, &bad).is_err());
        // Bag id out of range.
        let mut bad = nodes.clone();
        bad[0].1 = u32::MAX;
        assert!(TreeDecomposition::from_bag_frame(universe, &snap, &bad).is_err());
        // Slack bits beyond the universe.
        let mut bad_snap = snap.clone();
        bad_snap.storage[0] |= 1 << 63;
        assert!(TreeDecomposition::from_bag_frame(universe, &bad_snap, &nodes).is_err());
        // Empty node table.
        assert!(TreeDecomposition::from_bag_frame(universe, &snap, &[]).is_err());
    }
}
