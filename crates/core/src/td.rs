//! Rooted tree decompositions and their validity checks
//! (Section 2 of the paper), including the component normal form
//! (CompNF, Definition 2) that the CandidateTD machinery relies on.

use softhw_hypergraph::{BitSet, Hypergraph};
use std::fmt;

/// A rooted tree decomposition `(T, B)` of a hypergraph.
///
/// Nodes are dense indices; `bags[u]` is `B(u)`. The root is node
/// `self.root`. Construction goes through [`TreeDecomposition::new`] and
/// [`TreeDecomposition::add_child`]; validity is *not* enforced during
/// construction — call [`TreeDecomposition::validate`].
#[derive(Clone)]
pub struct TreeDecomposition {
    bags: Vec<BitSet>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

/// Violations reported by [`TreeDecomposition::validate`] and
/// [`crate::ghd::Ghd::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdError {
    /// Some hyperedge is not contained in any bag.
    EdgeNotCovered {
        /// The offending edge id.
        edge: usize,
    },
    /// The nodes whose bags contain `vertex` do not induce a subtree.
    ConnectednessViolated {
        /// The offending vertex id.
        vertex: usize,
    },
    /// A vertex of the decomposition's bags is outside the hypergraph.
    BagOutOfRange {
        /// The offending node id.
        node: usize,
    },
    /// `B(u) ⊄ ⋃λ(u)` for some GHD node.
    NotCovered {
        /// The offending node id.
        node: usize,
    },
    /// The special condition `B(T_u) ∩ ⋃λ(u) ⊆ B(u)` fails at `node`.
    SpecialConditionViolated {
        /// The offending node id.
        node: usize,
    },
}

impl fmt::Display for TdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdError::EdgeNotCovered { edge } => write!(f, "edge {edge} not covered by any bag"),
            TdError::ConnectednessViolated { vertex } => {
                write!(f, "occurrences of vertex {vertex} do not form a subtree")
            }
            TdError::BagOutOfRange { node } => write!(f, "bag of node {node} out of range"),
            TdError::NotCovered { node } => write!(f, "bag of node {node} not covered by λ"),
            TdError::SpecialConditionViolated { node } => {
                write!(f, "special condition violated at node {node}")
            }
        }
    }
}

impl std::error::Error for TdError {}

impl TreeDecomposition {
    /// Creates a decomposition consisting of a single root node.
    pub fn new(root_bag: BitSet) -> Self {
        TreeDecomposition {
            bags: vec![root_bag],
            parent: vec![None],
            children: vec![Vec::new()],
            root: 0,
        }
    }

    /// Appends a new node with the given bag under `parent`; returns its id.
    pub fn add_child(&mut self, parent: usize, bag: BitSet) -> usize {
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Root node id.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Bag of node `u`.
    #[inline]
    pub fn bag(&self, u: usize) -> &BitSet {
        &self.bags[u]
    }

    /// All bags, indexed by node id.
    #[inline]
    pub fn bags(&self) -> &[BitSet] {
        &self.bags
    }

    /// Children of node `u`.
    #[inline]
    pub fn children(&self, u: usize) -> &[usize] {
        &self.children[u]
    }

    /// Parent of node `u` (None for the root).
    #[inline]
    pub fn parent(&self, u: usize) -> Option<usize> {
        self.parent[u]
    }

    /// Nodes in preorder (root first).
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u].iter().copied());
        }
        out
    }

    /// Nodes in postorder (children before parents).
    pub fn postorder(&self) -> Vec<usize> {
        let mut pre = self.preorder();
        pre.reverse();
        pre
    }

    /// `B(T_u)`: union of the bags in the subtree rooted at `u`.
    pub fn subtree_vertices(&self, u: usize) -> BitSet {
        let mut acc = self.bags[u].clone();
        let mut stack: Vec<usize> = self.children[u].clone();
        while let Some(v) = stack.pop() {
            acc.union_with(&self.bags[v]);
            stack.extend(self.children[v].iter().copied());
        }
        acc
    }

    /// Depth of node `u` (root has depth 0).
    pub fn depth(&self, u: usize) -> usize {
        let mut d = 0;
        let mut cur = u;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Tree-decomposition width: `max |B(u)| - 1`.
    pub fn tw_width(&self) -> usize {
        self.bags.iter().map(BitSet::len).max().unwrap_or(1) - 1
    }

    /// Validates the two tree-decomposition conditions against `h`:
    /// every edge is inside some bag, and every vertex's occurrences form a
    /// non-empty connected subtree.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), TdError> {
        for (u, bag) in self.bags.iter().enumerate() {
            if bag.num_blocks() != h.empty_vertex_set().num_blocks() {
                return Err(TdError::BagOutOfRange { node: u });
            }
        }
        'edges: for e in 0..h.num_edges() {
            for bag in &self.bags {
                if h.edge(e).is_subset(bag) {
                    continue 'edges;
                }
            }
            return Err(TdError::EdgeNotCovered { edge: e });
        }
        for v in 0..h.num_vertices() {
            let occurrences: Vec<usize> = (0..self.num_nodes())
                .filter(|&u| self.bags[u].contains(v))
                .collect();
            if occurrences.is_empty() {
                return Err(TdError::ConnectednessViolated { vertex: v });
            }
            // BFS through tree edges restricted to occurrence nodes.
            let mut seen = vec![false; self.num_nodes()];
            let mut stack = vec![occurrences[0]];
            seen[occurrences[0]] = true;
            let mut count = 0usize;
            while let Some(u) = stack.pop() {
                count += 1;
                let mut nbrs: Vec<usize> = self.children[u].clone();
                if let Some(p) = self.parent[u] {
                    nbrs.push(p);
                }
                for n in nbrs {
                    if !seen[n] && self.bags[n].contains(v) {
                        seen[n] = true;
                        stack.push(n);
                    }
                }
            }
            if count != occurrences.len() {
                return Err(TdError::ConnectednessViolated { vertex: v });
            }
        }
        Ok(())
    }

    /// Checks the component normal form (Definition 2): for each node `u`
    /// and child `c` there is exactly one `[B(u)]`-component `C_c` with
    /// `B(T_c) = ⋃C_c ∪ (B(u) ∩ B(c))`.
    pub fn is_comp_nf(&self, h: &Hypergraph) -> bool {
        for u in self.preorder() {
            let comps = h.edge_components(&self.bags[u]);
            for &c in &self.children[u] {
                let subtree = self.subtree_vertices(c);
                let interface = self.bags[u].intersection(&self.bags[c]);
                let matching = comps
                    .iter()
                    .filter(|comp| {
                        let mut target = h.union_of_edge_set(comp);
                        target.union_with(&interface);
                        target == subtree
                    })
                    .count();
                if matching != 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Pretty-prints the decomposition with vertex names from `h`.
    pub fn render(&self, h: &Hypergraph) -> String {
        let mut out = String::new();
        fn rec(td: &TreeDecomposition, h: &Hypergraph, u: usize, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&h.render_vertex_set(td.bag(u)));
            out.push('\n');
            for &c in td.children(u) {
                rec(td, h, c, depth + 1, out);
            }
        }
        rec(self, h, self.root, 0, &mut out);
        out
    }
}

impl fmt::Debug for TreeDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TreeDecomposition({} nodes, root {})",
            self.num_nodes(),
            self.root
        )
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use softhw_hypergraph::named;

    /// The soft HD of H2 from Figure 1b of the paper.
    pub(crate) fn h2_soft_td() -> (Hypergraph, TreeDecomposition) {
        let h = named::h2();
        let mut td = TreeDecomposition::new(h.vset(&["2", "6", "7", "a", "b"]));
        let mid = td.add_child(td.root(), h.vset(&["2", "5", "6", "a", "b"]));
        td.add_child(mid, h.vset(&["2", "3", "4", "5", "a", "b"]));
        td.add_child(td.root(), h.vset(&["1", "2", "7", "8", "a", "b"]));
        (h, td)
    }

    #[test]
    fn figure_1b_is_valid_td() {
        let (h, td) = h2_soft_td();
        assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn figure_1b_is_comp_nf() {
        let (h, td) = h2_soft_td();
        assert!(td.is_comp_nf(&h));
    }

    #[test]
    fn missing_edge_detected() {
        let h = named::h2();
        let td = TreeDecomposition::new(h.vset(&["1", "2", "a"]));
        assert!(matches!(
            td.validate(&h),
            Err(TdError::EdgeNotCovered { .. })
        ));
    }

    #[test]
    fn connectedness_violation_detected() {
        let h = named::cycle(4);
        // v0 appears in two bags separated by a bag without it
        let mut td = TreeDecomposition::new(h.vset(&["v0", "v1"]));
        let mid = td.add_child(td.root(), h.vset(&["v1", "v2"]));
        td.add_child(mid, h.vset(&["v2", "v3", "v0"]));
        assert!(matches!(
            td.validate(&h),
            Err(TdError::ConnectednessViolated { .. })
        ));
    }

    #[test]
    fn orders_and_subtrees() {
        let (_, td) = h2_soft_td();
        let pre = td.preorder();
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], td.root());
        let post = td.postorder();
        assert_eq!(post.last().copied(), Some(td.root()));
        let all = td.subtree_vertices(td.root());
        assert_eq!(all.len(), 10);
        assert_eq!(td.depth(pre[0]), 0);
    }

    #[test]
    fn tw_width_counts_largest_bag() {
        let (_, td) = h2_soft_td();
        assert_eq!(td.tw_width(), 5); // largest bag has 6 vertices
    }
}
