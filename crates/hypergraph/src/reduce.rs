//! Width-preserving simplification of hypergraphs before solving.
//!
//! Exact width computation pays `|E|^k` enumeration costs on every vertex
//! and edge of the input, including the many that provably cannot affect
//! the width. Following the preprocessing step of the exact-width
//! literature (Moll, Tazari, Thurley: *Computing hypergraph width
//! measures exactly*) and the reductions det-k-decomp applies to
//! HyperBench instances, this module shrinks a hypergraph to a fixpoint
//! under three rules before any solver runs:
//!
//! 1. **Subsumed-edge removal** — an edge contained in another edge never
//!    appears in an optimal cover; word-level subset tests on the `u64`
//!    bitset rows drop it (duplicated edges keep the lowest id).
//! 2. **Degree-1 vertex peeling** — a vertex in exactly one edge is
//!    removed from it. The peel worklist is XOR-packed in the style of
//!    the cache-oblivious peeling of Belazzougui et al.: per vertex we
//!    keep only a degree counter and the XOR of incident alive edge ids,
//!    so when the degree hits 1 the accumulator *is* the host edge and
//!    the whole peel runs allocation-free over two flat `u32` arrays.
//! 3. **`[∅]`-component splitting** — the reduced edges are grouped into
//!    connected pieces that downstream solvers decompose independently
//!    (widths recombine by max).
//!
//! Every rule application is recorded in an ordered [`ReduceEvent`]
//! trace, and each event carries the edge set it removed, so a witness
//! decomposition of the reduced pieces can be lifted back to a valid
//! [`TreeDecomposition`] of the *original* hypergraph by replaying the
//! trace backwards (see `softhw-core`'s `reduce_solve`).
//!
//! Pieces are rebuilt deterministically — edges in ascending original id
//! with their original names, vertices numbered by first occurrence — so
//! a schema submitted raw and the same schema submitted already-reduced
//! produce structurally identical pieces and share solver cache entries.

use crate::bitset::BitSet;
use crate::hypergraph::{Hypergraph, HypergraphBuilder};

/// One recorded application of a reduction rule, in forward order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReduceEvent {
    /// Edge `edge` (with current vertex set `set`) was removed because
    /// `set` is contained in the current vertex set of edge `subsumer`.
    Drop {
        /// The dropped edge (original id).
        edge: usize,
        /// The alive edge whose set contained it at drop time.
        subsumer: usize,
        /// The dropped edge's vertex set at drop time.
        set: BitSet,
    },
    /// Vertex `vertex` had degree 1 and was peeled out of its single
    /// host edge `edge`.
    Peel {
        /// The peeled vertex.
        vertex: usize,
        /// Its single host edge (original id) at peel time.
        edge: usize,
        /// The host edge's vertex set immediately *before* the peel.
        host_before: BitSet,
    },
}

/// One connected component of the reduced hypergraph, rebuilt as a
/// standalone [`Hypergraph`] plus the maps back to original ids.
#[derive(Clone, Debug)]
pub struct ReducePiece {
    /// The piece itself (original edge and vertex names preserved).
    pub h: Hypergraph,
    /// `vertex_map[piece_vertex] = original_vertex`.
    pub vertex_map: Vec<usize>,
    /// `edge_map[piece_edge] = original_edge`.
    pub edge_map: Vec<usize>,
}

/// What the pipeline did, in the units the service's `STATS` rows report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Edges removed by subsumption.
    pub edges_dropped: usize,
    /// Degree-1 vertices peeled out of their host edge.
    pub vertices_peeled: usize,
    /// Connected pieces the reduced hypergraph splits into.
    pub components: usize,
}

/// The full reduction trace of one hypergraph: the ordered events, the
/// connected pieces that remain, and summary statistics.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// `|V|` of the original hypergraph.
    pub num_vertices: usize,
    /// `|E|` of the original hypergraph.
    pub num_edges: usize,
    /// Rule applications in forward order (replay backwards to lift).
    pub events: Vec<ReduceEvent>,
    /// Connected components of the reduced hypergraph, by ascending
    /// smallest original edge id.
    pub pieces: Vec<ReducePiece>,
    /// Summary counters.
    pub stats: ReduceStats,
}

impl Reduction {
    /// True iff the pipeline changed nothing: no rule fired and the
    /// input was connected (at most one piece). Callers use this to take
    /// the raw solver path byte-for-byte.
    pub fn is_trivial(&self) -> bool {
        self.events.is_empty() && self.pieces.len() <= 1
    }

    /// Approximate heap footprint in bytes: event bitsets, piece
    /// hypergraphs, and id maps. Feeds the service's
    /// `bytes_per_cached_schema` memory stat.
    pub fn approx_bytes(&self) -> u64 {
        let events: u64 = self
            .events
            .iter()
            .map(|e| {
                let set = match e {
                    ReduceEvent::Drop { set, .. } => set,
                    ReduceEvent::Peel { host_before, .. } => host_before,
                };
                (set.num_blocks() * 8 + std::mem::size_of::<ReduceEvent>()) as u64
            })
            .sum();
        let pieces: u64 = self
            .pieces
            .iter()
            .map(|p| {
                p.h.approx_bytes() + ((p.vertex_map.capacity() + p.edge_map.capacity()) * 8) as u64
            })
            .sum();
        events + pieces + std::mem::size_of::<Self>() as u64
    }
}

/// Runs the simplification pipeline on `h` to fixpoint and splits the
/// result into connected pieces. `h` itself is not modified.
pub fn reduce(h: &Hypergraph) -> Reduction {
    reduce_impl(h, true)
}

/// The pipeline with degree-1 peeling disabled: subsumed-edge removal
/// and component splitting only.
///
/// This restriction is what makes the reduction safe for *hypertree*
/// decompositions (not just tree decompositions / GHDs): a dropped edge
/// `d ⊆ f` lifts back as a leaf under `f`'s cover node whose vertices
/// all already occur there, so no ancestor's special condition
/// (`B(T_u) ∩ ⋃λ(u) ⊆ B(u)`) sees a new vertex. Peeled vertices, by
/// contrast, re-enter the tree *below* nodes that may use their host
/// edge in `λ`, which violates the special condition even though the
/// lifted tree decomposition stays valid. `softhw-core`'s reduce-aware
/// `hw` path therefore uses this variant, while `shw` (whose witnesses
/// are tree decompositions) uses the full [`reduce`].
pub fn reduce_no_peel(h: &Hypergraph) -> Reduction {
    reduce_impl(h, false)
}

fn reduce_impl(h: &Hypergraph, peel: bool) -> Reduction {
    let _span = softhw_obs::span(softhw_obs::stage::REDUCE);
    let nv = h.num_vertices();
    let ne = h.num_edges();
    let mut cur: Vec<BitSet> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; ne];
    // XOR-packed incidence accumulators: deg[v] counts alive edges whose
    // current set contains v, exor[v] is the XOR of their ids. When
    // deg[v] == 1 the accumulator holds exactly the host edge id.
    let mut deg: Vec<u32> = vec![0; nv];
    let mut exor: Vec<u32> = vec![0; nv];
    for (e, set) in cur.iter().enumerate() {
        for v in set.iter() {
            deg[v] += 1;
            exor[v] ^= e as u32;
        }
    }
    let mut worklist: Vec<u32> = if peel {
        (0..nv as u32).filter(|&v| deg[v as usize] == 1).collect()
    } else {
        Vec::new()
    };
    let mut events: Vec<ReduceEvent> = Vec::new();
    let mut stats = ReduceStats::default();

    loop {
        // Peel degree-1 vertices to fixpoint (allocation-free: the
        // worklist is the only growth, bounded by |V| + drop fan-in).
        while let Some(v) = worklist.pop() {
            let v = v as usize;
            if deg[v] != 1 {
                continue; // stale entry: degree changed since queued
            }
            let e = exor[v] as usize;
            debug_assert!(
                alive[e] && cur[e].contains(v),
                "XOR accumulator out of sync"
            );
            let host_before = cur[e].clone();
            cur[e].remove(v);
            deg[v] = 0;
            exor[v] = 0;
            stats.vertices_peeled += 1;
            if cur[e].is_empty() {
                // Fully peeled: the edge is vacuous from here on.
                alive[e] = false;
            }
            events.push(ReduceEvent::Peel {
                vertex: v,
                edge: e,
                host_before,
            });
        }

        // One subsumption sweep, smallest edges first (they are the
        // candidates for being contained). Candidate subsumers come from
        // the original incidence list of the edge's smallest vertex: a
        // vertex still present in an edge was never peeled, so original
        // incidence is a superset of current incidence.
        let mut order: Vec<usize> = (0..ne).filter(|&e| alive[e]).collect();
        order.sort_unstable_by_key(|&e| (cur[e].len(), e));
        let mut changed = false;
        for &d in &order {
            if !alive[d] {
                continue; // dropped earlier in this sweep
            }
            let Some(pivot) = cur[d].first() else {
                continue;
            };
            for &f in h.incident_edges(pivot) {
                if f == d || !alive[f] || !cur[f].contains(pivot) {
                    continue;
                }
                if !cur[d].is_subset(&cur[f]) {
                    continue;
                }
                if cur[d] == cur[f] && d < f {
                    continue; // duplicate edges: the lower id survives
                }
                alive[d] = false;
                for v in cur[d].iter() {
                    deg[v] -= 1;
                    exor[v] ^= d as u32;
                    if peel && deg[v] == 1 {
                        worklist.push(v as u32);
                    }
                }
                stats.edges_dropped += 1;
                events.push(ReduceEvent::Drop {
                    edge: d,
                    subsumer: f,
                    set: cur[d].clone(),
                });
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }

    // Split the surviving edges into connected components (BFS over
    // shared vertices of the *current* sets) and rebuild each as a
    // standalone hypergraph with original names.
    let mut inc: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for e in 0..ne {
        if alive[e] {
            for v in cur[e].iter() {
                inc[v].push(e as u32);
            }
        }
    }
    let mut comp_of: Vec<usize> = vec![usize::MAX; ne];
    let mut num_comps = 0usize;
    let mut stack: Vec<u32> = Vec::new();
    for seed in 0..ne {
        if !alive[seed] || comp_of[seed] != usize::MAX {
            continue;
        }
        comp_of[seed] = num_comps;
        stack.push(seed as u32);
        while let Some(e) = stack.pop() {
            for v in cur[e as usize].iter() {
                for &f in &inc[v] {
                    if comp_of[f as usize] == usize::MAX {
                        comp_of[f as usize] = num_comps;
                        stack.push(f);
                    }
                }
            }
        }
        num_comps += 1;
    }
    let mut piece_edges: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
    for e in 0..ne {
        if alive[e] {
            piece_edges[comp_of[e]].push(e); // ascending: e iterates upward
        }
    }
    let mut pieces: Vec<ReducePiece> = Vec::with_capacity(num_comps);
    for edges in piece_edges {
        let mut b = HypergraphBuilder::new();
        let mut vertex_map: Vec<usize> = Vec::new();
        let mut seen: BitSet = BitSet::empty(nv);
        for &e in &edges {
            // The builder numbers vertices by first occurrence, matching
            // this traversal exactly; vertex_map mirrors it.
            for v in cur[e].iter() {
                if seen.insert(v) {
                    vertex_map.push(v);
                }
            }
            let names: Vec<&str> = cur[e].iter().map(|v| h.vertex_name(v)).collect();
            b.edge(h.edge_name(e), &names);
        }
        let piece = b.build();
        debug_assert_eq!(piece.num_vertices(), vertex_map.len());
        pieces.push(ReducePiece {
            h: piece,
            vertex_map,
            edge_map: edges,
        });
    }
    stats.components = pieces.len();
    Reduction {
        num_vertices: nv,
        num_edges: ne,
        events,
        pieces,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn named_instances_are_irreducible() {
        for h in [
            named::h2(),
            named::cycle(6),
            named::grid(3, 3),
            named::triangle_star(3),
        ] {
            let r = reduce(&h);
            assert!(r.is_trivial(), "expected trivial reduction");
            assert_eq!(r.pieces.len(), 1);
            assert_eq!(r.pieces[0].h.num_edges(), h.num_edges());
            assert_eq!(r.pieces[0].h.num_vertices(), h.num_vertices());
        }
    }

    #[test]
    fn single_edge_peels_to_nothing() {
        let mut b = HypergraphBuilder::new();
        b.edge("e", &["x", "y", "z"]);
        let r = reduce(&b.build());
        assert_eq!(r.stats.vertices_peeled, 3);
        assert_eq!(r.stats.components, 0);
        assert!(r.pieces.is_empty());
        assert_eq!(r.events.len(), 3);
        // The last peel sees a singleton host.
        let ReduceEvent::Peel { host_before, .. } = r.events.last().unwrap() else {
            panic!("expected a peel");
        };
        assert_eq!(host_before.len(), 1);
    }

    #[test]
    fn subsumed_edge_dropped_and_peel_cascades() {
        // big(a,b,c), small(a,b), tail(c,d): small ⊆ big is dropped, then
        // d peels from tail, then c, then tail subsumes into big... the
        // acyclic instance reduces to nothing.
        let mut b = HypergraphBuilder::new();
        b.edge("big", &["a", "b", "c"]);
        b.edge("small", &["a", "b"]);
        b.edge("tail", &["c", "d"]);
        let r = reduce(&b.build());
        assert!(r.stats.edges_dropped >= 1);
        assert!(r.pieces.is_empty(), "acyclic input reduces to nothing");
        // All four vertices are accounted for by the trace.
        let mut covered = BitSet::empty(r.num_vertices);
        for ev in &r.events {
            match ev {
                ReduceEvent::Drop { set, .. } => covered.union_with(set),
                ReduceEvent::Peel {
                    vertex,
                    host_before,
                    ..
                } => {
                    assert!(host_before.contains(*vertex));
                    covered.union_with(host_before);
                }
            }
        }
        assert_eq!(covered.len(), 4);
    }

    #[test]
    fn duplicate_edges_keep_lowest_id() {
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["b", "a"]);
        b.edge("e3", &["b", "c"]);
        b.edge("e4", &["c", "a"]);
        let r = reduce(&b.build());
        let dropped: Vec<usize> = r
            .events
            .iter()
            .filter_map(|ev| match ev {
                ReduceEvent::Drop { edge, .. } => Some(*edge),
                _ => None,
            })
            .collect();
        assert_eq!(dropped, vec![1], "the higher duplicate id is dropped");
        assert_eq!(r.pieces.len(), 1);
        assert_eq!(r.pieces[0].edge_map, vec![0, 2, 3]);
    }

    #[test]
    fn disconnected_input_splits_into_pieces() {
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["b", "c"]);
        b.edge("e3", &["c", "a"]);
        b.edge("f1", &["x", "y"]);
        b.edge("f2", &["y", "z"]);
        b.edge("f3", &["z", "x"]);
        let r = reduce(&b.build());
        assert_eq!(
            r.stats,
            ReduceStats {
                edges_dropped: 0,
                vertices_peeled: 0,
                components: 2
            }
        );
        assert!(!r.is_trivial());
        assert_eq!(r.pieces[0].edge_map, vec![0, 1, 2]);
        assert_eq!(r.pieces[1].edge_map, vec![3, 4, 5]);
        // Maps translate names faithfully.
        let h = {
            let mut b = HypergraphBuilder::new();
            b.edge("e1", &["a", "b"]);
            b.edge("e2", &["b", "c"]);
            b.edge("e3", &["c", "a"]);
            b.edge("f1", &["x", "y"]);
            b.edge("f2", &["y", "z"]);
            b.edge("f3", &["z", "x"]);
            b.build()
        };
        for piece in &r.pieces {
            for (pv, &rv) in piece.vertex_map.iter().enumerate() {
                assert_eq!(piece.h.vertex_name(pv), h.vertex_name(rv));
            }
            for (pe, &re) in piece.edge_map.iter().enumerate() {
                assert_eq!(piece.h.edge_name(pe), h.edge_name(re));
            }
        }
    }

    #[test]
    fn pieces_are_fully_reduced() {
        // Re-reducing any piece is a no-op: the fixpoint is global.
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b", "c"]);
        b.edge("e2", &["b", "c", "d"]);
        b.edge("e3", &["c", "d", "a"]);
        b.edge("pendant", &["d", "p"]);
        b.edge("far1", &["u", "v"]);
        b.edge("far2", &["v", "w"]);
        b.edge("far3", &["w", "u"]);
        let r = reduce(&b.build());
        assert!(!r.pieces.is_empty());
        for piece in &r.pieces {
            assert!(reduce(&piece.h).is_trivial());
        }
    }

    #[test]
    fn no_peel_variant_only_drops_and_splits() {
        // An acyclic chain: full reduction peels it to nothing, the
        // no-peel variant keeps every edge (nothing is subsumed).
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b", "c"]);
        b.edge("e2", &["c", "d"]);
        b.edge("e3", &["d", "e"]);
        b.edge("dup", &["d", "c"]);
        let h = b.build();
        let r = reduce_no_peel(&h);
        assert_eq!(r.stats.vertices_peeled, 0);
        assert_eq!(r.stats.edges_dropped, 1, "only the duplicate goes");
        assert_eq!(r.pieces.len(), 1);
        assert_eq!(r.pieces[0].edge_map, vec![0, 1, 2]);
        assert!(r
            .events
            .iter()
            .all(|ev| matches!(ev, ReduceEvent::Drop { .. })));
        assert!(reduce(&h).pieces.is_empty(), "full pipeline peels it all");
    }

    #[test]
    fn events_replay_to_the_reduced_state() {
        // Forward-replaying the trace over the raw edge sets yields
        // exactly the pieces' edge sets.
        let h = {
            let mut b = HypergraphBuilder::new();
            b.edge("core1", &["a", "b", "c"]);
            b.edge("core2", &["b", "c", "d"]);
            b.edge("core3", &["c", "d", "a"]);
            b.edge("sub", &["a", "b"]);
            b.edge("chain1", &["d", "e"]);
            b.edge("chain2", &["e", "f"]);
            b.build()
        };
        let r = reduce(&h);
        let mut cur: Vec<BitSet> = h.edges().to_vec();
        let mut alive = vec![true; h.num_edges()];
        for ev in &r.events {
            match ev {
                ReduceEvent::Drop {
                    edge,
                    subsumer,
                    set,
                } => {
                    assert!(alive[*edge] && alive[*subsumer]);
                    assert_eq!(&cur[*edge], set);
                    assert!(set.is_subset(&cur[*subsumer]));
                    alive[*edge] = false;
                }
                ReduceEvent::Peel {
                    vertex,
                    edge,
                    host_before,
                } => {
                    assert!(alive[*edge]);
                    assert_eq!(&cur[*edge], host_before);
                    cur[*edge].remove(*vertex);
                    if cur[*edge].is_empty() {
                        alive[*edge] = false;
                    }
                }
            }
        }
        let mut alive_total = 0;
        for piece in &r.pieces {
            for (pe, &re) in piece.edge_map.iter().enumerate() {
                assert!(alive[re]);
                alive_total += 1;
                let lifted: Vec<usize> = piece
                    .h
                    .edge(pe)
                    .iter()
                    .map(|v| piece.vertex_map[v])
                    .collect();
                let expect: Vec<usize> = cur[re].iter().collect();
                assert_eq!(lifted, expect);
            }
        }
        assert_eq!(alive_total, alive.iter().filter(|&&a| a).count());
    }
}
