//! Random hypergraph generators for property-based testing and benchmark
//! workload sweeps.

use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_hypergraph`].
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Edge arity is drawn uniformly from `min_arity..=max_arity`.
    pub min_arity: usize,
    /// See `min_arity`.
    pub max_arity: usize,
    /// If true, extra 2-edges are added until the hypergraph is connected.
    pub connect: bool,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            num_vertices: 8,
            num_edges: 8,
            min_arity: 2,
            max_arity: 3,
            connect: true,
        }
    }
}

/// Generates a random hypergraph. Deterministic in `seed`.
///
/// Vertices that would end up isolated are re-attached with a 2-edge so the
/// paper's standing assumption (no isolated vertices) always holds.
pub fn random_hypergraph(cfg: &RandomConfig, seed: u64) -> Hypergraph {
    assert!(cfg.num_vertices >= 2 && cfg.min_arity >= 1);
    assert!(cfg.min_arity <= cfg.max_arity && cfg.max_arity <= cfg.num_vertices);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new();
    let names: Vec<String> = (0..cfg.num_vertices).map(|i| format!("v{i}")).collect();
    for n in &names {
        b.vertex(n);
    }
    let mut covered = vec![false; cfg.num_vertices];
    for e in 0..cfg.num_edges {
        let arity = rng.gen_range(cfg.min_arity..=cfg.max_arity);
        let mut vs: Vec<usize> = Vec::with_capacity(arity);
        while vs.len() < arity {
            let v = rng.gen_range(0..cfg.num_vertices);
            if !vs.contains(&v) {
                vs.push(v);
            }
        }
        for &v in &vs {
            covered[v] = true;
        }
        b.edge_ids(&format!("e{e}"), &vs);
    }
    // re-attach isolated vertices
    let mut extra = 0usize;
    for (v, &cov) in covered.iter().enumerate() {
        if !cov {
            let mut w = rng.gen_range(0..cfg.num_vertices);
            if w == v {
                w = (w + 1) % cfg.num_vertices;
            }
            b.edge_ids(&format!("fix{extra}"), &[v, w]);
            extra += 1;
        }
    }
    let mut h = b.build();
    if cfg.connect {
        // Join components with bridge edges until connected.
        loop {
            let comps = h.vertex_components(&h.empty_vertex_set());
            if comps.len() <= 1 {
                break;
            }
            let mut b = HypergraphBuilder::new();
            for v in 0..h.num_vertices() {
                b.vertex(h.vertex_name(v));
            }
            for e in 0..h.num_edges() {
                b.edge_ids(h.edge_name(e), &h.edge(e).to_vec());
            }
            let a = comps[0].first().expect("nonempty component");
            let c = comps[1].first().expect("nonempty component");
            b.edge_ids(&format!("bridge{}", h.num_edges()), &[a, c]);
            h = b.build();
        }
    }
    h
}

/// A random "query-like" hypergraph: mostly binary edges forming a sparse
/// graph with a few cycles, mimicking the join-graph shape of the paper's
/// benchmark queries.
pub fn random_query_graph(num_vars: usize, num_atoms: usize, seed: u64) -> Hypergraph {
    random_hypergraph(
        &RandomConfig {
            num_vertices: num_vars,
            num_edges: num_atoms,
            min_arity: 2,
            max_arity: 2,
            connect: true,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomConfig::default();
        let a = random_hypergraph(&cfg, 7);
        let b = random_hypergraph(&cfg, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in 0..a.num_edges() {
            assert_eq!(a.edge(e), b.edge(e));
        }
    }

    #[test]
    fn connected_when_requested() {
        for seed in 0..20 {
            let h = random_hypergraph(&RandomConfig::default(), seed);
            assert!(h.is_connected(), "seed {seed} produced disconnected H");
        }
    }

    #[test]
    fn no_isolated_vertices() {
        for seed in 0..20 {
            let h = random_hypergraph(
                &RandomConfig {
                    num_vertices: 12,
                    num_edges: 4,
                    connect: false,
                    ..RandomConfig::default()
                },
                seed,
            );
            for v in 0..h.num_vertices() {
                assert!(!h.incident_edges(v).is_empty());
            }
        }
    }

    #[test]
    fn query_graph_is_binary() {
        let h = random_query_graph(10, 12, 3);
        for e in 0..h.num_edges() {
            assert_eq!(h.edge(e).len(), 2);
        }
    }
}
