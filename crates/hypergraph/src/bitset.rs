//! Dense bitsets over small index universes.
//!
//! All hot paths of the decomposition algorithms (component computation,
//! candidate-bag generation, cover search) operate on sets of vertices or
//! edges of a single hypergraph, whose universe size is fixed up front.
//! A dense `u64`-block bitset gives O(n/64) set algebra and cheap hashing,
//! which is what the candidate-bag deduplication maps key on.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A dense bitset over indices `0..universe`.
///
/// Two bitsets are only meaningfully comparable when they were created for
/// the same universe; all operations assume equal block lengths and
/// `debug_assert` it.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Box<[u64]>,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..universe`.
    pub fn empty(universe: usize) -> Self {
        BitSet {
            blocks: vec![0u64; universe.div_ceil(64).max(1)].into_boxed_slice(),
        }
    }

    /// Creates the full set `{0, .., universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for i in 0..universe {
            s.insert(i);
        }
        s
    }

    /// Creates a set from an iterator of indices.
    pub fn from_iter(universe: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(universe);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Reconstructs a set from raw blocks (the inverse of
    /// [`BitSet::blocks`]); used by the bag arena to materialise views.
    pub fn from_blocks(blocks: &[u64]) -> Self {
        BitSet {
            blocks: blocks.to_vec().into_boxed_slice(),
        }
    }

    /// Number of `u64` blocks backing this set.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Raw blocks (used by the hasher and by serialisation helpers).
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Inserts index `i`. Returns whether the set changed.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (b, m) = (i / 64, 1u64 << (i % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] |= m;
        !was
    }

    /// Removes index `i`. Returns whether the set changed.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (b, m) = (i / 64, 1u64 << (i % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (b, m) = (i / 64, 1u64 << (i % 64));
        self.blocks.get(b).is_some_and(|blk| blk & m != 0)
    }

    /// True iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Removes all elements, keeping the universe size.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        self.blocks
            .iter()
            .zip(&*other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ∩ other ≠ ∅`.
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        self.blocks
            .iter()
            .zip(&*other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&*other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&*other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference `self \ other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.blocks.len(), other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&*other.blocks) {
            *a &= !b;
        }
    }

    /// New set `self ∪ other`.
    #[inline]
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// New set `self ∩ other`.
    #[inline]
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// New set `self \ other`.
    #[inline]
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (bi, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(bi * 64 + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a `Vec<usize>`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the raw blocks; trailing zero blocks are part of the fixed
        // universe so equal sets hash equally.
        for &b in &*self.blocks {
            state.write_u64(b);
        }
    }
}

impl PartialOrd for BitSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.blocks.cmp(&other.blocks)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet`], ascending.
pub struct BitIter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl<'a> BitIter<'a> {
    /// Iterates the set bits of a raw word slice (used by the bag arena).
    pub(crate) fn over(blocks: &'a [u64]) -> Self {
        BitIter {
            blocks,
            block_idx: 0,
            current: blocks.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> BitIter<'a> {
        self.iter()
    }
}

/// Enumerates all subsets of `pool` with size between 1 and `k`,
/// invoking `f` on each (as a slice of indices into the original universe).
///
/// The pool is the list of candidate element indices; subsets are produced
/// in lexicographic order of their index positions. Used for λ-label
/// enumeration, where `k` is the width bound.
pub fn for_each_subset_up_to_k(pool: &[usize], k: usize, mut f: impl FnMut(&[usize])) {
    let mut stack: Vec<usize> = Vec::with_capacity(k);
    // Depth-first enumeration: at each level pick the next pool position
    // strictly greater than the previous one.
    fn rec(
        pool: &[usize],
        k: usize,
        start: usize,
        stack: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        for pos in start..pool.len() {
            stack.push(pool[pos]);
            f(stack);
            if stack.len() < k {
                rec(pool, k, pos + 1, stack, f);
            }
            stack.pop();
        }
    }
    if k == 0 {
        return;
    }
    rec(pool, k, 0, &mut stack, &mut f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.to_vec(), vec![0, 129]);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(10, [1, 2, 3, 7]);
        let b = BitSet::from_iter(10, [2, 3, 5]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 5, 7]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 7]);
        assert!(a.intersects(&b));
        assert!(BitSet::from_iter(10, [2, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn full_and_first() {
        let f = BitSet::full(70);
        assert_eq!(f.len(), 70);
        assert_eq!(f.first(), Some(0));
        assert_eq!(BitSet::empty(70).first(), None);
    }

    #[test]
    fn iter_order_ascending() {
        let s = BitSet::from_iter(200, [199, 0, 63, 64, 65, 128]);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn subset_enumeration_counts() {
        let pool: Vec<usize> = (0..5).collect();
        let mut n = 0;
        for_each_subset_up_to_k(&pool, 2, |_| n += 1);
        // C(5,1) + C(5,2) = 5 + 10
        assert_eq!(n, 15);
        let mut n3 = 0;
        for_each_subset_up_to_k(&pool, 5, |_| n3 += 1);
        assert_eq!(n3, 31); // 2^5 - 1 nonempty subsets
    }

    #[test]
    fn subset_enumeration_contents_sorted() {
        let pool = vec![3usize, 1, 4];
        let mut seen = Vec::new();
        for_each_subset_up_to_k(&pool, 2, |s| seen.push(s.to_vec()));
        assert!(seen.contains(&vec![3, 1]));
        assert!(seen.contains(&vec![4]));
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn ordering_is_total() {
        let a = BitSet::from_iter(10, [1]);
        let b = BitSet::from_iter(10, [2]);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
