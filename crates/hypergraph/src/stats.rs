//! Structural statistics of hypergraphs — the properties decomposition
//! tools (HyperBench, det-k-decomp, BalancedGo) report for their inputs,
//! used here by the experiment harness and the random-instance sweeps.

use crate::bitset::BitSet;
use crate::hypergraph::Hypergraph;

/// A bundle of structural statistics for one hypergraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HypergraphStats {
    /// `|V(H)|`.
    pub num_vertices: usize,
    /// `|E(H)|`.
    pub num_edges: usize,
    /// Largest edge cardinality (arity).
    pub max_arity: usize,
    /// Smallest edge cardinality.
    pub min_arity: usize,
    /// Largest vertex degree (number of incident edges).
    pub max_degree: usize,
    /// Largest pairwise edge intersection (the *intersection width*;
    /// bounded intersection width is the tractable-ghw fragment of
    /// Gottlob et al. \[17\]).
    pub intersection_width: usize,
    /// Number of connected components.
    pub components: usize,
    /// Number of edges contained in another edge (subsumed edges, which
    /// preprocessing in decomposition tools typically removes).
    pub subsumed_edges: usize,
}

/// Computes all statistics in one pass over the edge list.
pub fn stats(h: &Hypergraph) -> HypergraphStats {
    let mut max_arity = 0;
    let mut min_arity = usize::MAX;
    for e in h.edges() {
        let a = e.len();
        max_arity = max_arity.max(a);
        min_arity = min_arity.min(a);
    }
    if h.num_edges() == 0 {
        min_arity = 0;
    }
    let max_degree = (0..h.num_vertices())
        .map(|v| h.incident_edges(v).len())
        .max()
        .unwrap_or(0);
    let mut intersection_width = 0;
    let mut subsumed = 0;
    for i in 0..h.num_edges() {
        for j in 0..h.num_edges() {
            if i == j {
                continue;
            }
            if j > i {
                let inter = h.edge(i).intersection(h.edge(j)).len();
                intersection_width = intersection_width.max(inter);
            }
            if h.edge(i).is_subset(h.edge(j)) && h.edge(i) != h.edge(j) {
                subsumed += 1;
                break;
            }
        }
    }
    HypergraphStats {
        num_vertices: h.num_vertices(),
        num_edges: h.num_edges(),
        max_arity,
        min_arity,
        max_degree,
        intersection_width,
        components: h.vertex_components(&BitSet::empty(h.num_vertices())).len(),
        subsumed_edges: subsumed,
    }
}

/// Degree histogram: `result[d]` = number of vertices with degree `d`.
pub fn degree_histogram(h: &Hypergraph) -> Vec<usize> {
    let max_deg = (0..h.num_vertices())
        .map(|v| h.incident_edges(v).len())
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..h.num_vertices() {
        hist[h.incident_edges(v).len()] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn h2_stats() {
        let s = stats(&named::h2());
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 8);
        assert_eq!(s.max_arity, 3);
        assert_eq!(s.min_arity, 2);
        assert_eq!(s.components, 1);
        assert_eq!(s.subsumed_edges, 0);
        // a and b each sit in 3 edges
        assert_eq!(s.max_degree, 3);
        // edges share at most one vertex in H2... {1,2,a} ∩ {4,5,a} = {a}
        assert_eq!(s.intersection_width, 1);
    }

    #[test]
    fn cycle_stats() {
        let s = stats(&named::cycle(6));
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.intersection_width, 1);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn subsumed_edges_detected() {
        let mut b = crate::HypergraphBuilder::new();
        b.edge("big", &["a", "b", "c"]);
        b.edge("small", &["a", "b"]);
        let s = stats(&b.build());
        assert_eq!(s.subsumed_edges, 1);
    }

    #[test]
    fn degree_histogram_sums_to_vertices() {
        let h = named::h2();
        let hist = degree_histogram(&h);
        assert_eq!(hist.iter().sum::<usize>(), h.num_vertices());
    }

    #[test]
    fn disconnected_counted() {
        let mut b = crate::HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        assert_eq!(stats(&b.build()).components, 2);
    }
}
