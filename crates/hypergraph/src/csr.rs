//! Compressed sparse adjacency over dense `u32` ids.
//!
//! The worklist satisfaction DP of Algorithm 1 (and the preference DP of
//! Algorithm 2) is dependency-driven: a block only needs rechecking when
//! one of its child blocks newly becomes satisfied. The child→parents
//! reverse index that drives those rechecks — and the per-block viable
//! candidate tables next to it — are plain CSR structures: one flat data
//! vector plus an offsets vector, built once per instance and probed with
//! two loads per row. [`Csr`] is that substrate, shared by the solver
//! crate so every DP wires its dependencies the same way.

/// An immutable adjacency from `0..n` to lists of `u32` targets.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    data: Vec<u32>,
}

impl Csr {
    /// Approximate heap footprint in bytes (offset + data arrays).
    pub fn approx_bytes(&self) -> u64 {
        ((self.offsets.capacity() + self.data.capacity()) * 4) as u64
    }

    /// Builds the adjacency from `(source, target)` pairs. Pairs are
    /// sorted and deduplicated, so rows come out ascending and
    /// duplicate-free regardless of insertion order.
    pub fn from_pairs(n: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::with_capacity(pairs.len());
        offsets.push(0);
        let mut row = 0u32;
        for (s, t) in pairs {
            debug_assert!((s as usize) < n, "source out of range");
            while row < s {
                offsets.push(data.len() as u32);
                row += 1;
            }
            data.push(t);
        }
        while offsets.len() <= n {
            offsets.push(data.len() as u32);
        }
        Csr { offsets, data }
    }

    /// Assembles the adjacency directly from its offsets and data
    /// vectors. This is the counting-sort construction path: call sites
    /// that already know every row's size (two passes over their source
    /// structure) build `offsets` by prefix sum and scatter into `data`,
    /// skipping `from_pairs`' materialise-sort-dedup entirely. Rows keep
    /// the caller's scatter order and may contain duplicates; the
    /// worklist consumers tolerate both (a duplicate recheck is a no-op).
    pub fn from_parts(offsets: Vec<u32>, data: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.first().expect("non-empty") as usize, 0);
        debug_assert_eq!(*offsets.last().expect("non-empty") as usize, data.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, data }
    }

    /// Counting-scatter construction from a re-iterable `(source, target)`
    /// pair stream: one pass counts row sizes, a prefix sum builds the
    /// offsets, a second pass scatters the targets. Rows keep the
    /// stream's order (sources emitted in ascending order give ascending
    /// rows) and are *not* deduplicated — see [`Csr::from_parts`] for the
    /// duplicate-tolerance contract.
    pub fn from_counts(n: usize, pairs: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut offsets = vec![0u32; n + 1];
        for (s, _) in pairs.clone() {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut data = vec![0u32; *offsets.last().expect("n + 1 offsets") as usize];
        for (s, t) in pairs {
            data[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        Self::from_parts(offsets, data)
    }

    /// Number of source rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.data.len()
    }

    /// True iff the adjacency has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The targets of row `i`, ascending and duplicate-free.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_sorted_and_deduped() {
        let csr = Csr::from_pairs(4, vec![(2, 7), (0, 3), (2, 1), (2, 7), (0, 3)]);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.row(0), &[3]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[1, 7]);
        assert_eq!(csr.row(3), &[] as &[u32]);
        assert_eq!(csr.num_edges(), 3);
    }

    #[test]
    fn from_counts_matches_from_pairs_up_to_order() {
        let pairs = [(2u32, 7u32), (0, 3), (2, 1), (1, 9)];
        let counted = Csr::from_counts(4, pairs.iter().copied());
        let sorted = Csr::from_pairs(4, pairs.to_vec());
        for i in 0..4 {
            let mut row = counted.row(i).to_vec();
            row.sort_unstable();
            assert_eq!(row, sorted.row(i));
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let csr = Csr::from_parts(vec![0, 2, 2, 3], vec![5, 1, 9]);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.row(0), &[5, 1]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[9]);
    }

    #[test]
    fn empty_and_trailing_rows() {
        let csr = Csr::from_pairs(3, Vec::new());
        assert_eq!(csr.num_rows(), 3);
        assert!(csr.is_empty());
        for i in 0..3 {
            assert!(csr.row(i).is_empty());
        }
    }
}
