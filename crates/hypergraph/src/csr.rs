//! Compressed sparse adjacency over dense `u32` ids.
//!
//! The worklist satisfaction DP of Algorithm 1 (and the preference DP of
//! Algorithm 2) is dependency-driven: a block only needs rechecking when
//! one of its child blocks newly becomes satisfied. The child→parents
//! reverse index that drives those rechecks — and the per-block viable
//! candidate tables next to it — are plain CSR structures: one flat data
//! vector plus an offsets vector, built once per instance and probed with
//! two loads per row. [`Csr`] is that substrate, shared by the solver
//! crate so every DP wires its dependencies the same way.

/// An immutable adjacency from `0..n` to lists of `u32` targets.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    data: Vec<u32>,
}

impl Csr {
    /// Builds the adjacency from `(source, target)` pairs. Pairs are
    /// sorted and deduplicated, so rows come out ascending and
    /// duplicate-free regardless of insertion order.
    pub fn from_pairs(n: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::with_capacity(pairs.len());
        offsets.push(0);
        let mut row = 0u32;
        for (s, t) in pairs {
            debug_assert!((s as usize) < n, "source out of range");
            while row < s {
                offsets.push(data.len() as u32);
                row += 1;
            }
            data.push(t);
        }
        while offsets.len() <= n {
            offsets.push(data.len() as u32);
        }
        Csr { offsets, data }
    }

    /// Number of source rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.data.len()
    }

    /// True iff the adjacency has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The targets of row `i`, ascending and duplicate-free.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_sorted_and_deduped() {
        let csr = Csr::from_pairs(4, vec![(2, 7), (0, 3), (2, 1), (2, 7), (0, 3)]);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.row(0), &[3]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[1, 7]);
        assert_eq!(csr.row(3), &[] as &[u32]);
        assert_eq!(csr.num_edges(), 3);
    }

    #[test]
    fn empty_and_trailing_rows() {
        let csr = Csr::from_pairs(3, Vec::new());
        assert_eq!(csr.num_rows(), 3);
        assert!(csr.is_empty());
        for i in 0..3 {
            assert!(csr.row(i).is_empty());
        }
    }
}
