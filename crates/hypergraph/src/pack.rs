//! Compact binary packing of bag words and arena snapshots.
//!
//! The persistent decomposition store frames witnesses as
//! [`ArenaSnapshot`]s (every distinct bag once, flat words) plus dense
//! node tables. On disk the raw `u64` words would waste most of their
//! bytes: bag bitsets over small-to-medium universes are sparse in their
//! *high* words (usually all zero past the first), and ids/lengths are
//! tiny. This module provides the shared byte-level encoding:
//!
//! - LEB128 **varints** for lengths, ids, and words (a zero word is one
//!   byte, a dense low word at most ten);
//! - **zigzag** mapping for the few signed values (evaluator depths);
//! - word-slice and [`ArenaSnapshot`] pack/unpack, the snapshot being
//!   exactly the flat form the wire and the store both frame.
//!
//! Decoders never panic on malformed input: every `get_*` returns
//! `None`/`Option` on truncation or overflow, so a corrupt store record
//! is rejected, not trusted.

use crate::arena::ArenaSnapshot;

/// Appends `v` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it. `None` on truncation
/// or a value that overflows 64 bits.
#[inline]
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Appends a signed value zigzag-mapped to a varint.
#[inline]
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads a zigzag varint at `*pos`, advancing it.
#[inline]
pub fn get_zigzag(buf: &[u8], pos: &mut usize) -> Option<i64> {
    let raw = get_varint(buf, pos)?;
    Some(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// Packs a word slice as varints, one per word (count not included —
/// the caller frames it).
pub fn pack_words(out: &mut Vec<u8>, words: &[u64]) {
    for &w in words {
        put_varint(out, w);
    }
}

/// Unpacks exactly `n` varint words at `*pos` into `out`, advancing the
/// position. `None` on truncation (out is left partially extended only
/// on failure paths the caller discards).
pub fn unpack_words(buf: &[u8], pos: &mut usize, n: usize, out: &mut Vec<u64>) -> Option<()> {
    out.reserve(n);
    for _ in 0..n {
        out.push(get_varint(buf, pos)?);
    }
    Some(())
}

impl ArenaSnapshot {
    /// Packs the snapshot: universe, bag count, then every bag's words
    /// as varints. The inverse of [`ArenaSnapshot::unpack`].
    pub fn pack(&self, out: &mut Vec<u8>) {
        put_varint(out, self.universe as u64);
        put_varint(out, self.len() as u64);
        pack_words(out, &self.storage);
    }

    /// Unpacks a snapshot at `*pos`, advancing it. `None` on a
    /// truncated or oversized frame (bag counts are capped so a corrupt
    /// length cannot trigger a huge allocation before the words run
    /// out).
    pub fn unpack(buf: &[u8], pos: &mut usize) -> Option<ArenaSnapshot> {
        let universe = usize::try_from(get_varint(buf, pos)?).ok()?;
        let bags = usize::try_from(get_varint(buf, pos)?).ok()?;
        let wpb = universe.div_ceil(64).max(1);
        let words = bags.checked_mul(wpb)?;
        // Each packed word is at least one byte: a frame with fewer
        // remaining bytes is corrupt, and this bound keeps allocation
        // proportional to real input.
        if words > buf.len().saturating_sub(*pos) {
            return None;
        }
        let mut storage = Vec::new();
        unpack_words(buf, pos, words, &mut storage)?;
        Some(ArenaSnapshot { universe, storage })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::BagArena;
    use crate::bitset::BitSet;

    #[test]
    fn varint_roundtrip_edges() {
        let mut out = Vec::new();
        let values = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX / 2, u64::MAX];
        for &v in &values {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        let mut out = Vec::new();
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            out.clear();
            put_zigzag(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_zigzag(&out, &mut pos), Some(v));
        }
    }

    #[test]
    fn truncated_and_overflowing_varints_are_rejected() {
        // Truncation: a continuation bit with nothing after it.
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80], &mut pos), None);
        // Overflow: eleven continuation bytes.
        let mut pos = 0;
        assert_eq!(get_varint(&[0xff; 11], &mut pos), None);
        // 2^64 exactly (ten bytes, top byte 2) overflows.
        let mut pos = 0;
        let buf = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn snapshot_packs_and_unpacks() {
        let mut arena = BagArena::new(130);
        for i in 0..40 {
            arena.intern(&BitSet::from_iter(130, [i, (i * 11) % 130, 129]));
        }
        let snap = arena.snapshot();
        let mut buf = Vec::new();
        snap.pack(&mut buf);
        // Sparse high words compress: packed form is smaller than raw.
        assert!(buf.len() < snap.storage.len() * 8);
        let mut pos = 0;
        let back = ArenaSnapshot::unpack(&buf, &mut pos).expect("valid frame");
        assert_eq!(pos, buf.len());
        assert_eq!(back, snap);
        // Truncation is rejected at every cut point.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(ArenaSnapshot::unpack(&buf[..cut], &mut pos).is_none());
        }
    }

    #[test]
    fn snapshot_unpack_rejects_absurd_bag_counts() {
        // universe=64, bags=2^40: the word count exceeds the buffer, so
        // the decoder must bail before allocating.
        let mut buf = Vec::new();
        put_varint(&mut buf, 64);
        put_varint(&mut buf, 1 << 40);
        let mut pos = 0;
        assert!(ArenaSnapshot::unpack(&buf, &mut pos).is_none());
    }
}
