//! The shared block index: per-hypergraph memoisation of the
//! `[S]`-connectivity quantities every solver recomputes.
//!
//! All of the paper's algorithms repeatedly ask the same three questions
//! about separators `S ⊆ V(H)`:
//!
//! 1. what are the `[S]`-components (as vertex sets)?
//! 2. which edges touch a given component (the block's coverage
//!    obligations in Algorithm 1)?
//! 3. what is `⋃C`, the union of the vertices of the edges touching a
//!    component (the `U`-side of Definition 3)?
//!
//! The seed recomputed these per solver call — `shw` at width `k+1`
//! re-derived every component it already knew at width `k`, and
//! `component_unions` re-ran a BFS per λ2 subset even across solvers. The
//! [`BlockIndex`] interns every separator and component into a
//! [`BagArena`] and caches the answers keyed by [`BagId`], so a
//! (hypergraph, k)-sweep — or a whole `shw` search across all `k` —
//! computes each of them exactly once.
//!
//! Side tables are append-only, so cached ranges stay valid as the index
//! grows.

use crate::arena::{BagArena, BagId};
use crate::bitset::BitSet;
use crate::fxhash::FxHashMap;
use crate::hypergraph::Hypergraph;
use std::sync::Arc;

/// A `(start, len)` range into one of the index's append-only side tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceRange {
    start: u32,
    len: u32,
}

impl SliceRange {
    #[inline]
    fn of(start: usize, len: usize) -> Self {
        SliceRange {
            start: start as u32,
            len: len as u32,
        }
    }

    /// Number of entries in the range.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Cache statistics (exposed for tests and the bench harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockIndexStats {
    /// Component-list cache hits.
    pub comp_hits: u64,
    /// Component-list cache misses (fresh BFS runs).
    pub comp_misses: u64,
    /// Component-union cache hits.
    pub union_hits: u64,
    /// Component-union cache misses.
    pub union_misses: u64,
}

/// Per-hypergraph cache of components, blocks, and component unions, all
/// keyed on interned [`BagId`]s.
///
/// The index *owns* its hypergraph (as an [`Arc`], shared with every
/// solver instance built from it), so it has no borrow lifetime and can
/// outlive the call that created it — which is what lets the cross-query
/// [`crate::cache::IndexCache`] keep one warm index per structurally
/// distinct hypergraph across solver calls.
pub struct BlockIndex {
    h: Arc<Hypergraph>,
    /// Arena over the vertex universe; owns every separator, component,
    /// closure, and candidate bag this index has seen.
    pub arena: BagArena,
    /// Flat storage of cached component lists.
    comp_data: Vec<BagId>,
    /// separator id → its `[S]`-components (vertex sets, interned).
    comp_cache: FxHashMap<BagId, SliceRange>,
    /// Flat storage of cached touching-edge lists.
    touch_data: Vec<u32>,
    /// component id → ids of edges intersecting it.
    touch_cache: FxHashMap<BagId, SliceRange>,
    /// component id → interned `⋃C` (union of vertices of touching edges).
    union_cache: FxHashMap<BagId, BagId>,
    /// Flat storage of cached block rows: `(component, coverage union)`
    /// per component of a separator, in component order.
    row_data: Vec<(BagId, BagId)>,
    /// separator id → its block rows.
    row_cache: FxHashMap<BagId, SliceRange>,
    /// Reusable per-edge mark buffer for `edges_touching`.
    edge_seen_scratch: Vec<bool>,
    /// Reusable BFS buffers for `components` (seen words, component
    /// words, vertex stack) — the per-bag component queries of instance
    /// build are hot enough that per-call allocation shows up.
    bfs_seen_scratch: Vec<u64>,
    bfs_comp_scratch: Vec<u64>,
    bfs_stack_scratch: Vec<usize>,
    /// Reusable word buffer for `edges_touching`'s component iteration.
    touch_words_scratch: Vec<u64>,
    stats: BlockIndexStats,
}

impl BlockIndex {
    /// Creates an empty index for a clone of `h`.
    pub fn new(h: &Hypergraph) -> Self {
        Self::from_arc(Arc::new(h.clone()))
    }

    /// Creates an empty index sharing ownership of `h` (no clone).
    pub fn from_arc(h: Arc<Hypergraph>) -> Self {
        let nv = h.num_vertices();
        BlockIndex {
            h,
            arena: BagArena::new(nv),
            comp_data: Vec::new(),
            comp_cache: FxHashMap::default(),
            touch_data: Vec::new(),
            touch_cache: FxHashMap::default(),
            union_cache: FxHashMap::default(),
            row_data: Vec::new(),
            row_cache: FxHashMap::default(),
            edge_seen_scratch: Vec::new(),
            bfs_seen_scratch: Vec::new(),
            bfs_comp_scratch: Vec::new(),
            bfs_stack_scratch: Vec::new(),
            touch_words_scratch: Vec::new(),
            stats: BlockIndexStats::default(),
        }
    }

    /// Approximate heap footprint in bytes: the owned hypergraph, the
    /// arena, and every component/touch/union/block table. Hash maps are
    /// estimated at their entry payload plus one word of table overhead
    /// per entry. Feeds the service's `bytes_per_cached_schema` stat.
    pub fn approx_bytes(&self) -> u64 {
        let maps = (self.comp_cache.len() + self.touch_cache.len() + self.row_cache.len())
            * (std::mem::size_of::<(BagId, SliceRange)>() + 8)
            + self.union_cache.len() * (std::mem::size_of::<(BagId, BagId)>() + 8);
        let flats = self.comp_data.capacity() * std::mem::size_of::<BagId>()
            + self.touch_data.capacity() * 4
            + self.row_data.capacity() * std::mem::size_of::<(BagId, BagId)>()
            + self.edge_seen_scratch.capacity()
            + (self.bfs_seen_scratch.capacity()
                + self.bfs_comp_scratch.capacity()
                + self.touch_words_scratch.capacity())
                * 8
            + self.bfs_stack_scratch.capacity() * 8;
        self.h.approx_bytes() + self.arena.approx_bytes() + (maps + flats) as u64
    }

    /// The hypergraph this index serves.
    #[inline]
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.h
    }

    /// Shared ownership of the hypergraph, for solver instances that must
    /// outlive a `&mut` borrow of the index.
    #[inline]
    pub fn hypergraph_arc(&self) -> &Arc<Hypergraph> {
        &self.h
    }

    /// Cache statistics so far.
    #[inline]
    pub fn stats(&self) -> BlockIndexStats {
        self.stats
    }

    /// The `[S]`-components of separator `sep` as interned vertex sets.
    /// Computed once per distinct separator; returns a range to resolve
    /// with [`BlockIndex::comps`].
    ///
    /// The BFS runs word-level on scratch buffers (no per-vertex bitset
    /// clones, unlike [`Hypergraph::vertex_components`]), and each
    /// component is interned straight from its scratch words. Components
    /// are emitted in ascending order of their smallest vertex — the
    /// same order the bitset BFS produces.
    pub fn components(&mut self, sep: BagId) -> SliceRange {
        if let Some(&r) = self.comp_cache.get(&sep) {
            self.stats.comp_hits += 1;
            return r;
        }
        self.stats.comp_misses += 1;
        let n = self.h.num_vertices();
        let words = self.arena.words_per_bag();
        // `seen` starts as the separator: separator vertices are never
        // explored, and every explored vertex is marked here. The three
        // BFS buffers are instance-owned scratch (no per-call allocation).
        let mut seen = std::mem::take(&mut self.bfs_seen_scratch);
        seen.clear();
        seen.extend_from_slice(self.arena.words(sep));
        let mut comp = std::mem::take(&mut self.bfs_comp_scratch);
        comp.clear();
        comp.resize(words, 0);
        let mut stack = std::mem::take(&mut self.bfs_stack_scratch);
        stack.clear();
        let start = self.comp_data.len();
        let mut count = 0usize;
        for v0 in 0..n {
            if seen[v0 / 64] >> (v0 % 64) & 1 != 0 {
                continue;
            }
            comp.iter_mut().for_each(|w| *w = 0);
            seen[v0 / 64] |= 1u64 << (v0 % 64);
            comp[v0 / 64] |= 1u64 << (v0 % 64);
            stack.push(v0);
            while let Some(v) = stack.pop() {
                for (i, &aw) in self.h.closed_neighbourhood(v).blocks().iter().enumerate() {
                    let mut new = aw & !seen[i];
                    if new != 0 {
                        seen[i] |= new;
                        comp[i] |= new;
                        while new != 0 {
                            stack.push(i * 64 + new.trailing_zeros() as usize);
                            new &= new - 1;
                        }
                    }
                }
            }
            let id = self.arena.intern_words(&comp);
            self.comp_data.push(id);
            count += 1;
        }
        self.bfs_seen_scratch = seen;
        self.bfs_comp_scratch = comp;
        self.bfs_stack_scratch = stack;
        let r = SliceRange::of(start, count);
        self.comp_cache.insert(sep, r);
        r
    }

    /// Resolves a component range returned by [`BlockIndex::components`].
    #[inline]
    pub fn comps(&self, r: SliceRange) -> &[BagId] {
        &self.comp_data[r.start as usize..(r.start + r.len) as usize]
    }

    /// The ids of the edges intersecting component `comp` (the coverage
    /// obligations of the block headed by the component's separator),
    /// ascending. Walks the component's incidence lists rather than
    /// scanning all edges.
    pub fn edges_touching(&mut self, comp: BagId) -> SliceRange {
        if let Some(&r) = self.touch_cache.get(&comp) {
            return r;
        }
        let start = self.touch_data.len();
        self.edge_seen_scratch.clear();
        self.edge_seen_scratch.resize(self.h.num_edges(), false);
        let mut word_iter = std::mem::take(&mut self.touch_words_scratch);
        word_iter.clear();
        word_iter.extend_from_slice(self.arena.words(comp));
        for (i, w) in word_iter.iter_mut().enumerate() {
            while *w != 0 {
                let v = i * 64 + w.trailing_zeros() as usize;
                *w &= *w - 1;
                for &e in self.h.incident_edges(v) {
                    if !self.edge_seen_scratch[e] {
                        self.edge_seen_scratch[e] = true;
                        self.touch_data.push(e as u32);
                    }
                }
            }
        }
        self.touch_words_scratch = word_iter;
        self.touch_data[start..].sort_unstable();
        let r = SliceRange::of(start, self.touch_data.len() - start);
        self.touch_cache.insert(comp, r);
        r
    }

    /// Resolves a touching-edge range.
    #[inline]
    pub fn touching(&self, r: SliceRange) -> &[u32] {
        &self.touch_data[r.start as usize..(r.start + r.len) as usize]
    }

    /// `⋃C` for component `comp`: the union of the vertex sets of all
    /// edges intersecting it (plus `C` itself, which that union already
    /// contains unless `C` is a single edgeless vertex), interned. This
    /// is the `U`-side quantity of Definition 3 *and* the coverage
    /// obligation of the block headed by the component's separator,
    /// shared across every `k` and solver. Every coverage test pairs `⋃C`
    /// with a witness union that contains `C` by construction, so folding
    /// `C` in is semantically free.
    ///
    /// Computed as `⋃_{v ∈ C} N[v]` over the cached closed
    /// neighbourhoods — union is idempotent, so no touching-edge list is
    /// materialised (at `k = 2` HyperBench scale those lists run to
    /// hundreds of millions of entries; the union is one interned row).
    pub fn component_union(&mut self, comp: BagId) -> BagId {
        if let Some(&u) = self.union_cache.get(&comp) {
            self.stats.union_hits += 1;
            return u;
        }
        self.stats.union_misses += 1;
        let mut buf = std::mem::take(&mut self.touch_words_scratch);
        buf.clear();
        buf.resize(self.arena.words_per_bag(), 0);
        let comp_words = self.arena.words(comp).to_vec();
        for (i, mut w) in comp_words.into_iter().enumerate() {
            while w != 0 {
                let v = i * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                crate::arena::words_union_into(self.h.closed_neighbourhood(v).blocks(), &mut buf);
            }
        }
        let u = self.arena.intern_words(&buf);
        self.touch_words_scratch = buf;
        self.union_cache.insert(comp, u);
        u
    }

    /// The block rows of separator `sep`: one `(component, coverage
    /// union)` pair per `[sep]`-component, in component order — exactly
    /// the data a solver needs to materialise the blocks headed by `sep`
    /// (the coverage union `⋃C` stands in for the touching-edge list:
    /// "every touching edge inside the witness union" is equivalent to
    /// "`⋃C` inside the witness union"). Cached per separator, so the
    /// instance-build loops (cold build and incremental extension alike)
    /// resolve a bag's blocks with one map probe.
    pub fn block_rows(&mut self, sep: BagId) -> SliceRange {
        if let Some(&r) = self.row_cache.get(&sep) {
            return r;
        }
        let comps_r = self.components(sep);
        // The component list is append-only, so re-resolve by offset
        // rather than cloning it while `component_union` mutates `self`.
        let (lo, n) = (comps_r.start as usize, comps_r.len());
        let start = self.row_data.len();
        for i in 0..n {
            let comp = self.comp_data[lo + i];
            let cover = self.component_union(comp);
            self.row_data.push((comp, cover));
        }
        let r = SliceRange::of(start, n);
        self.row_cache.insert(sep, r);
        r
    }

    /// Resolves a block-row range returned by [`BlockIndex::block_rows`]
    /// into `(component, coverage union)` pairs.
    #[inline]
    pub fn rows(&self, r: SliceRange) -> &[(BagId, BagId)] {
        &self.row_data[r.start as usize..(r.start + r.len) as usize]
    }

    /// Interns a [`BitSet`] into the index's arena.
    #[inline]
    pub fn intern(&mut self, set: &BitSet) -> BagId {
        self.arena.intern(set)
    }

    /// Interns the empty separator.
    #[inline]
    pub fn empty(&mut self) -> BagId {
        self.arena.empty_bag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn cached_components_equal_fresh_ones() {
        let h = named::h2();
        let mut idx = BlockIndex::new(&h);
        for e in 0..h.num_edges() {
            let sep = h.edge(e).clone();
            let sid = idx.intern(&sep);
            let r = idx.components(sid);
            let cached: Vec<BitSet> = idx
                .comps(r)
                .iter()
                .map(|&c| idx.arena.to_bitset(c))
                .collect();
            let fresh = h.vertex_components(&sep);
            assert_eq!(cached, fresh, "separator {}", h.render_vertex_set(&sep));
        }
    }

    #[test]
    fn second_query_hits_cache() {
        let h = named::cycle(6);
        let mut idx = BlockIndex::new(&h);
        let sep = idx.intern(&h.vset(&["v0", "v3"]));
        let r1 = idx.components(sep);
        let before = idx.stats();
        let r2 = idx.components(sep);
        let after = idx.stats();
        assert_eq!(idx.comps(r1), idx.comps(r2));
        assert_eq!(after.comp_hits, before.comp_hits + 1);
        assert_eq!(after.comp_misses, before.comp_misses);
    }

    #[test]
    fn component_union_matches_hypergraph_bfs() {
        let h = named::h2();
        let mut idx = BlockIndex::new(&h);
        let sep_set = h.union_of_edges([0, 1]);
        let sep = idx.intern(&sep_set);
        let r = idx.components(sep);
        let mut unions: Vec<BitSet> = Vec::new();
        for i in 0..r.len() {
            let c = idx.comps(r)[i];
            let u = idx.component_union(c);
            unions.push(idx.arena.to_bitset(u));
        }
        unions.sort_unstable();
        let mut fresh: Vec<BitSet> = h
            .edge_components(&sep_set)
            .iter()
            .map(|c| h.union_of_edge_set(c))
            .collect();
        fresh.sort_unstable();
        assert_eq!(unions, fresh);
    }

    #[test]
    fn block_rows_match_componentwise_queries() {
        let h = named::h2();
        let mut idx = BlockIndex::new(&h);
        for e in 0..h.num_edges() {
            let sep = idx.intern(&h.edge(e).clone());
            let direct: Vec<(BagId, BagId)> = {
                let r = idx.components(sep);
                let comps: Vec<BagId> = idx.comps(r).to_vec();
                comps
                    .into_iter()
                    .map(|c| (c, idx.component_union(c)))
                    .collect()
            };
            let rows_r = idx.block_rows(sep);
            let rows: Vec<(BagId, BagId)> = idx.rows(rows_r).to_vec();
            assert_eq!(rows, direct);
            // The stored cover equals the union of the touching edges'
            // vertex sets together with the component itself.
            for &(c, cover) in &rows {
                let t = idx.edges_touching(c);
                let edges = idx.touching(t).to_vec();
                let mut want = idx.arena.to_bitset(c);
                for &e in &edges {
                    want.union_with(idx.hypergraph().edge(e as usize));
                }
                assert_eq!(idx.arena.to_bitset(cover), want);
            }
            // Second probe hits the row cache and returns the same range.
            let again = idx.block_rows(sep);
            assert_eq!(idx.rows(again), idx.rows(rows_r));
        }
    }

    #[test]
    fn touching_edges_match() {
        let h = named::cycle(5);
        let mut idx = BlockIndex::new(&h);
        let empty = idx.empty();
        let r = idx.components(empty);
        assert_eq!(r.len(), 1);
        let comp = idx.comps(r)[0];
        let t = idx.edges_touching(comp);
        assert_eq!(idx.touching(t).len(), h.num_edges());
    }
}
