//! Hypergraph representation and the connectivity primitives
//! (`[S]`-components) that all decomposition algorithms are built on.

use crate::bitset::BitSet;
use crate::fxhash::FxHashMap;
use std::fmt;

/// A hypergraph `H = (V(H), E(H))`.
///
/// Vertices and edges are dense indices (`0..num_vertices`,
/// `0..num_edges`); names are kept for parsing/printing. Every edge is a
/// [`BitSet`] over the vertex universe. Following the paper we assume no
/// isolated vertices (the builder enforces it unless explicitly allowed).
#[derive(Clone)]
pub struct Hypergraph {
    vertex_names: Vec<String>,
    edge_names: Vec<String>,
    edges: Vec<BitSet>,
    /// vertex -> ids of incident edges (`I(v)` in the paper)
    incidence: Vec<Vec<usize>>,
    /// Gaifman adjacency: vertex -> vertices sharing an edge with it
    adjacency: Vec<BitSet>,
}

impl Hypergraph {
    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of edges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Approximate heap footprint in bytes: names, edge bitsets,
    /// incidence lists, and the Gaifman adjacency. Feeds the service's
    /// `bytes_per_cached_schema` memory stat.
    pub fn approx_bytes(&self) -> u64 {
        let names: usize = self
            .vertex_names
            .iter()
            .chain(self.edge_names.iter())
            .map(|n| n.capacity() + std::mem::size_of::<String>())
            .sum();
        let edges: usize = self
            .edges
            .iter()
            .chain(self.adjacency.iter())
            .map(|b| b.num_blocks() * 8 + std::mem::size_of::<BitSet>())
            .sum();
        let incidence: usize = self
            .incidence
            .iter()
            .map(|i| i.capacity() * 8 + std::mem::size_of::<Vec<usize>>())
            .sum();
        (names + edges + incidence + std::mem::size_of::<Self>()) as u64
    }

    /// The vertex set of edge `e`.
    #[inline]
    pub fn edge(&self, e: usize) -> &BitSet {
        &self.edges[e]
    }

    /// All edges, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[BitSet] {
        &self.edges
    }

    /// Name of vertex `v`.
    pub fn vertex_name(&self, v: usize) -> &str {
        &self.vertex_names[v]
    }

    /// Name of edge `e`.
    pub fn edge_name(&self, e: usize) -> &str {
        &self.edge_names[e]
    }

    /// Looks up a vertex id by name.
    pub fn vertex_by_name(&self, name: &str) -> Option<usize> {
        self.vertex_names.iter().position(|n| n == name)
    }

    /// Looks up an edge id by name.
    pub fn edge_by_name(&self, name: &str) -> Option<usize> {
        self.edge_names.iter().position(|n| n == name)
    }

    /// Edges incident to vertex `v` (`I(v)`).
    #[inline]
    pub fn incident_edges(&self, v: usize) -> &[usize] {
        &self.incidence[v]
    }

    /// Gaifman-graph neighbourhood of `v` (vertices co-occurring with `v`
    /// in some edge, including `v` itself).
    #[inline]
    pub fn closed_neighbourhood(&self, v: usize) -> &BitSet {
        &self.adjacency[v]
    }

    /// An empty vertex set sized for this hypergraph.
    #[inline]
    pub fn empty_vertex_set(&self) -> BitSet {
        BitSet::empty(self.num_vertices())
    }

    /// The full vertex set `V(H)`.
    #[inline]
    pub fn all_vertices(&self) -> BitSet {
        BitSet::full(self.num_vertices())
    }

    /// An empty edge set sized for this hypergraph.
    #[inline]
    pub fn empty_edge_set(&self) -> BitSet {
        BitSet::empty(self.num_edges())
    }

    /// Builds a vertex set from named vertices; panics on unknown names
    /// (test/example convenience).
    pub fn vset(&self, names: &[&str]) -> BitSet {
        BitSet::from_iter(
            self.num_vertices(),
            names.iter().map(|n| {
                self.vertex_by_name(n)
                    .unwrap_or_else(|| panic!("unknown vertex {n:?}"))
            }),
        )
    }

    /// Union of the vertex sets of the given edges (`⋃λ`).
    pub fn union_of_edges(&self, lambda: impl IntoIterator<Item = usize>) -> BitSet {
        let mut u = self.empty_vertex_set();
        for e in lambda {
            u.union_with(&self.edges[e]);
        }
        u
    }

    /// Union of the vertex sets of an edge bitset (`⋃C` for an edge set C).
    pub fn union_of_edge_set(&self, edge_set: &BitSet) -> BitSet {
        self.union_of_edges(edge_set.iter())
    }

    /// Connected components of the vertices `V(H) \ sep` in the Gaifman
    /// graph, i.e. the maximal sets of pairwise `[sep]`-connected vertices.
    ///
    /// Each returned set is disjoint from `sep`. The union of the returned
    /// sets is `V(H) \ sep`.
    pub fn vertex_components(&self, sep: &BitSet) -> Vec<BitSet> {
        let n = self.num_vertices();
        let mut seen = sep.clone();
        let mut out = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in 0..n {
            if seen.contains(start) {
                continue;
            }
            let mut comp = self.empty_vertex_set();
            comp.insert(start);
            seen.insert(start);
            queue.push(start);
            while let Some(v) = queue.pop() {
                // neighbours not yet seen and not in sep
                let mut nbrs = self.adjacency[v].clone();
                nbrs.difference_with(&seen);
                for w in nbrs.iter() {
                    seen.insert(w);
                    comp.insert(w);
                    queue.push(w);
                }
            }
            out.push(comp);
        }
        out
    }

    /// `[S]`-components as *edge* sets: the maximal sets of pairwise
    /// `[sep]`-connected edges. An edge belongs to a component iff it has at
    /// least one vertex outside `sep` (edges fully inside `sep` belong to no
    /// component, cf. Section 2 of the paper).
    pub fn edge_components(&self, sep: &BitSet) -> Vec<BitSet> {
        self.vertex_components(sep)
            .iter()
            .map(|comp| self.edges_touching(comp))
            .collect()
    }

    /// `[S]`-components restricted to a sub-universe of edges: components of
    /// the edges in `within` w.r.t. separator `sep`. Used by the top-down
    /// hw algorithm, which recurses on edge components.
    pub fn edge_components_within(&self, sep: &BitSet, within: &BitSet) -> Vec<BitSet> {
        // BFS over edges of `within`: two edges are adjacent if they share a
        // vertex outside `sep`.
        let mut remaining = within.clone();
        let mut out = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        while let Some(start) = remaining.first() {
            remaining.remove(start);
            if self.edges[start].is_subset(sep) {
                continue; // fully covered edge: in no component
            }
            let mut comp = self.empty_edge_set();
            comp.insert(start);
            // frontier of reachable vertices outside sep
            let mut verts = self.edges[start].difference(sep);
            queue.clear();
            queue.extend(verts.iter());
            while let Some(v) = queue.pop() {
                for &e in &self.incidence[v] {
                    if remaining.contains(e) {
                        remaining.remove(e);
                        comp.insert(e);
                        let new = self.edges[e].difference(sep).difference(&verts);
                        for w in new.iter() {
                            verts.insert(w);
                            queue.push(w);
                        }
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// All edges having at least one vertex in `verts`.
    pub fn edges_touching(&self, verts: &BitSet) -> BitSet {
        let mut s = self.empty_edge_set();
        for v in verts.iter() {
            for &e in &self.incidence[v] {
                s.insert(e);
            }
        }
        s
    }

    /// True iff the Gaifman graph is connected (and the hypergraph is
    /// non-empty).
    pub fn is_connected(&self) -> bool {
        self.num_vertices() > 0 && self.vertex_components(&self.empty_vertex_set()).len() == 1
    }

    /// The induced subhypergraph `H[U]`: vertices `U`, edges
    /// `{e ∩ U : e ∈ E(H)} \ {∅}` (deduplicated). Returns the new
    /// hypergraph together with the map from new vertex ids to old ones.
    pub fn induced(&self, verts: &BitSet) -> (Hypergraph, Vec<usize>) {
        let old_ids: Vec<usize> = verts.to_vec();
        let mut new_of_old: FxHashMap<usize, usize> = FxHashMap::default();
        for (new, &old) in old_ids.iter().enumerate() {
            new_of_old.insert(old, new);
        }
        let mut b = HypergraphBuilder::new();
        for &old in &old_ids {
            b.vertex(self.vertex_name(old));
        }
        let mut seen: FxHashMap<Vec<usize>, ()> = FxHashMap::default();
        for (eid, e) in self.edges.iter().enumerate() {
            let inter: Vec<usize> = e
                .iter()
                .filter_map(|v| new_of_old.get(&v).copied())
                .collect();
            if inter.is_empty() || seen.contains_key(&inter) {
                continue;
            }
            seen.insert(inter.clone(), ());
            b.edge_ids(&format!("{}|ind", self.edge_name(eid)), &inter);
        }
        (b.build_allow_isolated(), old_ids)
    }

    /// The Gaifman graph of `H` as a hypergraph whose edges are exactly the
    /// 2-element adjacencies (plus singleton edges for degree-0 vertices,
    /// which cannot occur without isolated vertices).
    pub fn gaifman_graph(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for v in 0..self.num_vertices() {
            b.vertex(self.vertex_name(v));
        }
        let mut k = 0usize;
        for v in 0..self.num_vertices() {
            let mut nb = self.adjacency[v].clone();
            nb.remove(v);
            for w in nb.iter() {
                if w > v {
                    b.edge_ids(&format!("g{k}"), &[v, w]);
                    k += 1;
                }
            }
        }
        b.build_allow_isolated()
    }

    /// Finds some edge cover of `bag` using at most `k` edges, if one
    /// exists. Branch-and-bound on the uncovered vertex with the fewest
    /// incident edges. This is the width-check primitive shared by the
    /// solvers (via `softhw_core::cover`) and the block index's cached
    /// cover-size queries.
    pub fn find_edge_cover(&self, bag: &BitSet, k: usize) -> Option<Vec<usize>> {
        fn rec(h: &Hypergraph, uncovered: &BitSet, k: usize, chosen: &mut Vec<usize>) -> bool {
            // Pivot: uncovered vertex with the fewest incident edges.
            let mut pivot: Option<(usize, usize)> = None;
            for v in uncovered.iter() {
                let deg = h.incident_edges(v).len();
                if pivot.is_none_or(|(_, d)| deg < d) {
                    pivot = Some((v, deg));
                }
            }
            let Some((pivot, _)) = pivot else {
                return true;
            };
            if k == 0 {
                return false;
            }
            for &e in h.incident_edges(pivot) {
                if chosen.contains(&e) {
                    continue;
                }
                let rest = uncovered.difference(h.edge(e));
                chosen.push(e);
                if rec(h, &rest, k - 1, chosen) {
                    return true;
                }
                chosen.pop();
            }
            false
        }
        let mut chosen = Vec::with_capacity(k);
        if rec(self, bag, k, &mut chosen) {
            Some(chosen)
        } else {
            None
        }
    }

    /// Compact `name(v1,v2,..)` rendering of one edge.
    pub fn render_edge(&self, e: usize) -> String {
        let vs: Vec<&str> = self.edges[e].iter().map(|v| self.vertex_name(v)).collect();
        format!("{}({})", self.edge_name(e), vs.join(","))
    }

    /// Renders a vertex set with names, e.g. `{a,b,c}`.
    pub fn render_vertex_set(&self, s: &BitSet) -> String {
        let vs: Vec<&str> = s.iter().map(|v| self.vertex_name(v)).collect();
        format!("{{{}}}", vs.join(","))
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Hypergraph({} vertices, {} edges)",
            self.num_vertices(),
            self.num_edges()
        )?;
        for e in 0..self.num_edges() {
            writeln!(f, "  {}", self.render_edge(e))?;
        }
        Ok(())
    }
}

/// Incremental construction of a [`Hypergraph`].
#[derive(Default)]
pub struct HypergraphBuilder {
    vertex_names: Vec<String>,
    vertex_ids: FxHashMap<String, usize>,
    edge_names: Vec<String>,
    edge_vertices: Vec<Vec<usize>>,
}

impl HypergraphBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh builder with pre-sized tables: room for `vertices` distinct
    /// vertices and `edges` edges before any rehash or reallocation.
    /// Both are capacity hints, not limits.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        HypergraphBuilder {
            vertex_names: Vec::with_capacity(vertices),
            vertex_ids: FxHashMap::with_capacity_and_hasher(vertices, Default::default()),
            edge_names: Vec::with_capacity(edges),
            edge_vertices: Vec::with_capacity(edges),
        }
    }

    /// Interns a vertex by name, returning its id.
    pub fn vertex(&mut self, name: &str) -> usize {
        if let Some(&id) = self.vertex_ids.get(name) {
            return id;
        }
        let id = self.vertex_names.len();
        self.vertex_names.push(name.to_string());
        self.vertex_ids.insert(name.to_string(), id);
        id
    }

    /// Adds an edge given vertex *names* (vertices are interned on the fly).
    pub fn edge(&mut self, name: &str, vertices: &[&str]) -> usize {
        let ids: Vec<usize> = vertices.iter().map(|v| self.vertex(v)).collect();
        self.edge_ids(name, &ids)
    }

    /// Adds an edge given existing vertex ids.
    pub fn edge_ids(&mut self, name: &str, vertices: &[usize]) -> usize {
        let id = self.edge_names.len();
        self.edge_names.push(name.to_string());
        self.edge_vertices.push(vertices.to_vec());
        id
    }

    /// Number of vertices interned so far.
    pub fn num_vertices(&self) -> usize {
        self.vertex_names.len()
    }

    /// Finalises the hypergraph. Panics if any vertex is isolated (the
    /// paper's standing assumption); use
    /// [`HypergraphBuilder::build_allow_isolated`] to opt out.
    pub fn build(self) -> Hypergraph {
        let h = self.build_allow_isolated();
        for v in 0..h.num_vertices() {
            assert!(
                !h.incidence[v].is_empty(),
                "isolated vertex {:?}",
                h.vertex_name(v)
            );
        }
        h
    }

    /// Finalises the hypergraph without the isolated-vertex check.
    pub fn build_allow_isolated(self) -> Hypergraph {
        let n = self.vertex_names.len();
        let mut edges = Vec::with_capacity(self.edge_vertices.len());
        let mut incidence = vec![Vec::new(); n];
        for (eid, vs) in self.edge_vertices.iter().enumerate() {
            let mut set = BitSet::empty(n);
            for &v in vs {
                if set.insert(v) {
                    incidence[v].push(eid);
                }
            }
            edges.push(set);
        }
        let mut adjacency = vec![BitSet::empty(n); n];
        for e in &edges {
            for v in e.iter() {
                adjacency[v].union_with(e);
            }
        }
        Hypergraph {
            vertex_names: self.vertex_names,
            edge_names: self.edge_names,
            edges,
            incidence,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Hypergraph {
        // a-b-c path: edges {a,b}, {b,c}
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["b", "c"]);
        b.build()
    }

    #[test]
    fn builder_basics() {
        let h = path3();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.vertex_by_name("b"), Some(1));
        assert_eq!(h.edge_by_name("e2"), Some(1));
        assert_eq!(h.incident_edges(1), &[0, 1]);
        assert!(h.is_connected());
    }

    #[test]
    #[should_panic(expected = "isolated vertex")]
    fn isolated_vertex_rejected() {
        let mut b = HypergraphBuilder::new();
        b.vertex("lonely");
        b.edge("e", &["a", "b"]);
        b.build();
    }

    #[test]
    fn vertex_components_split_by_separator() {
        let h = path3();
        let sep = h.vset(&["b"]);
        let comps = h.vertex_components(&sep);
        assert_eq!(comps.len(), 2);
        let mut names: Vec<String> = comps.iter().map(|c| h.render_vertex_set(c)).collect();
        names.sort();
        assert_eq!(names, vec!["{a}", "{c}"]);
    }

    #[test]
    fn edge_components_exclude_covered_edges() {
        // Example 1 sanity from the paper: separator {2,3,4,b} of H2 leaves
        // one component not containing the covered edges.
        let h = crate::named::h2();
        let lambda2 = [
            h.edge_by_name("e34").unwrap(),
            h.edge_by_name("e23b").unwrap(),
        ];
        let sep = h.union_of_edges(lambda2);
        let comps = h.edge_components(&sep);
        assert_eq!(comps.len(), 1);
        let uc = h.union_of_edge_set(&comps[0]);
        // ⋃C = V \ {3}
        let mut expect = h.all_vertices();
        expect.remove(h.vertex_by_name("3").unwrap());
        assert_eq!(uc, expect);
    }

    #[test]
    fn edge_components_within_respects_universe() {
        let h = path3();
        let within = BitSet::from_iter(2, [0]); // only edge e1
        let sep = h.vset(&["b"]);
        let comps = h.edge_components_within(&sep, &within);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].to_vec(), vec![0]);
        // with separator covering e1 entirely, no components
        let sep2 = h.vset(&["a", "b"]);
        assert!(h.edge_components_within(&sep2, &within).is_empty());
    }

    #[test]
    fn induced_subhypergraph() {
        let h = path3();
        let (sub, map) = h.induced(&h.vset(&["a", "b"]));
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 2); // {a,b} and {b}
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn gaifman_of_triangle_edge() {
        let mut b = HypergraphBuilder::new();
        b.edge("t", &["x", "y", "z"]);
        let h = b.build();
        let g = h.gaifman_graph();
        assert_eq!(g.num_edges(), 3); // clique on 3 vertices
    }

    #[test]
    fn union_of_edges_matches_manual() {
        let h = path3();
        let u = h.union_of_edges([0, 1]);
        assert_eq!(u, h.all_vertices());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = HypergraphBuilder::new();
        b.edge("e1", &["a", "b"]);
        b.edge("e2", &["c", "d"]);
        let h = b.build();
        assert!(!h.is_connected());
        assert_eq!(h.vertex_components(&h.empty_vertex_set()).len(), 2);
    }
}
