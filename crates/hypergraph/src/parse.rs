//! Parser for the HyperBench-style plain-text hypergraph format used by
//! decomposition tools (det-k-decomp, BalancedGo, log-k-decomp):
//!
//! ```text
//! % comment
//! edge1(v1, v2, v3),
//! edge2(v3, v4).
//! ```
//!
//! Edge and vertex names are arbitrary identifiers (alphanumeric plus
//! `_ ' -`). The trailing period is optional, commas between edges are
//! optional at line breaks.

use crate::fxhash::FxHashSet;
use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use std::fmt;

/// Error with position information raised by [`parse_hypergraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// The 1-indexed `(line, column)` of the error's byte offset in
    /// `src` (the text that was parsed). The column counts bytes from
    /// the start of the line — identifiers in this format are ASCII, so
    /// byte columns and character columns coincide. An offset past the
    /// end of `src` (e.g. an unexpected-EOF error) lands just past the
    /// last line's content.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src.as_bytes()[..self.offset.min(src.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + upto.len() - upto.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        (line, col)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Byte-class bits for the scanner's 256-entry lookup table.
const CLASS_IDENT: u8 = 1;
const CLASS_WS: u8 = 2;

/// The scanner's byte-class table, built once with exactly the character
/// predicates the original `char`-based scanner used (`is_whitespace`,
/// `is_alphanumeric` plus `_ ' -` on the byte interpreted as a Latin-1
/// char), so classification is one indexed load per byte.
fn class_table() -> &'static [u8; 256] {
    static TABLE: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u8; 256];
        for (b, slot) in t.iter_mut().enumerate() {
            let c = b as u8 as char;
            if c.is_alphanumeric() || c == '_' || c == '\'' || c == '-' {
                *slot |= CLASS_IDENT;
            }
            if c.is_whitespace() {
                *slot |= CLASS_WS;
            }
        }
        t
    })
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    class: &'static [u8; 256],
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            class: class_table(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len()
                && self.class[self.src[self.pos] as usize] & CLASS_WS != 0
            {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while self.pos < self.src.len()
            && self.class[self.src[self.pos] as usize] & CLASS_IDENT != 0
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParseError {
                offset: start,
                message: format!(
                    "expected identifier, found {:?}",
                    self.peek().map(|c| c as char)
                ),
            });
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos]).expect("ascii idents"))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }
}

/// Parses the HyperBench text format into a [`Hypergraph`].
///
/// Malformed schemas are rejected with a positioned [`ParseError`] rather
/// than silently normalised: a duplicate edge name would alias two
/// distinct atoms under one name (and break name-based lookups
/// downstream), and a vertex repeated within one edge is almost always a
/// typo for a different vertex — both previously merged silently.
pub fn parse_hypergraph(input: &str) -> Result<Hypergraph, ParseError> {
    // One cheap counting pass sizes every table up front: `(` bounds the
    // edge count, `(` + `,` bounds the vertex occurrences (and therefore
    // the distinct-vertex count), so the builder's maps and the per-edge
    // loop below never rehash or reallocate mid-parse.
    let mut n_opens = 0usize;
    let mut n_commas = 0usize;
    for &byte in input.as_bytes() {
        n_opens += (byte == b'(') as usize;
        n_commas += (byte == b',') as usize;
    }
    let mut cur = Cursor::new(input);
    let mut b = HypergraphBuilder::with_capacity(n_opens + n_commas, n_opens);
    let mut edge_names: FxHashSet<&str> =
        FxHashSet::with_capacity_and_hasher(n_opens, Default::default());
    let mut verts: Vec<&str> = Vec::new();
    loop {
        cur.skip_ws();
        if cur.peek().is_none() {
            break;
        }
        if cur.eat(b'.') {
            cur.skip_ws();
            if cur.peek().is_some() {
                return Err(cur.err("content after terminating '.'"));
            }
            break;
        }
        let name_offset = cur.pos;
        let name = cur.ident()?;
        if !edge_names.insert(name) {
            return Err(ParseError {
                offset: name_offset,
                message: format!("duplicate edge name {name:?}"),
            });
        }
        cur.skip_ws();
        if !cur.eat(b'(') {
            return Err(cur.err("expected '(' after edge name"));
        }
        verts.clear();
        loop {
            cur.skip_ws();
            let vert_offset = cur.pos;
            let vert = cur.ident()?;
            if verts.contains(&vert) {
                return Err(ParseError {
                    offset: vert_offset,
                    message: format!("vertex {vert:?} repeated within edge {name:?}"),
                });
            }
            verts.push(vert);
            cur.skip_ws();
            match cur.bump() {
                Some(b',') => continue,
                Some(b')') => break,
                other => {
                    return Err(cur.err(format!(
                        "expected ',' or ')', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
        b.edge(name, &verts);
        cur.skip_ws();
        // optional comma between edges
        cur.eat(b',');
    }
    Ok(b.build_allow_isolated())
}

/// Renders a hypergraph back into the text format accepted by
/// [`parse_hypergraph`] (useful for interop with external decomposers).
pub fn render_hypergraph(h: &Hypergraph) -> String {
    let mut out = String::new();
    for e in 0..h.num_edges() {
        if e > 0 {
            out.push_str(",\n");
        }
        out.push_str(&h.render_edge(e));
    }
    out.push_str(".\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let h = parse_hypergraph("e1(a,b), e2(b,c).").unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.edge_name(1), "e2");
    }

    #[test]
    fn parse_multiline_with_comments() {
        let src = "% a path\n e1(a, b)\n e2(b, c),\n% tail\n e3(c, d).";
        let h = parse_hypergraph(src).unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 4);
    }

    #[test]
    fn parse_primed_names() {
        let h = parse_hypergraph("e(x', y_2)").unwrap();
        assert!(h.vertex_by_name("x'").is_some());
        assert!(h.vertex_by_name("y_2").is_some());
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_hypergraph("e1(a,)").unwrap_err();
        assert!(err.offset >= 5);
        assert!(parse_hypergraph("e1 a,b)").is_err());
        assert!(parse_hypergraph("e1(a,b). junk").is_err());
    }

    #[test]
    fn line_col_is_one_indexed_per_line() {
        let src = "e1(a,b),\ne2(b,c),\ne2(c,d).";
        let err = parse_hypergraph(src).unwrap_err();
        assert_eq!(err.line_col(src), (3, 1), "duplicate name on line 3");
        let src = "e1(a,b,a)";
        let err = parse_hypergraph(src).unwrap_err();
        assert_eq!(err.line_col(src), (1, 8), "repeated vertex mid-line");
        // An offset at (or past) EOF maps just past the last content.
        let src = "e1(a,b";
        let err = parse_hypergraph(src).unwrap_err();
        assert_eq!(err.line_col(src), (1, 7));
    }

    #[test]
    fn duplicate_edge_names_are_rejected_with_position() {
        let src = "e1(a,b),\ne1(b,c).";
        let err = parse_hypergraph(src).unwrap_err();
        assert_eq!(err.offset, src.find("\ne1").unwrap() + 1);
        assert!(err.message.contains("duplicate edge name"), "{err}");
        assert!(err.message.contains("e1"), "{err}");
    }

    #[test]
    fn repeated_vertex_within_edge_is_rejected_with_position() {
        let src = "e1(a,b,a)";
        let err = parse_hypergraph(src).unwrap_err();
        assert_eq!(err.offset, src.rfind('a').unwrap());
        assert!(err.message.contains("repeated within edge"), "{err}");
        // The same vertex across *different* edges stays legal.
        assert!(parse_hypergraph("e1(a,b), e2(a,c).").is_ok());
    }

    #[test]
    fn roundtrip() {
        let h = crate::named::h2();
        let txt = render_hypergraph(&h);
        let h2 = parse_hypergraph(&txt).unwrap();
        assert_eq!(h2.num_edges(), h.num_edges());
        assert_eq!(h2.num_vertices(), h.num_vertices());
        for e in 0..h.num_edges() {
            assert_eq!(h.edge_name(e), h2.edge_name(e));
            let mut a: Vec<&str> = h.edge(e).iter().map(|v| h.vertex_name(v)).collect();
            let mut b: Vec<&str> = h2.edge(e).iter().map(|v| h2.vertex_name(v)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
