//! Cross-query decomposition cache keyed by structural hypergraph hash.
//!
//! Repeated workloads — the `shw` width sweep re-run per query, a
//! `table1`-style harness decomposing the same schema many times, a
//! service answering many queries over one database — keep presenting the
//! same hypergraph to the solvers. Before this cache, every call rebuilt
//! a [`BlockIndex`] from scratch and re-ran the `[S]`-component BFS for
//! every candidate bag. The [`IndexCache`] interns hypergraphs by their
//! *canonical edge list* (the sorted packed edge bitsets plus the vertex
//! count) and keeps one warm [`BlockIndex`] — arena, components, blocks,
//! unions — per structurally distinct hypergraph, so the second query
//! over a schema pays only a hash probe.
//!
//! Hash collisions are handled, not assumed away: each entry stores its
//! canonical form and a probe compares it before declaring a hit.
//! Two hypergraphs match iff they have the same vertex count and the
//! same multiset of edges *under the same vertex numbering* (the common
//! case for repeated queries, which rebuild the hypergraph the same way);
//! full isomorphism canonicalisation is deliberately out of scope.

use crate::blocks::BlockIndex;
use crate::fxhash::FxHashMap;
use crate::hypergraph::Hypergraph;
use std::sync::Arc;

/// The canonical structural form of a hypergraph: vertex count, edge
/// count, then the packed words of every edge in sorted order. Equal
/// canonical forms ⟺ structurally identical hypergraphs (same vertex
/// numbering).
pub fn canonical_form(h: &Hypergraph) -> Vec<u64> {
    let mut edges: Vec<&[u64]> = (0..h.num_edges()).map(|e| h.edge(e).blocks()).collect();
    edges.sort_unstable();
    let words = edges.first().map_or(0, |w| w.len());
    let mut out = Vec::with_capacity(2 + edges.len() * words);
    out.push(h.num_vertices() as u64);
    out.push(h.num_edges() as u64);
    for e in edges {
        out.extend_from_slice(e);
    }
    out
}

/// Fx-style hash of a canonical form (shared mixing from
/// [`crate::fxhash`]).
fn hash_words(words: &[u64]) -> u64 {
    crate::fxhash::hash_u64s(words)
}

/// Structural hash of a hypergraph (the [`IndexCache`] key).
pub fn structural_hash(h: &Hypergraph) -> u64 {
    hash_words(&canonical_form(h))
}

/// Hit/miss counters of an [`IndexCache`] (exposed for tests and the
/// bench harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexCacheStats {
    /// Probes answered by an existing entry.
    pub hits: u64,
    /// Probes that built a fresh [`BlockIndex`].
    pub misses: u64,
}

struct Entry {
    canon: Vec<u64>,
    index: BlockIndex,
}

/// A cache of warm [`BlockIndex`]es keyed by [`structural_hash`].
#[derive(Default)]
pub struct IndexCache {
    entries: FxHashMap<u64, Vec<Entry>>,
    stats: IndexCacheStats,
}

impl IndexCache {
    /// An empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// Number of distinct hypergraphs cached.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True iff no hypergraph has been cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache statistics so far.
    #[inline]
    pub fn stats(&self) -> IndexCacheStats {
        self.stats
    }

    /// The structural hash and warm [`BlockIndex`] for `h`, building the
    /// index (over a private clone of `h`) on first sight. The returned
    /// hash is stable across calls and can key solver-level result memos.
    pub fn entry(&mut self, h: &Hypergraph) -> (u64, &mut BlockIndex) {
        let canon = canonical_form(h);
        let key = hash_words(&canon);
        let bucket = self.entries.entry(key).or_default();
        if let Some(pos) = bucket.iter().position(|e| e.canon == canon) {
            self.stats.hits += 1;
            return (key, &mut bucket[pos].index);
        }
        self.stats.misses += 1;
        let _span = softhw_obs::span(softhw_obs::stage::INDEX_BUILD);
        bucket.push(Entry {
            canon,
            index: BlockIndex::from_arc(Arc::new(h.clone())),
        });
        let last = bucket.len() - 1;
        (key, &mut bucket[last].index)
    }

    /// Approximate heap footprint in bytes of every cached entry
    /// (canonical forms plus warm indexes).
    pub fn approx_bytes(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|bucket| bucket.iter())
            .map(|e| e.canon.capacity() as u64 * 8 + e.index.approx_bytes())
            .sum()
    }

    /// Drops every index stored under structural hash `hash`, returning
    /// whether anything was removed. This is the eviction hook of
    /// bounded caches layered on top (e.g. `softhw_core`'s
    /// `DecompCache`); hash-colliding entries share a bucket and are
    /// evicted together, which is sound — a future probe simply rebuilds.
    pub fn remove(&mut self, hash: u64) -> bool {
        self.entries.remove(&hash).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn repeated_queries_hit_one_entry() {
        let mut cache = IndexCache::new();
        let h = named::h2();
        let (k1, _) = cache.entry(&h);
        // A structurally identical rebuild (fresh allocation) must hit.
        let h_again = named::h2();
        let (k2, _) = cache.entry(&h_again);
        assert_eq!(k1, k2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn distinct_structures_get_distinct_entries() {
        let mut cache = IndexCache::new();
        cache.entry(&named::h2());
        cache.entry(&named::cycle(5));
        cache.entry(&named::cycle(6));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn cached_index_state_survives_across_probes() {
        let mut cache = IndexCache::new();
        let h = named::cycle(6);
        let sep = h.vset(&["v0", "v3"]);
        {
            let (_, idx) = cache.entry(&h);
            let sid = idx.intern(&sep);
            idx.components(sid);
        }
        let (_, idx) = cache.entry(&h);
        let before = idx.stats();
        let sid = idx.intern(&sep);
        idx.components(sid);
        assert_eq!(idx.stats().comp_hits, before.comp_hits + 1);
    }

    #[test]
    fn removed_entries_rebuild_on_next_probe() {
        let mut cache = IndexCache::new();
        let h = named::h2();
        let (hash, _) = cache.entry(&h);
        assert_eq!(cache.len(), 1);
        assert!(cache.remove(hash));
        assert!(!cache.remove(hash));
        assert_eq!(cache.len(), 0);
        let (hash2, _) = cache.entry(&h);
        assert_eq!(hash, hash2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn canonical_form_ignores_edge_order_only() {
        // Same edges listed in a different order: same canonical form.
        let mut b1 = crate::HypergraphBuilder::new();
        b1.edge("e1", &["a", "b"]);
        b1.edge("e2", &["b", "c"]);
        let mut b2 = crate::HypergraphBuilder::new();
        b2.edge("e2", &["a", "b"]);
        b2.edge("e1", &["b", "c"]);
        let (h1, h2) = (b1.build(), b2.build());
        assert_eq!(canonical_form(&h1), canonical_form(&h2));
        // A genuinely different edge set differs.
        let mut b3 = crate::HypergraphBuilder::new();
        b3.edge("e1", &["a", "b"]);
        b3.edge("e2", &["a", "c"]);
        let h3 = b3.build();
        assert_ne!(canonical_form(&h1), canonical_form(&h3));
    }
}
