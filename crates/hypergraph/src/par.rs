//! Deterministic parallel map over index ranges.
//!
//! The two embarrassingly parallel hot loops of the framework — λ-union
//! enumeration in candidate-bag generation and per-block base checks in
//! Algorithm 1 — fan out over a dense index range, and their results are
//! merged in index order so the output is identical to the serial run.
//!
//! The `parallel` cargo feature enables a `std::thread::scope` based
//! implementation (the build environment carries no rayon; a thread-per-
//! chunk scoped fan-out is all these regular workloads need). Without the
//! feature the same API runs serially, so call sites are written once.

/// Maps `f` over `0..n`, returning results in index order.
///
/// With the `parallel` feature and `n` large enough, the range is split
/// into one contiguous chunk per available core and mapped on scoped
/// threads; otherwise it runs serially. `f` must be pure w.r.t. the
/// index for the output to be deterministic — the merge preserves index
/// order either way.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        // Small ranges are not worth the spawn overhead.
        if threads > 1 && n >= 2 * threads {
            let chunk = n.div_ceil(threads);
            let mut out: Vec<Vec<R>> = Vec::new();
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    let f = &f;
                    handles.push(s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()));
                }
                for h in handles {
                    out.push(h.join().expect("par_map worker panicked"));
                }
            });
            return out.into_iter().flatten().collect();
        }
    }
    (0..n).map(f).collect()
}

/// True iff this build runs [`par_map`] on threads.
pub fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Number of workers a fan-out should target: the available parallelism
/// under the `parallel` feature, `1` otherwise.
pub fn num_workers() -> usize {
    if cfg!(feature = "parallel") {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        1
    }
}

/// Maps `f` over `workers` contiguous chunks of `0..n`, returning the
/// per-chunk results in chunk order. With the `parallel` feature each
/// chunk runs on its own scoped thread; otherwise the chunks run
/// serially. Deterministic either way when `f` is pure.
pub fn par_chunks<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let chunk = n.div_ceil(workers);
    let ranges: Vec<std::ops::Range<usize>> = (0..workers)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .collect();
    #[cfg(feature = "parallel")]
    {
        if workers > 1 {
            let mut out: Vec<R> = Vec::with_capacity(workers);
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(workers);
                for r in ranges.iter().cloned() {
                    let f = &f;
                    handles.push(s.spawn(move || f(r)));
                }
                for h in handles {
                    out.push(h.join().expect("par_chunks worker panicked"));
                }
            });
            return out;
        }
    }
    ranges.into_iter().map(f).collect()
}

/// Runs two independent tasks, concurrently under the `parallel` feature
/// (each on its own scoped thread when more than one worker is
/// available), serially otherwise. Used by the incremental instance
/// build to overlap the closure-mask refresh with the block-table
/// append; both closures must be pure for the output to be
/// deterministic, and the results come back in argument order either
/// way.
pub fn par_join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    #[cfg(feature = "parallel")]
    {
        if num_workers() > 1 {
            return std::thread::scope(|s| {
                let hb = s.spawn(fb);
                let a = fa();
                (a, hb.join().expect("par_join worker panicked"))
            });
        }
    }
    (fa(), fb())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_join_returns_in_argument_order() {
        let (a, b) = par_join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn preserves_index_order() {
        let out = par_map(1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }
}
