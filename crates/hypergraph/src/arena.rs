//! The bag arena: an interner mapping every distinct vertex/edge set to a
//! dense [`BagId`], with word-level set algebra on the interned storage.
//!
//! All decomposition solvers in this workspace operate on *sets over one
//! fixed universe* (the vertices or edges of a single hypergraph). The
//! seed implementation deduplicated candidate bags with
//! `FxHashSet<BitSet>`, allocating and hashing a fresh boxed bitset per
//! candidate. The arena replaces that with:
//!
//! - one flat `Vec<u64>` holding every distinct bag back to back
//!   (`words` blocks per bag), so interning never allocates per bag and
//!   equal bags share one id;
//! - an open-addressing id table (no key duplication — probes compare
//!   against the flat storage directly);
//! - subset / intersection / cardinality tests directly on the packed
//!   words, so the solver hot loops never materialise a [`BitSet`].
//!
//! Ids are dense `u32`s in insertion order, which makes per-bag side
//! tables plain `Vec`s instead of hash maps (see `softhw_core::ctd`).

use crate::bitset::{BitIter, BitSet};

/// Dense identifier of an interned bag within one [`BagArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BagId(pub u32);

impl BagId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// An interner for sets over a fixed universe, with word-level algebra.
#[derive(Clone)]
pub struct BagArena {
    universe: usize,
    words: usize,
    storage: Vec<u64>,
    /// Open-addressing table of ids; `EMPTY_SLOT` marks a free slot.
    table: Vec<u32>,
    mask: usize,
}

impl BagArena {
    /// Creates an arena for sets over `0..universe`.
    pub fn new(universe: usize) -> Self {
        let cap = 64;
        BagArena {
            universe,
            words: universe.div_ceil(64).max(1),
            storage: Vec::new(),
            table: vec![EMPTY_SLOT; cap],
            mask: cap - 1,
        }
    }

    /// The universe size this arena was created for.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of `u64` words per bag.
    #[inline]
    pub fn words_per_bag(&self) -> usize {
        self.words
    }

    /// Number of distinct bags interned so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.storage.len() / self.words
    }

    /// True iff no bag has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Approximate heap footprint in bytes (packed bag storage plus the
    /// open-addressing id table). Feeds the service's
    /// `bytes_per_cached_schema` memory stat.
    pub fn approx_bytes(&self) -> u64 {
        (self.storage.capacity() * 8 + self.table.capacity() * 4) as u64
            + std::mem::size_of::<Self>() as u64
    }

    /// The packed words of bag `id`.
    #[inline]
    pub fn words(&self, id: BagId) -> &[u64] {
        let start = id.idx() * self.words;
        &self.storage[start..start + self.words]
    }

    #[inline]
    fn hash_words(words: &[u64]) -> u64 {
        crate::fxhash::hash_u64s(words)
    }

    /// The hash [`BagArena::intern_words_hashed`] expects for `words`.
    /// Exposed so parallel build phases can precompute intern hashes on
    /// worker threads ([`crate::par::par_map`]) and leave only the table
    /// probe on the serial path.
    #[inline]
    pub fn words_hash(words: &[u64]) -> u64 {
        Self::hash_words(words)
    }

    /// Interns raw words (must be `words_per_bag` long); returns the id,
    /// allocating a new one only for unseen content.
    pub fn intern_words(&mut self, words: &[u64]) -> BagId {
        self.intern_words_hashed(words, Self::hash_words(words))
    }

    /// [`BagArena::intern_words`] with the hash precomputed by
    /// [`BagArena::words_hash`] (the caller vouches the hash matches).
    pub fn intern_words_hashed(&mut self, words: &[u64], hash: u64) -> BagId {
        debug_assert_eq!(words.len(), self.words);
        debug_assert_eq!(hash, Self::hash_words(words));
        if self.len() * 2 >= self.table.len() {
            self.grow();
        }
        let mut slot = (hash as usize) & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY_SLOT {
                let new_id = self.len() as u32;
                self.storage.extend_from_slice(words);
                self.table[slot] = new_id;
                return BagId(new_id);
            }
            if self.words(BagId(id)) == words {
                return BagId(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Interns a [`BitSet`] (must be over this arena's universe).
    pub fn intern(&mut self, set: &BitSet) -> BagId {
        self.intern_words(set.blocks())
    }

    /// Looks a set up without interning it.
    pub fn lookup_words(&self, words: &[u64]) -> Option<BagId> {
        debug_assert_eq!(words.len(), self.words);
        let mut slot = (Self::hash_words(words) as usize) & self.mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY_SLOT {
                return None;
            }
            if self.words(BagId(id)) == words {
                return Some(BagId(id));
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        self.grow_to(self.table.len() * 2);
    }

    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        self.mask = cap - 1;
        let mut table = vec![EMPTY_SLOT; cap];
        for id in 0..self.len() as u32 {
            let mut slot = (Self::hash_words(self.words(BagId(id))) as usize) & self.mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & self.mask;
            }
            table[slot] = id;
        }
        self.table = table;
    }

    /// Pre-sizes the arena for about `additional` more bags: reserves the
    /// packed storage and grows the intern table to its final
    /// power-of-two size up front, so a bulk enumeration (e.g. the
    /// `|E|^k`-scale separator sweep of the Soft builder) never rehashes
    /// mid-loop.
    pub fn reserve(&mut self, additional: usize) {
        self.storage.reserve(additional.saturating_mul(self.words));
        let needed = (self.len() + additional).saturating_mul(2);
        if needed > self.table.len() {
            self.grow_to(needed.next_power_of_two());
        }
    }

    /// Materialises bag `id` as a [`BitSet`] view.
    pub fn to_bitset(&self, id: BagId) -> BitSet {
        BitSet::from_blocks(self.words(id))
    }

    /// `a ⊆ b`, word-level.
    #[inline]
    pub fn is_subset(&self, a: BagId, b: BagId) -> bool {
        words_subset(self.words(a), self.words(b))
    }

    /// `a ∩ b ≠ ∅`, word-level.
    #[inline]
    pub fn intersects(&self, a: BagId, b: BagId) -> bool {
        words_intersect(self.words(a), self.words(b))
    }

    /// Cardinality of bag `id`.
    #[inline]
    pub fn card(&self, id: BagId) -> usize {
        self.words(id).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff bag `id` is the empty set.
    #[inline]
    pub fn bag_is_empty(&self, id: BagId) -> bool {
        self.words(id).iter().all(|&w| w == 0)
    }

    /// Interns `a ∪ b`.
    pub fn union(&mut self, a: BagId, b: BagId) -> BagId {
        let mut buf = self.words(a).to_vec();
        words_union_into(self.words(b), &mut buf);
        self.intern_words(&buf)
    }

    /// Interns `a ∩ b`.
    pub fn intersection(&mut self, a: BagId, b: BagId) -> BagId {
        let mut buf = self.words(a).to_vec();
        words_intersect_into(self.words(b), &mut buf);
        self.intern_words(&buf)
    }

    /// Copies bag `id` into `buf` (resizing it to `words_per_bag`).
    pub fn read_into(&self, id: BagId, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend_from_slice(self.words(id));
    }

    /// Unions bag `id` into `buf` (which must be `words_per_bag` long).
    #[inline]
    pub fn union_into(&self, id: BagId, buf: &mut [u64]) {
        words_union_into(self.words(id), buf);
    }

    /// Interns the empty set.
    pub fn empty_bag(&mut self) -> BagId {
        let buf = vec![0u64; self.words];
        self.intern_words(&buf)
    }

    /// Iterates the elements of bag `id` in ascending order.
    pub fn iter(&self, id: BagId) -> BitIter<'_> {
        words_iter(self.words(id))
    }

    /// Compares two bags by content (same order as [`BitSet`]'s `Ord`).
    #[inline]
    pub fn cmp_bags(&self, a: BagId, b: BagId) -> std::cmp::Ordering {
        self.words(a).cmp(self.words(b))
    }

    /// Copies a bag from another arena over the same universe.
    pub fn copy_from(&mut self, other: &BagArena, id: BagId) -> BagId {
        debug_assert_eq!(self.words, other.words);
        self.intern_words(other.words(id))
    }

    /// A serialisable snapshot of this arena: universe size plus the flat
    /// word storage (bags back to back in id order). Ids are dense and
    /// assigned in insertion order, so the snapshot *is* the id table —
    /// bag `i` lives at words `[i·wpb, (i+1)·wpb)`. This is what makes
    /// decomposition state cheap to frame onto a wire: no pointer
    /// chasing, no per-bag headers.
    pub fn snapshot(&self) -> ArenaSnapshot {
        ArenaSnapshot {
            universe: self.universe,
            storage: self.storage.clone(),
        }
    }

    /// Rebuilds an arena from a snapshot, re-deriving the probe table.
    /// Ids are preserved exactly: bag `i` of the snapshot is bag `i` of
    /// the rebuilt arena. Returns `None` if the storage length is not a
    /// multiple of the word width (a corrupt frame).
    pub fn from_snapshot(snap: &ArenaSnapshot) -> Option<BagArena> {
        let mut arena = BagArena::new(snap.universe);
        if !snap.storage.len().is_multiple_of(arena.words) {
            return None;
        }
        for chunk in snap.storage.chunks_exact(arena.words) {
            arena.intern_words(chunk);
        }
        // Duplicate chunks would have collapsed to one id, breaking the
        // id-preservation contract — a snapshot of a real arena never
        // contains duplicates, so treat that as corruption too.
        if arena.storage.len() != snap.storage.len() {
            return None;
        }
        Some(arena)
    }
}

/// A flat, serialisable image of a [`BagArena`]: the universe size plus
/// every interned bag's words back to back in id order. See
/// [`BagArena::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaSnapshot {
    /// The universe size the arena was created for.
    pub universe: usize,
    /// Flat bag storage, `words_per_bag` words per bag, id order.
    pub storage: Vec<u64>,
}

impl ArenaSnapshot {
    /// Words per bag for this snapshot's universe.
    pub fn words_per_bag(&self) -> usize {
        self.universe.div_ceil(64).max(1)
    }

    /// Number of bags in the snapshot.
    pub fn len(&self) -> usize {
        self.storage.len() / self.words_per_bag()
    }

    /// True iff the snapshot holds no bags.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// The words of bag `i`.
    pub fn words(&self, i: usize) -> &[u64] {
        let wpb = self.words_per_bag();
        &self.storage[i * wpb..(i + 1) * wpb]
    }
}

/// Number of high bits of a [`BagId`] reserved for the shard index in a
/// [`ShardedArena`]'s id space.
pub const SHARD_BITS: u32 = 8;
const SHARD_SHIFT: u32 = 32 - SHARD_BITS;
const LOCAL_MASK: u32 = (1 << SHARD_SHIFT) - 1;
/// Maximum number of bags a single shard may hold.
pub const MAX_BAGS_PER_SHARD: usize = LOCAL_MASK as usize + 1;
/// Maximum number of shards a [`ShardedArena`] may combine.
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// A read-only view over per-worker [`BagArena`]s with a partitioned id
/// space: the top [`SHARD_BITS`] bits of a [`BagId`] select the shard,
/// the low bits the bag within it.
///
/// Parallel enumeration workers each own one shard exclusively, so id
/// assignment needs no synchronisation, and the merge is plain
/// concatenation — [`ShardedArena::from_shards`] moves the worker arenas
/// in without touching their storage, unlike the previous merge that
/// re-interned every worker-local bag into the shared arena. Content
/// duplicates *across* shards are removed afterwards by
/// [`ShardedArena::sorted_unique_ids`], during the content sort the
/// enumeration output needs anyway.
pub struct ShardedArena {
    universe: usize,
    shards: Vec<BagArena>,
}

/// Why worker arenas could not be combined into one sharded id space.
/// Encoding a shard index or local id that does not fit its bit field
/// would silently alias another bag's [`BagId`] (high-bit wraparound), so
/// [`ShardedArena::try_from_shards`] rejects the inputs instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// No worker arenas were supplied.
    NoShards,
    /// More worker arenas than [`MAX_SHARDS`] shard ids.
    TooManyShards {
        /// Number of shards supplied.
        got: usize,
    },
    /// A worker arena holds more bags than [`MAX_BAGS_PER_SHARD`] local
    /// ids.
    ShardOverflow {
        /// Index of the overflowing shard.
        shard: usize,
        /// Number of bags it holds.
        len: usize,
    },
    /// Worker arenas disagree on the universe size.
    UniverseMismatch {
        /// Index of the first disagreeing shard.
        shard: usize,
    },
}

impl ShardError {
    /// A short static description (the `what` of enumeration-limit
    /// errors layered on top).
    pub fn what(&self) -> &'static str {
        match self {
            ShardError::NoShards => "no enumeration shards",
            ShardError::TooManyShards { .. } => "shard count exceeds MAX_SHARDS",
            ShardError::ShardOverflow { .. } => "shard exceeds MAX_BAGS_PER_SHARD",
            ShardError::UniverseMismatch { .. } => "shards disagree on universe",
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "sharded arena needs at least one shard"),
            ShardError::TooManyShards { got } => {
                write!(f, "{got} shards exceed the {MAX_SHARDS}-shard id space")
            }
            ShardError::ShardOverflow { shard, len } => write!(
                f,
                "shard {shard} holds {len} bags, exceeding the \
                 {MAX_BAGS_PER_SHARD}-bag local id space"
            ),
            ShardError::UniverseMismatch { shard } => {
                write!(f, "shard {shard} was built over a different universe")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl ShardedArena {
    /// Wraps worker-local arenas as the shards of one id space,
    /// validating that every shard and per-shard bag count fits the id
    /// encoding. A shard that outgrew [`MAX_BAGS_PER_SHARD`] (or more
    /// than [`MAX_SHARDS`] workers) would wrap into another shard's id
    /// range and silently corrupt [`BagId`]s, so it is rejected here —
    /// enumeration callers surface this as a limit error and the caller
    /// retries serially or with tighter limits.
    pub fn try_from_shards(shards: Vec<BagArena>) -> Result<Self, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::NoShards);
        }
        if shards.len() > MAX_SHARDS {
            return Err(ShardError::TooManyShards { got: shards.len() });
        }
        let universe = shards[0].universe();
        for (i, s) in shards.iter().enumerate() {
            if s.universe() != universe {
                return Err(ShardError::UniverseMismatch { shard: i });
            }
            if s.len() > MAX_BAGS_PER_SHARD {
                return Err(ShardError::ShardOverflow {
                    shard: i,
                    len: s.len(),
                });
            }
        }
        Ok(ShardedArena { universe, shards })
    }

    /// [`ShardedArena::try_from_shards`], panicking on invalid shards.
    /// Kept for call sites whose shard counts are statically bounded
    /// (tests, fixed fan-outs); enumeration paths use the fallible form.
    pub fn from_shards(shards: Vec<BagArena>) -> Self {
        match Self::try_from_shards(shards) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// The universe size the shards were created for.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Total number of bags across all shards (duplicates across shards
    /// counted separately).
    pub fn len(&self) -> usize {
        self.shards.iter().map(BagArena::len).sum()
    }

    /// True iff no shard holds a bag.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encodes `(shard, local)` as a sharded [`BagId`].
    #[inline]
    pub fn encode(shard: usize, local: usize) -> BagId {
        debug_assert!(shard < MAX_SHARDS && local < MAX_BAGS_PER_SHARD);
        BagId(((shard as u32) << SHARD_SHIFT) | local as u32)
    }

    /// The shard index of a sharded id.
    #[inline]
    pub fn shard_of(id: BagId) -> usize {
        (id.0 >> SHARD_SHIFT) as usize
    }

    /// The packed words of sharded bag `id`.
    #[inline]
    pub fn words(&self, id: BagId) -> &[u64] {
        self.shards[(id.0 >> SHARD_SHIFT) as usize].words(BagId(id.0 & LOCAL_MASK))
    }

    /// All ids, shard-major in per-shard insertion order.
    pub fn all_ids(&self) -> Vec<BagId> {
        let mut out = Vec::with_capacity(self.len());
        for (s, shard) in self.shards.iter().enumerate() {
            for i in 0..shard.len() {
                out.push(Self::encode(s, i));
            }
        }
        out
    }

    /// Compares two sharded bags by content.
    #[inline]
    pub fn cmp_bags(&self, a: BagId, b: BagId) -> std::cmp::Ordering {
        self.words(a).cmp(self.words(b))
    }

    /// Ids of all distinct bag contents, sorted by content; cross-shard
    /// duplicates keep the representative from the lowest shard. This is
    /// the whole merge step of the sharded enumeration: no interning, one
    /// sort plus an adjacent dedup.
    pub fn sorted_unique_ids(&self) -> Vec<BagId> {
        let mut ids = self.all_ids();
        ids.sort_unstable_by(|&a, &b| self.words(a).cmp(self.words(b)).then(a.0.cmp(&b.0)));
        ids.dedup_by(|a, b| self.words(*a) == self.words(*b));
        ids
    }
}

/// A dense membership set over [`BagId`]s of one arena — the "have I
/// already emitted this bag" structure of the enumeration loops. Ids are
/// dense and monotonically assigned, so a growable bool vector beats a
/// hash set: the common case (a bag new to the arena) is a push past the
/// end, no hashing at all.
#[derive(Default)]
pub struct IdSet {
    flags: Vec<bool>,
}

impl IdSet {
    /// An empty set.
    pub fn new() -> Self {
        IdSet::default()
    }

    /// Approximate heap footprint in bytes (the flag array).
    pub fn approx_bytes(&self) -> u64 {
        self.flags.capacity() as u64
    }

    /// An empty set with room for ids up to about `n` before the flag
    /// vector reallocates.
    pub fn with_capacity(n: usize) -> Self {
        IdSet {
            flags: Vec::with_capacity(n),
        }
    }

    /// Inserts `id`; returns `true` iff it was not present.
    #[inline]
    pub fn insert(&mut self, id: BagId) -> bool {
        let i = id.idx();
        if i >= self.flags.len() {
            self.flags.resize(i + 1, false);
        }
        if self.flags[i] {
            false
        } else {
            self.flags[i] = true;
            true
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: BagId) -> bool {
        self.flags.get(id.idx()).copied().unwrap_or(false)
    }
}

/// `a ⊆ b` on raw word slices.
#[inline]
pub fn words_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// `a ∩ b ≠ ∅` on raw word slices.
#[inline]
pub fn words_intersect(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// `dst |= src` on raw word slices.
#[inline]
pub fn words_union_into(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst &= src` on raw word slices.
#[inline]
pub fn words_intersect_into(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// True iff all words are zero.
#[inline]
pub fn words_empty(words: &[u64]) -> bool {
    words.iter().all(|&w| w == 0)
}

/// Population count over raw words.
#[inline]
pub fn words_card(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Iterates set bits of raw words in ascending order.
pub fn words_iter(words: &[u64]) -> BitIter<'_> {
    BitIter::over(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_intern_matches_plain_intern() {
        let mut a = BagArena::new(100);
        let mut b = BagArena::new(100);
        for i in 0..50 {
            let s = BitSet::from_iter(100, [i, (i * 13) % 100]);
            let plain = a.intern(&s);
            let hashed = b.intern_words_hashed(s.blocks(), BagArena::words_hash(s.blocks()));
            assert_eq!(plain, hashed);
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn interning_dedups() {
        let mut a = BagArena::new(100);
        let s1 = BitSet::from_iter(100, [1, 64, 99]);
        let s2 = BitSet::from_iter(100, [1, 64, 99]);
        let s3 = BitSet::from_iter(100, [2]);
        let i1 = a.intern(&s1);
        let i2 = a.intern(&s2);
        let i3 = a.intern(&s3);
        assert_eq!(i1, i2);
        assert_ne!(i1, i3);
        assert_eq!(a.len(), 2);
        assert_eq!(a.to_bitset(i1), s1);
    }

    #[test]
    fn ids_are_dense_and_stable_across_growth() {
        let mut a = BagArena::new(256);
        let mut ids = Vec::new();
        for i in 0..500 {
            let s = BitSet::from_iter(256, [i % 256, (i * 7) % 256]);
            ids.push((a.intern(&s), s));
        }
        for (id, s) in &ids {
            assert_eq!(&a.to_bitset(*id), s);
            assert_eq!(a.lookup_words(s.blocks()), Some(*id));
        }
    }

    #[test]
    fn word_ops_match_bitset_ops() {
        let mut a = BagArena::new(70);
        let x = BitSet::from_iter(70, [0, 3, 65]);
        let y = BitSet::from_iter(70, [3, 65, 69]);
        let (ix, iy) = (a.intern(&x), a.intern(&y));
        assert!(!a.is_subset(ix, iy));
        assert!(a.intersects(ix, iy));
        assert_eq!(a.card(ix), 3);
        let u = a.union(ix, iy);
        assert_eq!(a.to_bitset(u), x.union(&y));
        let i = a.intersection(ix, iy);
        assert_eq!(a.to_bitset(i), x.intersection(&y));
        let sub = a.intern(&BitSet::from_iter(70, [3]));
        assert!(a.is_subset(sub, ix));
    }

    #[test]
    fn empty_bag_and_iter() {
        let mut a = BagArena::new(10);
        let e = a.empty_bag();
        assert!(a.bag_is_empty(e));
        let s = a.intern(&BitSet::from_iter(10, [2, 5, 9]));
        assert_eq!(a.iter(s).collect::<Vec<_>>(), vec![2, 5, 9]);
    }

    #[test]
    fn copy_between_arenas() {
        let mut a = BagArena::new(40);
        let mut b = BagArena::new(40);
        let s = BitSet::from_iter(40, [7, 39]);
        let ia = a.intern(&s);
        let ib = b.copy_from(&a, ia);
        assert_eq!(b.to_bitset(ib), s);
    }

    #[test]
    fn sharded_merge_dedups_across_shards() {
        // Three worker shards with overlapping content: the merged sorted
        // id list must equal the sorted distinct contents, and every id
        // must resolve into its shard's storage.
        let universe = 130;
        let mut shards: Vec<BagArena> = (0..3).map(|_| BagArena::new(universe)).collect();
        let mut reference: Vec<BitSet> = Vec::new();
        for (s, shard) in shards.iter_mut().enumerate() {
            for i in 0..40 {
                let set =
                    BitSet::from_iter(universe, [(i * 7 + s) % universe, (i + 64) % universe]);
                shard.intern(&set);
                reference.push(set);
            }
        }
        reference.sort_unstable();
        reference.dedup();
        let sharded = ShardedArena::from_shards(shards);
        assert_eq!(sharded.len(), 3 * 40 - duplicates_within(&sharded));
        let ids = sharded.sorted_unique_ids();
        let merged: Vec<BitSet> = ids
            .iter()
            .map(|&id| BitSet::from_blocks(sharded.words(id)))
            .collect();
        assert_eq!(merged, reference);
        // Encoding round-trips.
        for &id in &ids {
            let shard = ShardedArena::shard_of(id);
            assert!(shard < 3);
        }
    }

    #[test]
    fn try_from_shards_rejects_overflow() {
        // Shard-count overflow.
        let many: Vec<BagArena> = (0..MAX_SHARDS + 1).map(|_| BagArena::new(8)).collect();
        assert_eq!(
            ShardedArena::try_from_shards(many).err(),
            Some(ShardError::TooManyShards {
                got: MAX_SHARDS + 1
            })
        );
        // Universe mismatch.
        let mixed = vec![BagArena::new(8), BagArena::new(9)];
        assert_eq!(
            ShardedArena::try_from_shards(mixed).err(),
            Some(ShardError::UniverseMismatch { shard: 1 })
        );
        // Empty input.
        assert_eq!(
            ShardedArena::try_from_shards(Vec::new()).err(),
            Some(ShardError::NoShards)
        );
        // Valid shards still combine.
        assert!(ShardedArena::try_from_shards(vec![BagArena::new(8)]).is_ok());
    }

    #[test]
    fn snapshot_roundtrips_preserving_ids() {
        let mut a = BagArena::new(130);
        let mut ids = Vec::new();
        for i in 0..60 {
            let s = BitSet::from_iter(130, [i, (i * 11) % 130]);
            ids.push((a.intern(&s), s));
        }
        let snap = a.snapshot();
        assert_eq!(snap.len(), a.len());
        let b = BagArena::from_snapshot(&snap).expect("valid snapshot");
        assert_eq!(b.len(), a.len());
        for (id, s) in &ids {
            assert_eq!(&b.to_bitset(*id), s, "ids must be preserved");
            assert_eq!(b.lookup_words(s.blocks()), Some(*id));
        }
        // Corrupt frames are rejected, not mis-decoded.
        let mut bad = snap.clone();
        bad.storage.pop();
        assert!(BagArena::from_snapshot(&bad).is_none());
        let mut dup = snap.clone();
        let first: Vec<u64> = dup.words(0).to_vec();
        dup.storage.extend_from_slice(&first);
        assert!(BagArena::from_snapshot(&dup).is_none());
    }

    fn duplicates_within(sharded: &ShardedArena) -> usize {
        // Count content duplicates across shards (within-shard dedup is
        // the BagArena's own job).
        let all = sharded.all_ids();
        let mut contents: Vec<&[u64]> = all.iter().map(|&id| sharded.words(id)).collect();
        contents.sort_unstable();
        let before = contents.len();
        contents.dedup();
        before - contents.len()
    }
}
