//! The concrete hypergraphs used throughout the paper, plus parametric
//! families (cycles, grids) used in examples, tests and benchmarks.

use crate::hypergraph::{Hypergraph, HypergraphBuilder};

/// The hypergraph `H2` of Example 1 / Figure 1a (originally from Adler,
/// Gottlob & Grohe): the standard witness for `ghw = 2 < hw = 3`.
/// The paper shows `shw(H2) = 2` as well.
///
/// Edges: `{1,8}, {3,4}, {1,2,a}, {4,5,a}, {6,7,a}, {2,3,b}, {5,6,b},
/// {7,8,b}`.
pub fn h2() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for v in ["1", "2", "3", "4", "5", "6", "7", "8", "a", "b"] {
        b.vertex(v);
    }
    b.edge("e18", &["1", "8"]);
    b.edge("e34", &["3", "4"]);
    b.edge("e12a", &["1", "2", "a"]);
    b.edge("e45a", &["4", "5", "a"]);
    b.edge("e67a", &["6", "7", "a"]);
    b.edge("e23b", &["2", "3", "b"]);
    b.edge("e56b", &["5", "6", "b"]);
    b.edge("e78b", &["7", "8", "b"]);
    b.build()
}

const GRID_G: [&str; 4] = ["g11", "g12", "g21", "g22"];
const GRID_H: [&str; 4] = ["h11", "h12", "h21", "h22"];
const RING_V: [&str; 10] = ["0", "1", "2", "3", "4", "0'", "1'", "2'", "3'", "4'"];

fn h3_base(with_3p4p: bool) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for v in GRID_G.iter().chain(GRID_H.iter()).chain(RING_V.iter()) {
        b.vertex(v);
    }
    // {w, v} for every w in G ∪ H and v in V
    for w in GRID_G.iter().chain(GRID_H.iter()) {
        for v in RING_V.iter() {
            b.edge(&format!("p_{w}_{v}"), &[w, v]);
        }
    }
    b.edge("e24", &["2", "4"]);
    b.edge("e2p4p", &["2'", "4'"]);
    b.edge("e00p", &["0", "0'"]);
    b.edge("e01", &["0", "1"]);
    b.edge("e12", &["1", "2"]);
    b.edge("e03", &["0", "3"]);
    b.edge("e23", &["2", "3"]);
    b.edge("e0p1p", &["0'", "1'"]);
    b.edge("e1p2p", &["1'", "2'"]);
    b.edge("e0p3p", &["0'", "3'"]);
    b.edge("e2p3p", &["2'", "3'"]);
    if with_3p4p {
        b.edge("e3p4p", &["3'", "4'"]);
    }
    b.edge("hor1", &["g11", "g12", "h11", "h12", "4'"]);
    b.edge("hor2", &["g21", "g22", "h21", "h22", "3"]);
    b.edge("vert1", &["g11", "g21", "h11", "h21", "4"]);
    b.edge("vert2", &["g12", "g22", "h12", "h22", "3'"]);
    b.build()
}

/// The hypergraph `H3` of Appendix A.2 (Figure 8, adapted from Adler):
/// `ghw(H3) = shw(H3) = 3` and `hw(H3) = 4`.
pub fn h3() -> Hypergraph {
    h3_base(false)
}

/// The hypergraph `H'3` of Example 2 (Figure 2a): `H3` plus the edge
/// `{3',4'}`. Satisfies `ghw = shw1 = 3` and `shw = hw = 4`.
pub fn h3_prime() -> Hypergraph {
    h3_base(true)
}

/// The `n`-cycle `C_n` as a hypergraph with edges `{v_i, v_{i+1 mod n}}`.
/// For `n >= 4`: `hw(C_n) = 2`; for `n = 5` the paper notes
/// `ConCov-hw(C5) = ConCov-shw(C5) = ConCov-ghw(C5) = 3`.
pub fn cycle(n: usize) -> Hypergraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = HypergraphBuilder::new();
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    for i in 0..n {
        b.edge(
            &format!("e{i}"),
            &[names[i].as_str(), names[(i + 1) % n].as_str()],
        );
    }
    b.build()
}

/// The 4-cycle query hypergraph of Example 3:
/// `q = R(w,x) ∧ S(x,y) ∧ T(y,z) ∧ U(z,w)`.
pub fn four_cycle_query() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    b.edge("R", &["w", "x"]);
    b.edge("S", &["x", "y"]);
    b.edge("T", &["y", "z"]);
    b.edge("U", &["z", "w"]);
    b.build()
}

/// The 6-variable query hypergraph of Example 4 (distributed setting):
/// `q = R(v1,v2) ∧ S(v2,v4) ∧ T(v3,v4) ∧ U(v1,v3) ∧ V(v1,v5) ∧ W(v4,v6)`.
/// Returns the hypergraph together with the partition labelling of
/// Example 4 (`R,U,V -> 0`; `S,T,W -> 1`).
pub fn example4_query() -> (Hypergraph, Vec<usize>) {
    let mut b = HypergraphBuilder::new();
    b.edge("R", &["v1", "v2"]);
    b.edge("S", &["v2", "v4"]);
    b.edge("T", &["v3", "v4"]);
    b.edge("U", &["v1", "v3"]);
    b.edge("V", &["v1", "v5"]);
    b.edge("W", &["v4", "v6"]);
    (b.build(), vec![0, 1, 1, 0, 0, 1])
}

/// An `n × m` grid graph (each grid edge a 2-element hyperedge).
/// Treewidth-style hard instance; `hw = ghw = shw` grows with `min(n,m)`.
pub fn grid(n: usize, m: usize) -> Hypergraph {
    assert!(n >= 1 && m >= 1);
    let mut b = HypergraphBuilder::new();
    let name = |i: usize, j: usize| format!("x{i}_{j}");
    for i in 0..n {
        for j in 0..m {
            if j + 1 < m {
                b.edge(&format!("h{i}_{j}"), &[&name(i, j), &name(i, j + 1)]);
            }
            if i + 1 < n {
                b.edge(&format!("v{i}_{j}"), &[&name(i, j), &name(i + 1, j)]);
            }
        }
    }
    b.build()
}

/// A "k-star-of-triangles": `t` triangles sharing one centre vertex.
/// Acyclic-ish benchmark instance with hw = 1 only for t = 0; hw = 2 beyond.
pub fn triangle_star(t: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for i in 0..t.max(1) {
        let u = format!("u{i}");
        let w = format!("w{i}");
        b.edge(&format!("c{i}"), &["c", &u]);
        b.edge(&format!("d{i}"), &["c", &w]);
        b.edge(&format!("t{i}"), &[&u, &w]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_shape() {
        let h = h2();
        assert_eq!(h.num_vertices(), 10);
        assert_eq!(h.num_edges(), 8);
        assert!(h.is_connected());
    }

    #[test]
    fn h3_and_h3_prime_shape() {
        let h = h3();
        // 8*10 pair edges + 2 + 1 + 4 + 4 + 4 big = 95
        assert_eq!(h.num_vertices(), 18);
        assert_eq!(h.num_edges(), 95);
        let hp = h3_prime();
        assert_eq!(hp.num_edges(), 96);
        assert!(hp.edge_by_name("e3p4p").is_some());
        assert!(h.edge_by_name("e3p4p").is_none());
    }

    #[test]
    fn cycle_shape() {
        let c5 = cycle(5);
        assert_eq!(c5.num_vertices(), 5);
        assert_eq!(c5.num_edges(), 5);
        assert!(c5.is_connected());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // horizontal 3*3 + vertical 2*4 = 17
        assert_eq!(g.num_edges(), 17);
    }

    #[test]
    fn example4_partitions_align_with_edges() {
        let (h, parts) = example4_query();
        assert_eq!(parts.len(), h.num_edges());
    }

    #[test]
    fn triangle_star_connected() {
        assert!(triangle_star(3).is_connected());
    }
}
