//! Hypergraph substrate for the soft hypertree width framework.
//!
//! This crate provides the combinatorial ground floor of the repository:
//! dense bitsets, the [`BagArena`] interner with word-level set algebra
//! that all solvers route candidate-bag storage through, the
//! [`BlockIndex`] cache of `[S]`-components and blocks shared across
//! solver calls, the [`Hypergraph`] type with the `[S]`-connectivity
//! machinery of the paper's Section 2, a parser for the HyperBench text
//! format, the named hypergraphs that appear in the paper (`H2`, `H3`,
//! `H'3`, cycles, the example queries), and random generators used by the
//! property tests and benchmarks.

#![warn(missing_docs)]

pub mod arena;
pub mod bitset;
pub mod blocks;
pub mod cache;
pub mod csr;
pub mod fxhash;
#[allow(clippy::module_inception)]
pub mod hypergraph;
pub mod named;
pub mod pack;
pub mod par;
pub mod parse;
pub mod random;
pub mod reduce;
pub mod stats;

pub use arena::{ArenaSnapshot, BagArena, BagId, ShardError, ShardedArena};
pub use bitset::BitSet;
pub use blocks::{BlockIndex, BlockIndexStats};
pub use cache::{structural_hash, IndexCache, IndexCacheStats};
pub use csr::Csr;
pub use fxhash::{FxHashMap, FxHashSet};
pub use hypergraph::{Hypergraph, HypergraphBuilder};
pub use parse::{parse_hypergraph, render_hypergraph, ParseError};
pub use reduce::{reduce, reduce_no_peel, ReduceEvent, ReducePiece, ReduceStats, Reduction};
