//! A minimal FxHash-style hasher.
//!
//! The decomposition algorithms key hash maps on bitsets and small integer
//! tuples. SipHash (std's default) is unnecessarily slow for these
//! HashDoS-irrelevant internal maps; the approved dependency list carries no
//! fast-hash crate, so we inline the ~40-line Firefox/rustc multiply-rotate
//! hash here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" multiply-rotate hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Fx-hashes a stream of `u64`s — the shared mixing behind the arena's
/// bag interner and the structural/bag-set cache keys. One definition so
/// the mixing can only change in one place.
#[inline]
pub fn hash_u64_iter(items: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FxHasher::default();
    for i in items {
        h.add_to_hash(i);
    }
    h.finish()
}

/// [`hash_u64_iter`] over a word slice.
#[inline]
pub fn hash_u64s(words: &[u64]) -> u64 {
    hash_u64_iter(words.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.get(&2), None);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Not required to differ, but must not panic and must be stable.
        let _ = (a.finish(), b.finish());
    }
}
