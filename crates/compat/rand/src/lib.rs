//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`Rng::gen_range`] over integer/float ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`].
//!
//! The build environment has no registry access, so this ~100-line
//! deterministic replacement (xoshiro256++ core) stands in for the real
//! crate. It is *not* cryptographically secure and is only meant for the
//! seeded generators, samplers, and tests in this repository.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the subset of `rand::RngCore` + `rand::Rng`
/// this workspace needs, merged into one trait for simplicity.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (half-open or inclusive
    /// integer ranges, or a half-open `f64` range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniform value of type `T` (only `f64` in `[0, 1)` and the
    /// full integer domains are supported).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw bits by [`Rng::gen`].
pub trait Standard {
    /// Builds a uniform sample from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the test-sized spans used here.
                let x = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(x as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let x = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(x as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::from_bits_uniform(rng.next_u64())
    }
}

trait F64Ext {
    fn from_bits_uniform(bits: u64) -> f64;
}

impl F64Ext for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (mirrors `rand::SeedableRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small fast non-cryptographic PRNG (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: usize = r.gen_range(3..7);
            assert!((3..7).contains(&x));
            let y: u64 = r.gen_range(10..=12);
            assert!((10..=12).contains(&y));
            let f: f64 = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_small_range() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
