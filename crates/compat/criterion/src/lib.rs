//! Offline shim for the subset of the `criterion` benchmarking API used
//! by this workspace: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::bench_function/finish`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short calibration run sizes the
//! iteration count so one sample takes roughly `CRITERION_SAMPLE_MS`
//! (default 40 ms, env-overridable), then `CRITERION_SAMPLES` samples
//! (default 12) are taken and the median ns/iter is reported on stdout as
//! `bench: <id> ... <median> ns/iter (±<spread>)`. Set
//! `CRITERION_JSON=<path>` to also append one JSON line per benchmark.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function`; call
/// [`Bencher::iter`] with the code under test.
pub struct Bencher {
    /// Measured median ns/iter, filled in by `iter`.
    result_ns: f64,
    /// Spread (max-min over samples) in ns/iter.
    spread_ns: f64,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs the closure repeatedly and records the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let sample_target = Duration::from_millis(
            std::env::var("CRITERION_SAMPLE_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(40),
        );
        let samples: usize = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(12);
        // Calibrate: double iteration count until one sample is long enough.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= sample_target || iters >= 1 << 30 {
                if elapsed < sample_target && elapsed < Duration::from_micros(10) {
                    break; // immeasurably fast; keep the huge count
                }
                if elapsed >= sample_target {
                    break;
                }
            }
            iters = iters.saturating_mul(2);
        }
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
        self.spread_ns = times[times.len() - 1] - times[0];
        self.iters_per_sample = iters;
    }
}

fn report(id: &str, b: &Bencher) {
    println!(
        "bench: {id:<40} {:>14.1} ns/iter (±{:.1}, {} iters/sample)",
        b.result_ns, b.spread_ns, b.iters_per_sample
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"spread_ns\":{:.1}}}",
                id.replace('"', "'"),
                b.result_ns,
                b.spread_ns
            );
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            result_ns: 0.0,
            spread_ns: 0.0,
            iters_per_sample: 0,
        };
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            result_ns: 0.0,
            spread_ns: 0.0,
            iters_per_sample: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
