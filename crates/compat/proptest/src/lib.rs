//! Offline shim for the subset of the `proptest` API used by this
//! workspace: the [`Strategy`] trait with `prop_map`, integer range and
//! tuple strategies, `collection::vec`, a minimal `[class]{lo,hi}` string
//! strategy, `ProptestConfig::with_cases`, and the `proptest!`,
//! `prop_assert*!`, `prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a fixed deterministic seed (reproducible, no
//! persistence files), and there is no shrinking — a failing case panics
//! with the generated inputs left to the assertion message.

#![warn(missing_docs)]

/// Deterministic generator state used by strategies (SplitMix64).
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { x: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Marker returned by `prop_assume!` rejections.
pub struct TestCaseRejected;

/// A value generator (the shim's analogue of `proptest::strategy::
/// Strategy`; no shrinking, so `Value` is produced directly).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Minimal regex-ish string strategy: supports exactly the pattern form
/// `[<class>]{lo,hi}` where `<class>` is a list of literal characters and
/// `a-z` ranges. Anything else panics at test time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class_src: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi): (usize, usize) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    let mut class = Vec::new();
    let mut i = 0;
    while i < class_src.len() {
        if i + 2 < class_src.len() && class_src[i + 1] == '-' {
            let (a, b) = (class_src[i] as u32, class_src[i + 2] as u32);
            for c in a..=b {
                class.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            class.push(class_src[i]);
            i += 1;
        }
    }
    if class.is_empty() || hi < lo {
        return None;
    }
    Some((class, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy with element strategy `element` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic cases (rejections
/// via `prop_assume!` do not count towards the case budget but are capped
/// at 20× `cases`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $cfg; $($rest)*);
    };
    (@with $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Seed differs per property (name hash) but is stable
                // across runs.
                let mut seed: u64 = 0xcbf29ce484222325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                let mut rng = $crate::TestRng::new(seed);
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= cfg.cases.saturating_mul(20),
                        "proptest shim: too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseRejected> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        ran += 1;
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` that reports the property name on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseRejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseRejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn char_class_parsing() {
        let (class, lo, hi) = super::parse_char_class_pattern("[ -~]{0,60}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 60);
        assert_eq!(class.len(), 95); // printable ASCII
        assert!(class.contains(&'A') && class.contains(&' ') && class.contains(&'~'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 2usize..4), v in crate::collection::vec(0u8..3, 1..5)) {
            prop_assert!(a < 10);
            prop_assert!((2..4).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..8) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn string_pattern(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
