//! Ablation sweeps for the design choices called out in DESIGN.md:
//!
//! 1. **Decomposition latency vs hypergraph size** — the paper's claim
//!    that bottom-up CTD computation "is in the order of milliseconds and
//!    does not create a new bottleneck" (Section 1), swept over random
//!    query-shaped hypergraphs and cycles.
//! 2. **shw vs hw solver cost** — the soft solver avoids the special
//!    condition bookkeeping; how do the two searches scale?
//! 3. **Candidate set choice** — full `Soft_{H,k}` (Definition 3) vs the
//!    prototype's cover-union subset: size and decision-time impact, and
//!    whether the extra Definition-3 bags ever change decomposability at
//!    the same width (they can only help).

use softhw_core::soft::{cover_bags, soft_bags};
use softhw_core::{candidate_td, hw, shw};
use softhw_hypergraph::random::{random_hypergraph, random_query_graph, RandomConfig};
use softhw_hypergraph::stats::stats;
use std::time::Instant;

fn ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    println!("## Ablation 1: CTD latency vs query size (k = 2, random binary query graphs)");
    println!("atoms,vars,|Soft|,gen_ms,decide_ms");
    for atoms in [4usize, 6, 8, 10, 12, 14] {
        let vars = atoms; // cyclic-ish density
        let h = random_query_graph(vars, atoms, 7);
        let mut bags = Vec::new();
        let gen = ms(|| bags = soft_bags(&h, 2));
        let mut ok = false;
        let dec = ms(|| ok = candidate_td(&h, &bags).is_some());
        println!(
            "{atoms},{vars},{},{gen:.3},{dec:.3}  (decomposable at k=2: {ok})",
            bags.len()
        );
    }
    println!();

    println!("## Ablation 2: shw vs hw solver latency (exact widths)");
    println!("instance,shw,shw_ms,hw,hw_ms");
    let mut instances: Vec<(String, softhw_hypergraph::Hypergraph)> = vec![
        ("H2".into(), softhw_hypergraph::named::h2()),
        ("C8".into(), softhw_hypergraph::named::cycle(8)),
        ("grid3x3".into(), softhw_hypergraph::named::grid(3, 3)),
    ];
    for seed in 0..3 {
        instances.push((
            format!("rand8x8/{seed}"),
            random_hypergraph(
                &RandomConfig {
                    num_vertices: 8,
                    num_edges: 8,
                    min_arity: 2,
                    max_arity: 3,
                    connect: true,
                },
                seed,
            ),
        ));
    }
    for (name, h) in &instances {
        let mut sv = 0;
        let st = ms(|| sv = shw::shw(h).0);
        let mut hv = 0;
        let ht = ms(|| hv = hw::hw(h).0);
        println!("{name},{sv},{st:.3},{hv},{ht:.3}");
        assert!(sv <= hv, "Theorem 2");
    }
    println!();

    println!("## Ablation 3: Definition-3 Soft vs prototype cover bags (k = 2)");
    println!("instance,|cover_bags|,|soft_def3|,cover_decides,def3_decides");
    for (name, h) in &instances {
        let cb = cover_bags(h, 2, true);
        let sb = soft_bags(h, 2);
        let cd = candidate_td(h, &cb).is_some();
        let sd = candidate_td(h, &sb).is_some();
        // The Definition-3 set is a superset: it can only decide "yes" in
        // more cases.
        assert!(!cd || sd, "{name}: cover-decidable implies Soft-decidable");
        println!("{name},{},{},{cd},{sd}", cb.len(), sb.len());
    }
    println!();

    println!("## Instance statistics (context for the sweeps above)");
    for (name, h) in &instances {
        println!("{name}: {:?}", stats(h));
    }
}
