//! Regenerates **Figures 12–17** (Appendix D): for each benchmark query,
//! the scatter of evaluation time against both cost functions over all
//! ConCov candidate tree decompositions, plus the baseline where the
//! paper reports one (Figures 13 and 14).
//!
//! Run a single query with `figs12_17 -- q_hto`; no argument runs all
//! six. Mapping: fig12 = q_ds, fig13 = q_hto, fig14 = q_hto2,
//! fig15 = q_hto3, fig16 = q_hto4, fig17 = q_lb.

use softhw_bench::{prepare, print_series, run_baseline, run_decomposition};
use softhw_core::constraints::concov_exact_filter;
use softhw_core::ctd_opt::{enumerate_all, evaluate_td, EnumerateOptions};
use softhw_core::soft::cover_bags;
use softhw_query::{CostContext, DbmsEstimateCost, TrueCardCost};

fn run_query(name: &'static str, fig: usize) {
    let inst = prepare(name, 42);
    let bags = concov_exact_filter(&inst.h, inst.k, &cover_bags(&inst.h, inst.k, true));
    let cx = CostContext::new(&inst.cq, &inst.h, &inst.atoms, &inst.db);
    let actual = TrueCardCost { cx: &cx };
    let estimate = DbmsEstimateCost { cx: &cx };
    let all = enumerate_all(&inst.h, &bags, &actual, &EnumerateOptions::default());
    let mut rows_actual = Vec::new();
    let mut rows_estimate = Vec::new();
    for (td, s) in &all {
        let Some(run) = run_decomposition(&inst, td) else {
            continue;
        };
        let est = evaluate_td(&inst.h, td, &estimate).expect("estimable");
        rows_actual.push(format!("{:.1},{:.6}", s.cost, run.seconds));
        rows_estimate.push(format!("{:.1},{:.6}", est.cost, run.seconds));
    }
    print_series(
        &format!("Figure {fig} ({name}, left): actual-cardinality cost vs time"),
        "cost,seconds",
        &rows_actual,
    );
    print_series(
        &format!("Figure {fig} ({name}, right): DBMS-estimate cost vs time"),
        "cost,seconds",
        &rows_estimate,
    );
    if matches!(name, "q_hto" | "q_hto2") {
        match run_baseline(&inst, 60_000_000) {
            Some(b) => println!("baseline ({name}): {:.6} s", b.seconds),
            None => println!("baseline ({name}): exceeded cap"),
        }
        println!();
    }
    // Rank correlation between each cost function and runtime (Spearman),
    // summarising the paper's correlation claims numerically.
    let rho_a = spearman(&rows_actual);
    let rho_e = spearman(&rows_estimate);
    println!(
        "spearman({name}): actual-cost vs time = {rho_a:.3}, estimate-cost vs time = {rho_e:.3}"
    );
    println!();
}

fn spearman(rows: &[String]) -> f64 {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| {
            let mut it = r.split(',');
            let c: f64 = it.next().expect("cost").parse().expect("float");
            let t: f64 = it.next().expect("time").parse().expect("float");
            (c, t)
        })
        .collect();
    let n = pts.len();
    if n < 2 {
        return 0.0;
    }
    let rank = |vals: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"));
        let mut r = vec![0.0; vals.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let rc = rank(pts.iter().map(|p| p.0).collect());
    let rt = rank(pts.iter().map(|p| p.1).collect());
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut dc = 0.0;
    let mut dt = 0.0;
    for i in 0..n {
        num += (rc[i] - mean) * (rt[i] - mean);
        dc += (rc[i] - mean).powi(2);
        dt += (rt[i] - mean).powi(2);
    }
    if dc == 0.0 || dt == 0.0 {
        0.0
    } else {
        num / (dc * dt).sqrt()
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let queries: Vec<(&'static str, usize)> = vec![
        ("q_ds", 12),
        ("q_hto", 13),
        ("q_hto2", 14),
        ("q_hto3", 15),
        ("q_hto4", 16),
        ("q_lb", 17),
    ];
    match arg.as_deref() {
        Some(q) => {
            let (name, fig) = queries
                .iter()
                .find(|(n, f)| *n == q || q == format!("fig{f}"))
                .copied()
                .unwrap_or_else(|| panic!("unknown query {q}"));
            run_query(name, fig);
        }
        None => {
            for (name, fig) in queries {
                run_query(name, fig);
            }
        }
    }
}
