//! Regenerates **Figure 5**: for the TPC-DS query `q_ds`, evaluation time
//! of every ConCov-shw-2 candidate tree decomposition against (left) the
//! actual-cardinality cost, (middle) the DBMS-estimate cost, and (right)
//! all TDs ordered by runtime with the baseline ("standard execution")
//! marked.
//!
//! Expected shape (paper): runtimes spread by ~an order of magnitude
//! across decompositions; actual-cardinality cost correlates with
//! runtime; DBMS-estimate cost correlates poorly or inversely; the
//! baseline sits between the best and worst decompositions.

use softhw_bench::{prepare, print_series, run_baseline, run_decomposition};
use softhw_core::constraints::concov_exact_filter;
use softhw_core::ctd_opt::{enumerate_all, evaluate_td, EnumerateOptions};
use softhw_core::soft::cover_bags;
use softhw_query::{CostContext, DbmsEstimateCost, TrueCardCost};

fn main() {
    let inst = prepare("q_ds", 42);
    let bags = concov_exact_filter(&inst.h, inst.k, &cover_bags(&inst.h, inst.k, true));
    let cx = CostContext::new(&inst.cq, &inst.h, &inst.atoms, &inst.db);
    let actual = TrueCardCost { cx: &cx };
    let estimate = DbmsEstimateCost { cx: &cx };
    let all = enumerate_all(&inst.h, &bags, &actual, &EnumerateOptions::default());
    eprintln!("q_ds: {} ConCov-shw-2 decompositions", all.len());

    let mut rows_actual = Vec::new();
    let mut rows_estimate = Vec::new();
    let mut runtimes: Vec<(f64, u64)> = Vec::new();
    let mut value_check: Option<Option<u64>> = None;
    for (td, s) in &all {
        let run = run_decomposition(&inst, td).expect("plannable");
        match &value_check {
            None => value_check = Some(run.value),
            Some(v) => assert_eq!(*v, run.value, "all decompositions agree"),
        }
        let est = evaluate_td(&inst.h, td, &estimate).expect("estimable");
        rows_actual.push(format!("{:.1},{:.6}", s.cost, run.seconds));
        rows_estimate.push(format!("{:.1},{:.6}", est.cost, run.seconds));
        runtimes.push((run.seconds, run.stats.tuples_materialised));
    }
    print_series(
        "Figure 5 (left): cost (actual cardinalities) vs evaluation time",
        "cost,seconds",
        &rows_actual,
    );
    print_series(
        "Figure 5 (middle): cost (DBMS estimates) vs evaluation time",
        "cost,seconds",
        &rows_estimate,
    );
    runtimes.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let ordered: Vec<String> = runtimes
        .iter()
        .enumerate()
        .map(|(i, (s, t))| format!("{i},{s:.6},{t}"))
        .collect();
    print_series(
        "Figure 5 (right): TDs ordered by runtime",
        "rank,seconds,tuples_materialised",
        &ordered,
    );
    match run_baseline(&inst, 200_000_000) {
        Some(b) => {
            println!(
                "baseline: {:.6} s ({} tuples materialised)",
                b.seconds, b.stats.tuples_materialised
            );
            assert_eq!(Some(b.value), value_check, "baseline agrees on the answer");
        }
        None => println!("baseline: exceeded intermediate cap (timeout)"),
    }
    if let (Some(first), Some(last)) = (runtimes.first(), runtimes.last()) {
        println!(
            "spread: fastest {:.6}s, slowest {:.6}s ({:.1}x)",
            first.0,
            last.0,
            last.0 / first.0.max(1e-12)
        );
    }
}
