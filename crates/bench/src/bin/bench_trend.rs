//! Bench-trend report: compares every `BENCH_*.json` baseline in
//! chronological (argument) order and emits a markdown table per
//! benchmark entry, with the speedup of the newest baseline over the
//! oldest one that records the entry. CI runs this over all committed
//! baselines plus the fresh smoke run and uploads the result as an
//! artifact, so a PR's perf trajectory is one click away.
//!
//! Usage: `bench_trend <out.md> <baseline.json>...`

use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(out_path) = args.next() else {
        eprintln!("usage: bench_trend <out.md> <baseline.json>...");
        std::process::exit(2);
    };
    let paths: Vec<String> = args.collect();
    if paths.is_empty() {
        eprintln!("usage: bench_trend <out.md> <baseline.json>...");
        std::process::exit(2);
    }
    let mut columns: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let label = path
                    .trim_end_matches(".json")
                    .rsplit('/')
                    .next()
                    .unwrap_or(path)
                    .to_string();
                columns.push((label, softhw_bench::parse_baseline_json(&text)));
            }
            Err(e) => eprintln!("skipping {path}: {e}"),
        }
    }
    if columns.is_empty() {
        eprintln!("no readable baselines");
        std::process::exit(1);
    }
    // Row order: first appearance across the baselines, oldest first.
    let mut rows: Vec<String> = Vec::new();
    for (_, entries) in &columns {
        for (name, _) in entries {
            if !rows.iter().any(|r| r == name) {
                rows.push(name.clone());
            }
        }
    }
    let get = |col: &[(String, f64)], name: &str| -> Option<f64> {
        col.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    let mut md = String::from("# Bench trend (median ns; speedup = oldest recorded / newest)\n\n");
    let _ = write!(md, "| entry |");
    for (label, _) in &columns {
        let _ = write!(md, " {label} |");
    }
    let _ = writeln!(md, " speedup |");
    let _ = write!(md, "|---|");
    for _ in &columns {
        let _ = write!(md, "---:|");
    }
    let _ = writeln!(md, "---:|");
    for name in &rows {
        let _ = write!(md, "| {name} |");
        let mut first: Option<f64> = None;
        let mut last: Option<f64> = None;
        for (_, entries) in &columns {
            match get(entries, name) {
                Some(v) => {
                    first = first.or(Some(v));
                    last = Some(v);
                    let _ = write!(md, " {v:.0} |");
                }
                None => {
                    let _ = write!(md, " – |");
                }
            }
        }
        match (first, last) {
            (Some(f), Some(l)) if l > 0.0 => {
                let _ = writeln!(md, " {:.2}x |", f / l);
            }
            _ => {
                let _ = writeln!(md, " – |");
            }
        }
    }
    std::fs::write(&out_path, &md).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "wrote {out_path} ({} entries, {} baselines)",
        rows.len(),
        columns.len()
    );
}
