//! Bench-trend report: compares every `BENCH_*.json` baseline in
//! chronological (argument) order and emits a markdown table per
//! benchmark entry, with the speedup of the newest baseline over the
//! oldest one that records the entry. Memory entries (names carrying
//! `bytes`, e.g. `service/bytes_per_cached_schema_bytes` from
//! `bench_service`'s METRICS scrape) get their own table with a growth
//! column instead of a speedup — bigger is not better there, so they
//! must not dilute the timing table. CI runs this over all committed
//! baselines plus the fresh smoke run and uploads the result as an
//! artifact, so a PR's perf trajectory is one click away.
//!
//! Usage: `bench_trend <out.md> <baseline.json>...`

use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(out_path) = args.next() else {
        eprintln!("usage: bench_trend <out.md> <baseline.json>...");
        std::process::exit(2);
    };
    let paths: Vec<String> = args.collect();
    if paths.is_empty() {
        eprintln!("usage: bench_trend <out.md> <baseline.json>...");
        std::process::exit(2);
    }
    let mut columns: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let label = path
                    .trim_end_matches(".json")
                    .rsplit('/')
                    .next()
                    .unwrap_or(path)
                    .to_string();
                columns.push((label, softhw_bench::parse_baseline_json(&text)));
            }
            Err(e) => eprintln!("skipping {path}: {e}"),
        }
    }
    if columns.is_empty() {
        eprintln!("no readable baselines");
        std::process::exit(1);
    }
    // Row order: first appearance across the baselines, oldest first.
    // Memory entries (bytes, not time) go to their own table: their
    // trend column is growth, where bigger is worse, so folding them
    // into the speedup table would misread either way.
    let is_memory = |name: &str| name.contains("bytes");
    let mut rows: Vec<String> = Vec::new();
    let mut mem_rows: Vec<String> = Vec::new();
    for (_, entries) in &columns {
        for (name, _) in entries {
            let bucket = if is_memory(name) {
                &mut mem_rows
            } else {
                &mut rows
            };
            if !bucket.iter().any(|r| r == name) {
                bucket.push(name.clone());
            }
        }
    }
    let get = |col: &[(String, f64)], name: &str| -> Option<f64> {
        col.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    // One table body: per-baseline values plus the oldest-vs-newest
    // trend ratio, formatted by the caller's header.
    let table = |md: &mut String, names: &[String], invert: bool| {
        let _ = write!(md, "| entry |");
        for (label, _) in &columns {
            let _ = write!(md, " {label} |");
        }
        let _ = writeln!(md, " {} |", if invert { "growth" } else { "speedup" });
        let _ = write!(md, "|---|");
        for _ in &columns {
            let _ = write!(md, "---:|");
        }
        let _ = writeln!(md, "---:|");
        for name in names {
            let _ = write!(md, "| {name} |");
            let mut first: Option<f64> = None;
            let mut last: Option<f64> = None;
            for (_, entries) in &columns {
                match get(entries, name) {
                    Some(v) => {
                        first = first.or(Some(v));
                        last = Some(v);
                        let _ = write!(md, " {v:.0} |");
                    }
                    None => {
                        let _ = write!(md, " – |");
                    }
                }
            }
            match (first, last) {
                (Some(f), Some(l)) if f > 0.0 && l > 0.0 => {
                    let ratio = if invert { l / f } else { f / l };
                    let _ = writeln!(md, " {ratio:.2}x |");
                }
                _ => {
                    let _ = writeln!(md, " – |");
                }
            }
        }
    };
    let mut md = String::from("# Bench trend (median ns; speedup = oldest recorded / newest)\n\n");
    table(&mut md, &rows, false);
    if !mem_rows.is_empty() {
        md.push_str("\n## Memory (bytes; growth = newest / oldest recorded)\n\n");
        table(&mut md, &mem_rows, true);
    }
    std::fs::write(&out_path, &md).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "wrote {out_path} ({} entries, {} memory entries, {} baselines)",
        rows.len(),
        mem_rows.len(),
        columns.len()
    );
}
