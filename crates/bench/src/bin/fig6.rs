//! Regenerates **Figure 6**: for Hetionet queries Q1 (`q_hto`) and Q2
//! (`q_hto2`), the evaluation times of the 10 cheapest width-2 ConCov
//! decompositions vs their cost, the baseline time, and (right chart) the
//! average evaluation time of 10 randomly chosen width-2 decompositions
//! with and without the ConCov constraint.
//!
//! Expected shape (paper): all ConCov decompositions beat the baseline by
//! multiples; random unconstrained TDs are far slower on average than
//! random ConCov TDs.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use softhw_bench::{
    prepare, print_series, run_baseline, run_decomposition, run_decomposition_capped, Instance,
};
use softhw_core::constraints::concov_exact_filter;
use softhw_core::ctd_opt::{sample_random, top_n};
use softhw_core::soft::{cover_bags, soft_bags};
use softhw_query::{CostContext, DbmsEstimateCost};

fn ten_cheapest(inst: &Instance) {
    let bags = concov_exact_filter(&inst.h, inst.k, &cover_bags(&inst.h, inst.k, true));
    let cx = CostContext::new(&inst.cq, &inst.h, &inst.atoms, &inst.db);
    let eval = DbmsEstimateCost { cx: &cx };
    let top = top_n(&inst.h, &bags, &eval, 10);
    let mut rows = Vec::new();
    for (td, s) in &top {
        let run = run_decomposition(inst, td).expect("plannable");
        rows.push(format!("{:.1},{:.6}", s.cost, run.seconds));
    }
    print_series(
        &format!(
            "Figure 6: {} 10 cheapest ConCov-shw-2 TDs (DBMS-estimate cost)",
            inst.name
        ),
        "cost,seconds",
        &rows,
    );
    match run_baseline(inst, 60_000_000) {
        Some(b) => println!("baseline ({}): {:.6} s", inst.name, b.seconds),
        None => println!("baseline ({}): exceeded cap", inst.name),
    }
    println!();
}

/// Average over `n` random decompositions; runs exceeding the
/// materialisation cap count as `cap_penalty` seconds (the paper's runs
/// simply took hundreds of seconds; we cap and penalise to keep the
/// harness bounded). Returns (average seconds, timeouts).
fn random_avg(inst: &Instance, concov: bool, n: usize) -> Option<(f64, usize)> {
    const CAP: u64 = 30_000_000;
    const CAP_PENALTY: f64 = 30.0;
    let all_bags = soft_bags(&inst.h, inst.k);
    let bags = if concov {
        concov_exact_filter(&inst.h, inst.k, &all_bags)
    } else {
        all_bags
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let mut total = 0.0;
    let mut timeouts = 0usize;
    for _ in 0..n {
        let td = sample_random(&inst.h, &bags, &mut rng)?;
        match run_decomposition_capped(inst, &td, CAP) {
            Some(run) => total += run.seconds,
            None => {
                total += CAP_PENALTY;
                timeouts += 1;
            }
        }
    }
    Some((total / n as f64, timeouts))
}

fn main() {
    for name in ["q_hto", "q_hto2"] {
        let inst = prepare(name, 42);
        ten_cheapest(&inst);
    }
    println!("## Figure 6 (right): avg time of 10 random width-2 TDs");
    println!("query,concov_avg_seconds,all_avg_seconds,concov_timeouts,all_timeouts");
    for name in ["q_hto", "q_hto2"] {
        let inst = prepare(name, 42);
        let with = random_avg(&inst, true, 10);
        let without = random_avg(&inst, false, 10);
        let fmt = |r: &Option<(f64, usize)>, idx: usize| match r {
            Some((s, t)) => {
                if idx == 0 {
                    format!("{s:.6}")
                } else {
                    format!("{t}")
                }
            }
            None => "n/a".into(),
        };
        println!(
            "{name},{},{},{},{}",
            fmt(&with, 0),
            fmt(&without, 0),
            fmt(&with, 1),
            fmt(&without, 1)
        );
    }
}
