//! Regenerates the paper's *theory* artefacts: the width values of the
//! named example hypergraphs (Examples 1–2, Appendix A), the game-width
//! relationships of Appendix A.1, and the `C5` ConCov separation of
//! Section 6.
//!
//! Expected values (paper):
//!
//! ```text
//! H2 : ghw = shw = 2,  hw = 3,   mon-irmw = 2, mon-mw = 3, mw = 2
//! H3 : ghw = shw = 3,  hw = 4          (witness: Figure 9, verified)
//! H'3: ghw = shw1 = 3, shw = hw = 4    (witness: Figure 2b, verified)
//! C5 : hw = shw = 2, ConCov-{shw,hw} = 3
//! ```
//!
//! On the big constructions (`H3`, `H'3`) full search is infeasible
//! (exactly as for every published decomposer); upper bounds are
//! machine-verified through the paper's explicit witness decompositions
//! and Soft-membership checks, lower bounds through `hw` search where
//! tractable. Pass `--full` to also run the expensive `hw(H3)` rejection
//! at k = 3 (minutes).

use softhw_core::constraints::{concov_filter, Trivial};
use softhw_core::ctd_opt::best;
use softhw_core::soft::{soft_bags, soft_witness, SoftLimits};
use softhw_core::soft_iter::soft_i_witness;
use softhw_core::td::TreeDecomposition;
use softhw_core::{games, hw, shw};
use softhw_hypergraph::named;
use softhw_hypergraph::Hypergraph;
use std::time::Instant;

/// The Figure 9 / Figure 2b soft hypertree decomposition of H3 / H'3.
fn figure9_td(h: &Hypergraph) -> TreeDecomposition {
    let gh: Vec<&str> = vec!["g11", "g12", "g21", "g22", "h11", "h12", "h21", "h22"];
    let bag = |extra: &[&str]| {
        let mut names = gh.clone();
        names.extend_from_slice(extra);
        h.vset(&names)
    };
    let mut td = TreeDecomposition::new(bag(&["3", "0'", "0"]));
    let l1 = td.add_child(td.root(), bag(&["3", "0", "1"]));
    let l2 = td.add_child(l1, bag(&["3", "1", "2"]));
    td.add_child(l2, bag(&["4", "2"]));
    let r1 = td.add_child(td.root(), bag(&["3'", "0'", "1'"]));
    let r2 = td.add_child(r1, bag(&["3'", "1'", "2'"]));
    td.add_child(r2, bag(&["3'", "2'", "4'"]));
    td
}

fn big_limits() -> SoftLimits {
    SoftLimits {
        max_lambda_sets: 20_000_000,
        max_bags: 4_000_000,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // --- H2 (Example 1, Figure 1) ---
    let h2 = named::h2();
    let t = Instant::now();
    let (hw2, _) = hw::hw(&h2);
    let (shw2, td2) = shw::shw(&h2);
    println!(
        "H2: hw = {hw2} (expect 3), shw = {shw2} (expect 2)  [{:?}]",
        t.elapsed()
    );
    assert_eq!((hw2, shw2), (3, 2));
    assert_eq!(td2.validate(&h2), Ok(()));
    let t = Instant::now();
    println!(
        "H2 games: mw = {} (expect 2), mon-mw = {} (expect 3 = hw), \
         irmw = {} , mon-irmw = {} (expect 2 = shw)  [{:?}]",
        games::marshal_width(&h2),
        games::mon_marshal_width(&h2),
        games::irm_width(&h2),
        games::mon_irm_width(&h2),
        t.elapsed()
    );

    // --- C5 ConCov separation (Section 6) ---
    let c5 = named::cycle(5);
    let (hwc5, _) = hw::hw(&c5);
    let ccshw = (1..=c5.num_edges())
        .find(|&k| {
            let bags = concov_filter(&c5, k, &soft_bags(&c5, k));
            best(&c5, &bags, &Trivial).is_some()
        })
        .expect("width |E| always works");
    println!("C5: hw = {hwc5} (expect 2), ConCov-shw = {ccshw} (expect 3)");
    assert_eq!((hwc5, ccshw), (2, 3));

    // --- H3 (Appendix A.2, Figures 8–9) ---
    let h3 = named::h3();
    let td = figure9_td(&h3);
    assert_eq!(td.validate(&h3), Ok(()), "Figure 9 is a valid TD of H3");
    let t = Instant::now();
    let limits = big_limits();
    for bag in td.bags() {
        let w = soft_witness(&h3, 3, bag, &limits);
        assert!(
            w.is_some(),
            "Figure 9 bag {} must be in Soft_{{H3,3}}",
            h3.render_vertex_set(bag)
        );
    }
    println!(
        "H3: Figure 9 verified as a soft HD of width 3 => shw(H3) <= 3  [{:?}]",
        t.elapsed()
    );
    let t = Instant::now();
    let hw4 = hw::hw_leq(&h3, 4);
    println!(
        "H3: hw(H3) <= 4 witnessed = {}  [{:?}]",
        hw4.is_some(),
        t.elapsed()
    );
    if full {
        let t = Instant::now();
        let hw3 = hw::hw_leq(&h3, 3);
        println!(
            "H3: hw(H3) <= 3 rejected = {} (expect rejected => hw = 4)  [{:?}]",
            hw3.is_none(),
            t.elapsed()
        );
    } else {
        println!("H3: (run with --full for the hw(H3) > 3 rejection proof)");
    }

    // --- H'3 (Example 2, Figure 2) ---
    let h3p = named::h3_prime();
    let tdp = figure9_td(&h3p);
    assert_eq!(tdp.validate(&h3p), Ok(()), "Figure 2b is a valid TD of H'3");
    let t = Instant::now();
    let mut all_in_level1 = true;
    for bag in tdp.bags() {
        let w = soft_i_witness(&h3p, 3, 1, bag, &limits).expect("within limits");
        if w.is_none() {
            all_in_level1 = false;
            println!(
                "  bag {} NOT in Soft^1_{{H'3,3}}",
                h3p.render_vertex_set(bag)
            );
        }
    }
    println!(
        "H'3: Figure 2b bags all in Soft^1_{{H'3,3}} = {all_in_level1} => shw1(H'3) <= 3  [{:?}]",
        t.elapsed()
    );
    // Example 2 claims the root bag is NOT in Soft^0. Machine-checking
    // refutes this for the hypergraph as transcribed (see EXPERIMENTS.md):
    // λ2 = {hor1, hor2, {0',3'}} yields a component avoiding 4'.
    let root_bag = tdp.bag(tdp.root());
    let t = Instant::now();
    let witness = soft_witness(&h3p, 3, root_bag, &limits);
    match &witness {
        Some((lambda1, u)) => {
            let names: Vec<&str> = lambda1.iter().map(|&e| h3p.edge_name(e)).collect();
            println!(
                "H'3 FINDING: the Figure 2b root bag IS in Soft^0_{{H'3,3}} \
                 (λ1 = {names:?}, |⋃C| = {}), contradicting Example 2's \
                 single-component claim  [{:?}]",
                u.len(),
                t.elapsed()
            );
        }
        None => println!(
            "H'3: Figure 2b root bag not in Soft^0_{{H'3,3}}  [{:?}]",
            t.elapsed()
        ),
    }
    println!();
    println!("(ghw lower bounds for H3/H'3 are Adler's marshal-width results, cited.)");
}
