//! Regenerates **Table 1** of the paper: per benchmark query, its
//! ConCov-shw, hypergraph size, candidate-bag counts, and the time to
//! produce the top-10 best TDs under the actual-cardinality cost.
//!
//! Paper values (for comparison; shapes must match exactly — these are
//! pure combinatorics):
//!
//! ```text
//! query   ConCov-shw |H| |Soft| ConCov  time
//! q_ds    2          5   9      8       7.67 ms
//! q_hto   2          7   25     16      27.87 ms
//! q_hto2  2          7   25     16      26.58 ms
//! q_hto3  2          4   9      8       3.26 ms
//! q_hto4  2          6   17     12      23.26 ms
//! q_lb    3          6   17     15      26.42 ms
//! ```

use softhw_bench::prepare;
use softhw_core::constraints::{concov_exact_filter, Trivial};
use softhw_core::ctd_opt::{best, top_n};
use softhw_core::soft::{cover_bags, soft_bags};
use softhw_query::{CostContext, TrueCardCost};
use std::time::Instant;

fn main() {
    println!(
        "{:<8} {:>10} {:>4} {:>12} {:>12} {:>16} {:>14}",
        "query",
        "ConCov-shw",
        "|H|",
        "|Soft_{H,k}|",
        "ConCov-Soft",
        "top-10 time",
        "full Soft (Def3)"
    );
    for (name, _, k) in softhw_workloads::queries::all_queries() {
        let inst = prepare(name, 42);
        let h = &inst.h;
        // Candidate bags as the prototype enumerates them (cover unions).
        let bags = cover_bags(h, k, true);
        let concov = concov_exact_filter(h, k, &bags);
        // ConCov-shw: least width admitting a ConCov CTD.
        let ccshw = (1..=h.num_edges())
            .find(|&kk| {
                let b = concov_exact_filter(h, kk, &cover_bags(h, kk, true));
                best(h, &b, &Trivial).is_some()
            })
            .expect("some width always works");
        // Time to produce the top-10 best TDs by actual-cardinality cost.
        // Cost acquisition (bag cardinalities; the paper reads them from
        // the DBMS in a separate step) is pre-warmed and excluded, like
        // the prototype's "find top k decompositions" phase.
        let cx = CostContext::new(&inst.cq, h, &inst.atoms, &inst.db);
        for bag in &concov {
            let _ = cx.cover(bag);
            let _ = cx.true_bag_size(bag);
        }
        let eval = TrueCardCost { cx: &cx };
        let start = Instant::now();
        let top = top_n(h, &concov, &eval, 10);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let def3 = soft_bags(h, k);
        println!(
            "{:<8} {:>10} {:>4} {:>12} {:>12} {:>13.2} ms {:>16}",
            name,
            ccshw,
            h.num_edges(),
            bags.len(),
            concov.len(),
            ms,
            def3.len(),
        );
        assert!(!top.is_empty(), "{name} must have ConCov decompositions");
    }
    println!();
    println!("|Soft_{{H,k}}| reproduces the prototype's cover-union counting;");
    println!("the last column is the full Definition-3 Soft set for reference.");
}
