//! Emits a machine-readable performance baseline (`BENCH_pr3.json` by
//! default, first CLI arg overrides) covering the decomposition and
//! engine hot paths on the named paper instances, so future PRs have a
//! perf trajectory to compare against.
//!
//! Flags:
//! - `--quick`: fewer samples and shorter calibration (the CI smoke
//!   configuration);
//! - `--hyperbench <dir>`: additionally parse every HyperBench-format
//!   file in `dir` ([`softhw_hypergraph::parse`]) and time candidate
//!   enumeration plus the worklist satisfaction DP at `k = 1` on it —
//!   the 1k+-edge validation of the arena/worklist path;
//! - `--hyperbench-k2`: on top of `--hyperbench`, run the `k = 2`
//!   configuration per file — the reduction pipeline (`reduce/*`),
//!   candidate enumeration and the satisfaction DP over the ~10^6-bag
//!   `Soft_2` space (`hb_soft_enum_k2`/`hb_satisfy_k2`), and one
//!   end-to-end `shw ≤ 2` decision from a cold index (`hb_shw_k2`).
//!   Separate flag because these rows add minutes of wall time;
//! - `--check <baseline.json>`: after writing, gate against the given
//!   baseline: every gate entry present in both runs
//!   (`algorithm1_cold/h2_k2`, the `sweep_*` pair, the `hb_*_k2` rows;
//!   the pre-cache seed baseline records the cold gate as
//!   `algorithm1/h2_k2`) must not have regressed more than 2×. The
//!   cold/incremental sweep ratio is reported informationally. Exits
//!   non-zero on violation.
//!
//! Every entry records the median ns of `samples` timed runs. The
//! `soft_enum_*` triple captures the bag-arena acceptance gate (warm
//! shared-index enumeration vs the seed's `FxHashSet<BitSet>` generator,
//! preserved in `soft::reference`). The `satisfy_*` pair captures the
//! worklist-DP gate: the dependency-driven engine vs the retained Jacobi
//! reference on the same prepared instance. The `sweep_*` pair captures
//! the incremental-sweep gate: `shw` on the incremental engine
//! (`sweep_incremental`) vs the retained rebuild-per-width sweep
//! (`sweep_cold`, [`shw::shw_rebuild`]). `algorithm1/h2_k2` measures
//! the repeated-query configuration (cross-query [`DecompCache`]), with
//! `algorithm1_cold/h2_k2` keeping the cold single-shot number honest.

use softhw_core::cache::DecompCache;
use softhw_core::ctd::CtdInstance;
use softhw_core::soft::{self, reference, SoftLimits};
use softhw_core::{hw, shw};
use softhw_engine::relation::Relation;
use softhw_hypergraph::{named, parse_hypergraph, BlockIndex, Hypergraph};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    out_path: String,
    samples: usize,
    min_sample_ms: u128,
    hyperbench: Option<String>,
    hyperbench_k2: bool,
    check: Option<String>,
}

/// Median ns of `samples` runs of `f` (each run may loop internally).
fn median_ns_cfg<F: FnMut()>(cfg: &Config, mut f: F) -> f64 {
    // Calibrate reps so one sample is >= ~min_sample_ms.
    let mut reps = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        if t.elapsed().as_millis() >= cfg.min_sample_ms || reps >= 1 << 22 {
            break;
        }
        reps *= 2;
    }
    let mut samples: Vec<f64> = (0..cfg.samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Report {
    entries: Vec<(String, f64)>,
}

impl Report {
    fn record(&mut self, id: &str, ns: f64) {
        println!("{id:<44} {ns:>14.1} ns");
        self.entries.push((id.to_string(), ns));
    }

    fn get(&self, id: &str) -> Option<f64> {
        self.entries.iter().find(|(n, _)| n == id).map(|&(_, v)| v)
    }
}

fn named_instances() -> Vec<(&'static str, Hypergraph, usize)> {
    vec![
        ("h2_k2", named::h2(), 2),
        ("h2_k3", named::h2(), 3),
        ("c8_k2", named::cycle(8), 2),
        ("grid3x3_k2", named::grid(3, 3), 2),
        ("tstar4_k2", named::triangle_star(4), 2),
    ]
}

fn bench_decomposition(cfg: &Config, r: &mut Report) {
    let limits = SoftLimits::default();
    for (name, h, k) in named_instances() {
        let mut warm = BlockIndex::new(&h);
        let expected = soft::soft_bag_ids(&mut warm, k, &limits).unwrap().len();
        r.record(
            &format!("soft_enum_warm/{name}"),
            median_ns_cfg(cfg, || {
                assert_eq!(
                    soft::soft_bag_ids(&mut warm, k, &limits).unwrap().len(),
                    expected
                );
            }),
        );
        r.record(
            &format!("soft_enum_cold/{name}"),
            median_ns_cfg(cfg, || {
                let mut index = BlockIndex::new(&h);
                assert_eq!(
                    soft::soft_bag_ids(&mut index, k, &limits).unwrap().len(),
                    expected
                );
            }),
        );
        r.record(
            &format!("soft_enum_reference/{name}"),
            median_ns_cfg(cfg, || {
                assert_eq!(
                    reference::soft_bags_with(&h, k, &limits).unwrap().len(),
                    expected
                );
            }),
        );
    }
    let h2 = named::h2();
    r.record(
        "shw/h2",
        median_ns_cfg(cfg, || {
            assert_eq!(shw::shw(&h2).0, 2);
        }),
    );
    {
        let mut cache = DecompCache::new();
        r.record(
            "shw_cached/h2",
            median_ns_cfg(cfg, || {
                assert_eq!(shw::shw_cached(&mut cache, &h2).0, 2);
            }),
        );
    }
    r.record(
        "hw/h2",
        median_ns_cfg(cfg, || {
            assert_eq!(hw::hw(&h2).0, 3);
        }),
    );
    let c8 = named::cycle(8);
    r.record(
        "shw/c8",
        median_ns_cfg(cfg, || {
            assert_eq!(shw::shw(&c8).0, 2);
        }),
    );
    // The incremental sweep engine vs the retained rebuild-per-width
    // sweep, end to end (index build + enumeration + decision per
    // width), on the named instances.
    for (name, h, w) in [
        ("h2", named::h2(), 2usize),
        ("c8", named::cycle(8), 2),
        ("grid3x3", named::grid(3, 3), 2),
    ] {
        r.record(
            &format!("sweep_cold/{name}"),
            median_ns_cfg(cfg, || {
                assert_eq!(shw::shw_rebuild(&h).0, w);
            }),
        );
        r.record(
            &format!("sweep_incremental/{name}"),
            median_ns_cfg(cfg, || {
                assert_eq!(shw::shw(&h).0, w);
            }),
        );
    }
    // The satisfaction DP itself, on one prepared instance: the worklist
    // engine vs the retained Jacobi reference.
    let bags = soft::soft_bags(&h2, 2);
    let inst = CtdInstance::new(&h2, &bags);
    r.record(
        "satisfy_worklist/h2_k2",
        median_ns_cfg(cfg, || {
            assert!(inst.satisfy().accept);
        }),
    );
    r.record(
        "satisfy_jacobi/h2_k2",
        median_ns_cfg(cfg, || {
            assert!(inst.satisfy_jacobi().accept);
        }),
    );
    // Algorithm 1 in the repeated-query configuration (cross-query cache:
    // index, blocks, and satisfied-block sets reused; extraction runs).
    {
        let mut cache = DecompCache::new();
        r.record(
            "algorithm1/h2_k2",
            median_ns_cfg(cfg, || {
                assert!(cache.candidate_td(&h2, &bags).is_some());
            }),
        );
    }
    r.record(
        "algorithm1_cold/h2_k2",
        median_ns_cfg(cfg, || {
            assert!(softhw_core::candidate_td(&h2, &bags).is_some());
        }),
    );
}

/// HyperBench-format directory benchmarks: parse, candidate enumeration,
/// and the worklist DP at `k = 1` per file (large instances; one timed
/// run per sample, no calibration loop).
fn bench_hyperbench(cfg: &Config, dir: &str, r: &mut Report) {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("--hyperbench {dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let limits = SoftLimits {
        max_lambda_sets: 4_000_000,
        max_bags: 4_000_000,
    };
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("instance")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("readable instance");
        let h = match parse_hypergraph(&text) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        println!(
            "hyperbench {name}: |V|={} |E|={}",
            h.num_vertices(),
            h.num_edges()
        );
        let samples = cfg.samples.min(3);
        let once = |f: &mut dyn FnMut()| -> f64 {
            let mut ts: Vec<f64> = (0..samples)
                .map(|_| {
                    let t = Instant::now();
                    f();
                    t.elapsed().as_nanos() as f64
                })
                .collect();
            ts.sort_by(|a, b| a.total_cmp(b));
            ts[ts.len() / 2]
        };
        r.record(
            &format!("hb_parse/{name}"),
            once(&mut || {
                assert_eq!(parse_hypergraph(&text).unwrap().num_edges(), h.num_edges());
            }),
        );
        let mut index = BlockIndex::new(&h);
        let bags = match soft::soft_bag_ids(&mut index, 1, &limits) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping enumeration on {name}: {e}");
                continue;
            }
        };
        println!("hyperbench {name}: |Soft_1| = {}", bags.len());
        r.record(
            &format!("hb_soft_enum_k1/{name}"),
            once(&mut || {
                assert_eq!(
                    soft::soft_bag_ids(&mut index, 1, &limits).unwrap().len(),
                    bags.len()
                );
            }),
        );
        let inst = CtdInstance::build(&mut index, &bags);
        println!("hyperbench {name}: blocks = {} (k = 1)", inst.blocks.len());
        let accept = inst.satisfy().accept;
        r.record(
            &format!("hb_satisfy_k1/{name}"),
            once(&mut || {
                assert_eq!(inst.satisfy().accept, accept);
            }),
        );
        if !cfg.hyperbench_k2 {
            continue;
        }
        // The reduce-before-solve front door: the full simplification
        // pipeline (subsumption + peeling + splitting) on the raw input.
        r.record(
            &format!("reduce/{name}"),
            once(&mut || {
                assert!(!softhw_hypergraph::reduce(&h).pieces.is_empty());
            }),
        );
        // k = 2 over the same shared index (the k = 1 cache warms it, as
        // in a real width sweep). The cold enumeration below is the
        // setup; the timed row is the warm re-enumeration, mirroring
        // `hb_soft_enum_k1`.
        let bags2 = match soft::soft_bag_ids(&mut index, 2, &limits) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping k = 2 on {name}: {e}");
                continue;
            }
        };
        println!("hyperbench {name}: |Soft_2| = {}", bags2.len());
        r.record(
            &format!("hb_soft_enum_k2/{name}"),
            once(&mut || {
                assert_eq!(
                    soft::soft_bag_ids(&mut index, 2, &limits).unwrap().len(),
                    bags2.len()
                );
            }),
        );
        let inst2 = CtdInstance::build(&mut index, &bags2);
        println!("hyperbench {name}: blocks = {} (k = 2)", inst2.blocks.len());
        let accept2 = inst2.satisfy().accept;
        println!("hyperbench {name}: shw <= 2: {accept2}");
        r.record(
            &format!("hb_satisfy_k2/{name}"),
            once(&mut || {
                assert_eq!(inst2.satisfy().accept, accept2);
            }),
        );
        // One end-to-end `shw(H) <= 2` decision from a cold index —
        // enumeration + instance build + DP, the number a single-shot
        // caller pays. One sample: the phases above already bound the
        // variance, and a cold run costs tens of seconds.
        let t = Instant::now();
        let decided = shw::shw_leq_with(&h, 2, &limits)
            .expect("k = 2 within limits")
            .is_some();
        let e2e_ns = t.elapsed().as_nanos() as f64;
        assert_eq!(decided, accept2);
        r.record(&format!("hb_shw_k2/{name}"), e2e_ns);
    }
}

fn chain_relation(n: u64, offset: u64) -> Relation {
    Relation::from_rows(vec![0, 1], (0..n).map(|i| vec![i, (i + offset) % n]))
}

fn bench_engine(cfg: &Config, r: &mut Report) {
    let a = chain_relation(10_000, 1);
    let b = Relation::from_rows(
        vec![1, 2],
        (0..10_000u64).map(|i| vec![i, (i + 2) % 10_000]),
    );
    r.record(
        "engine/natural_join_10k",
        median_ns_cfg(cfg, || {
            assert!(!a.natural_join(&b).is_empty());
        }),
    );
    r.record(
        "engine/semijoin_10k",
        median_ns_cfg(cfg, || {
            assert!(!a.semijoin(&b).is_empty());
        }),
    );
    let scale = softhw_workloads::hetionet::HetionetScale {
        nodes: 300,
        edges_per_relation: 1_500,
    };
    let db = softhw_workloads::hetionet::generate(&scale, 42);
    let cq = softhw_query::bind(
        &softhw_query::parse_sql(softhw_workloads::queries::Q_HTO3).expect("fixed"),
        &db,
    )
    .expect("schema");
    let h = cq.hypergraph();
    let atoms = softhw_query::atom_relations(&cq, &db);
    let (_, td) = shw::shw(&h);
    let plan = softhw_query::build_plan(&cq, &h, &td).expect("plannable");
    r.record(
        "engine/yannakakis_q_hto3_small",
        median_ns_cfg(cfg, || {
            let _ = softhw_query::execute(&cq, &atoms, &plan).value;
        }),
    );
}

/// Reads `"name": <float>` entries out of a baseline JSON file emitted by
/// this binary (shared parser in the bench lib).
fn parse_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
    softhw_bench::parse_baseline_json(&text)
}

/// The regression gates of the CI smoke job: each gate entry present in
/// both the current run and the baseline may not be more than 2× slower
/// than recorded. `algorithm1_cold/h2_k2` is recorded as
/// `algorithm1/h2_k2` in `BENCH_seed.json` (which predates the cached
/// configuration), so that gate accepts either baseline name — always
/// comparing cold against cold. That gate is **required**: every
/// committed baseline records it, so a baseline that fails to yield it
/// is corrupt (or mis-selected) and the check errors rather than
/// passing vacuously. The `sweep_*` entries only exist from
/// `BENCH_pr3.json` on, and the `hb_*_k2` entries from `BENCH_pr6.json`
/// on; entries absent from the baseline — or from the current run, for
/// rows behind an off flag — are skipped with a note.
const GATES: [(&str, &[&str], bool); 7] = [
    (
        "algorithm1_cold/h2_k2",
        &["algorithm1_cold/h2_k2", "algorithm1/h2_k2"],
        true, // required in every baseline
    ),
    ("sweep_incremental/h2", &["sweep_incremental/h2"], false),
    ("sweep_cold/h2", &["sweep_cold/h2"], false),
    // The k = 2 HyperBench rows (from `BENCH_pr6.json` on; only emitted
    // under `--hyperbench-k2`, and skipped with a note in runs without
    // that flag).
    (
        "hb_soft_enum_k2/grid24x24",
        &["hb_soft_enum_k2/grid24x24"],
        false,
    ),
    (
        "hb_satisfy_k2/grid24x24",
        &["hb_satisfy_k2/grid24x24"],
        false,
    ),
    (
        "hb_soft_enum_k2/rand1200",
        &["hb_soft_enum_k2/rand1200"],
        false,
    ),
    ("hb_satisfy_k2/rand1200", &["hb_satisfy_k2/rand1200"], false),
];
const GATE_FACTOR: f64 = 2.0;

fn check_against(baseline_path: &str, r: &Report) -> Result<(), String> {
    let baseline = parse_baseline(baseline_path);
    for (current_name, baseline_names, required) in GATES {
        let Some(new) = r.get(current_name) else {
            if required {
                return Err(format!("current run lacks {current_name}"));
            }
            // Optional rows only exist in some configurations (e.g. the
            // k = 2 HyperBench rows need `--hyperbench-k2`).
            println!("check {current_name}: not in current run, skipped");
            continue;
        };
        let Some((old_name, old)) = baseline_names.iter().find_map(|name| {
            baseline
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| (*name, v))
        }) else {
            if required {
                return Err(format!(
                    "baseline {baseline_path} lacks required gate {current_name} — corrupt or wrong file?"
                ));
            }
            println!("check {current_name}: not in baseline {baseline_path}, skipped");
            continue;
        };
        println!(
            "check {current_name}: {new:.1} ns vs baseline {old_name} {old:.1} ns ({:.2}x)",
            old / new
        );
        if new > old * GATE_FACTOR {
            return Err(format!(
                "{current_name} regressed: {new:.1} ns > {GATE_FACTOR}x baseline {old:.1} ns"
            ));
        }
    }
    // The cold/incremental ratio is reported, not gated: since the
    // dependency tables became output-sensitive, a cold rebuild at the
    // named instances' scale costs about as much as an in-place
    // extension, so the old ">= 1.3x faster" floor no longer measures
    // anything — the per-entry sweep_* gates above hold both absolute
    // numbers against the baseline instead.
    match (r.get("sweep_cold/h2"), r.get("sweep_incremental/h2")) {
        (Some(cold), Some(inc)) => {
            println!(
                "check sweep ratio (cold/incremental on h2): {:.2}x (informational)",
                cold / inc
            );
        }
        _ => return Err("current run lacks the sweep_* pair".to_string()),
    }
    Ok(())
}

fn parse_args() -> Config {
    let mut cfg = Config {
        out_path: "BENCH_pr3.json".to_string(),
        samples: 9,
        min_sample_ms: 5,
        hyperbench: None,
        hyperbench_k2: false,
        check: None,
    };
    let mut out_path_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                cfg.samples = 3;
                cfg.min_sample_ms = 2;
            }
            "--hyperbench" => {
                cfg.hyperbench = Some(args.next().expect("--hyperbench needs a directory"));
            }
            "--hyperbench-k2" => {
                cfg.hyperbench_k2 = true;
            }
            "--check" => {
                cfg.check = Some(args.next().expect("--check needs a baseline file"));
            }
            other if other.starts_with('-') => {
                // A typo'd flag must not silently become the output path
                // (it would clobber the committed baseline).
                eprintln!("unknown flag {other}; expected --quick, --hyperbench <dir>, --hyperbench-k2, --check <baseline>, or an output path");
                std::process::exit(2);
            }
            other => {
                if out_path_set {
                    eprintln!("output path given twice: {} and {other}", cfg.out_path);
                    std::process::exit(2);
                }
                out_path_set = true;
                cfg.out_path = other.to_string();
            }
        }
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    let mut r = Report {
        entries: Vec::new(),
    };
    bench_decomposition(&cfg, &mut r);
    bench_engine(&cfg, &mut r);
    if let Some(dir) = cfg.hyperbench.clone() {
        bench_hyperbench(&cfg, &dir, &mut r);
    }

    // Aggregate speedups per instance (the arena acceptance metric).
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (name, _, _) in named_instances() {
        if let (Some(warm), Some(reference)) = (
            r.get(&format!("soft_enum_warm/{name}")),
            r.get(&format!("soft_enum_reference/{name}")),
        ) {
            speedups.push((name.to_string(), reference / warm));
        }
    }
    let dp_speedup = match (
        r.get("satisfy_jacobi/h2_k2"),
        r.get("satisfy_worklist/h2_k2"),
    ) {
        (Some(j), Some(w)) => j / w,
        _ => 0.0,
    };
    let mut sweep_speedups: Vec<(String, f64)> = Vec::new();
    for name in ["h2", "c8", "grid3x3"] {
        if let (Some(cold), Some(inc)) = (
            r.get(&format!("sweep_cold/{name}")),
            r.get(&format!("sweep_incremental/{name}")),
        ) {
            sweep_speedups.push((name.to_string(), cold / inc));
        }
    }

    let mut json = String::from("{\n  \"benchmarks\": {\n");
    for (i, (id, ns)) in r.entries.iter().enumerate() {
        let sep = if i + 1 == r.entries.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{id}\": {ns:.1}{sep}");
    }
    json.push_str("  },\n  \"speedup_warm_vs_reference\": {\n");
    for (i, (name, ratio)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ratio:.2}{sep}");
    }
    json.push_str("  },\n  \"speedup_sweep_incremental_vs_cold\": {\n");
    for (i, (name, ratio)) in sweep_speedups.iter().enumerate() {
        let sep = if i + 1 == sweep_speedups.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{name}\": {ratio:.2}{sep}");
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"speedup_worklist_vs_jacobi\": {dp_speedup:.2},");
    json.push_str("  \"unit\": \"median_ns\",\n");
    let _ = writeln!(
        json,
        "  \"parallel_feature\": {}\n}}",
        softhw_hypergraph::par::parallel_enabled()
    );
    std::fs::write(&cfg.out_path, &json).expect("write baseline file");
    println!("\nwrote {}", cfg.out_path);
    for (name, ratio) in &speedups {
        println!("speedup {name}: {ratio:.2}x");
    }
    println!("speedup worklist vs jacobi: {dp_speedup:.2}x");
    for (name, ratio) in &sweep_speedups {
        println!("speedup sweep incremental vs cold {name}: {ratio:.2}x");
    }

    if let Some(baseline) = &cfg.check {
        if let Err(msg) = check_against(baseline, &r) {
            eprintln!("BENCH CHECK FAILED: {msg}");
            std::process::exit(1);
        }
        println!("bench check passed against {baseline}");
    }
}
