//! Emits a machine-readable performance baseline (`BENCH_seed.json` by
//! default, first CLI arg overrides) covering the decomposition and
//! engine hot paths on the named paper instances, so future PRs have a
//! perf trajectory to compare against.
//!
//! Every entry records the median ns of `samples` timed runs. The
//! `soft_enum_*` triple captures the arena refactor's acceptance gate:
//! `soft_enum_warm` (shared-`BlockIndex` candidate enumeration, the
//! configuration the solvers run) vs `soft_enum_reference` (the seed's
//! `FxHashSet<BitSet>` generator, preserved in `soft::reference`); the
//! emitted `speedup_warm_vs_reference` field is their ratio.

use softhw_core::soft::{self, reference, SoftLimits};
use softhw_core::{hw, shw};
use softhw_engine::relation::Relation;
use softhw_hypergraph::{named, BlockIndex, Hypergraph};
use std::fmt::Write as _;
use std::time::Instant;

const SAMPLES: usize = 9;

/// Median ns of `SAMPLES` runs of `f` (each run may loop internally).
fn median_ns<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate reps so one sample is >= ~5ms.
    let mut reps = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        if t.elapsed().as_millis() >= 5 || reps >= 1 << 22 {
            break;
        }
        reps *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Report {
    entries: Vec<(String, f64)>,
}

impl Report {
    fn record(&mut self, id: &str, ns: f64) {
        println!("{id:<44} {ns:>14.1} ns");
        self.entries.push((id.to_string(), ns));
    }

    fn get(&self, id: &str) -> Option<f64> {
        self.entries.iter().find(|(n, _)| n == id).map(|&(_, v)| v)
    }
}

fn named_instances() -> Vec<(&'static str, Hypergraph, usize)> {
    vec![
        ("h2_k2", named::h2(), 2),
        ("h2_k3", named::h2(), 3),
        ("c8_k2", named::cycle(8), 2),
        ("grid3x3_k2", named::grid(3, 3), 2),
        ("tstar4_k2", named::triangle_star(4), 2),
    ]
}

fn bench_decomposition(r: &mut Report) {
    let limits = SoftLimits::default();
    for (name, h, k) in named_instances() {
        let mut warm = BlockIndex::new(&h);
        let expected = soft::soft_bag_ids(&mut warm, k, &limits).unwrap().len();
        r.record(
            &format!("soft_enum_warm/{name}"),
            median_ns(|| {
                assert_eq!(
                    soft::soft_bag_ids(&mut warm, k, &limits).unwrap().len(),
                    expected
                );
            }),
        );
        r.record(
            &format!("soft_enum_cold/{name}"),
            median_ns(|| {
                let mut index = BlockIndex::new(&h);
                assert_eq!(
                    soft::soft_bag_ids(&mut index, k, &limits).unwrap().len(),
                    expected
                );
            }),
        );
        r.record(
            &format!("soft_enum_reference/{name}"),
            median_ns(|| {
                assert_eq!(
                    reference::soft_bags_with(&h, k, &limits).unwrap().len(),
                    expected
                );
            }),
        );
    }
    let h2 = named::h2();
    r.record(
        "shw/h2",
        median_ns(|| {
            assert_eq!(shw::shw(&h2).0, 2);
        }),
    );
    r.record(
        "hw/h2",
        median_ns(|| {
            assert_eq!(hw::hw(&h2).0, 3);
        }),
    );
    let c8 = named::cycle(8);
    r.record(
        "shw/c8",
        median_ns(|| {
            assert_eq!(shw::shw(&c8).0, 2);
        }),
    );
    let bags = soft::soft_bags(&h2, 2);
    r.record(
        "algorithm1/h2_k2",
        median_ns(|| {
            assert!(softhw_core::candidate_td(&h2, &bags).is_some());
        }),
    );
}

fn chain_relation(n: u64, offset: u64) -> Relation {
    Relation::from_rows(vec![0, 1], (0..n).map(|i| vec![i, (i + offset) % n]))
}

fn bench_engine(r: &mut Report) {
    let a = chain_relation(10_000, 1);
    let b = Relation::from_rows(
        vec![1, 2],
        (0..10_000u64).map(|i| vec![i, (i + 2) % 10_000]),
    );
    r.record(
        "engine/natural_join_10k",
        median_ns(|| {
            assert!(!a.natural_join(&b).is_empty());
        }),
    );
    r.record(
        "engine/semijoin_10k",
        median_ns(|| {
            assert!(!a.semijoin(&b).is_empty());
        }),
    );
    let scale = softhw_workloads::hetionet::HetionetScale {
        nodes: 300,
        edges_per_relation: 1_500,
    };
    let db = softhw_workloads::hetionet::generate(&scale, 42);
    let cq = softhw_query::bind(
        &softhw_query::parse_sql(softhw_workloads::queries::Q_HTO3).expect("fixed"),
        &db,
    )
    .expect("schema");
    let h = cq.hypergraph();
    let atoms = softhw_query::atom_relations(&cq, &db);
    let (_, td) = shw::shw(&h);
    let plan = softhw_query::build_plan(&cq, &h, &td).expect("plannable");
    r.record(
        "engine/yannakakis_q_hto3_small",
        median_ns(|| {
            let _ = softhw_query::execute(&cq, &atoms, &plan).value;
        }),
    );
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_seed.json".to_string());
    let mut r = Report {
        entries: Vec::new(),
    };
    bench_decomposition(&mut r);
    bench_engine(&mut r);

    // Aggregate speedups per instance (the refactor's acceptance metric).
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (name, _, _) in named_instances() {
        if let (Some(warm), Some(reference)) = (
            r.get(&format!("soft_enum_warm/{name}")),
            r.get(&format!("soft_enum_reference/{name}")),
        ) {
            speedups.push((name.to_string(), reference / warm));
        }
    }

    let mut json = String::from("{\n  \"benchmarks\": {\n");
    for (i, (id, ns)) in r.entries.iter().enumerate() {
        let sep = if i + 1 == r.entries.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{id}\": {ns:.1}{sep}");
    }
    json.push_str("  },\n  \"speedup_warm_vs_reference\": {\n");
    for (i, (name, ratio)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ratio:.2}{sep}");
    }
    json.push_str("  },\n  \"unit\": \"median_ns\",\n");
    let _ = writeln!(
        json,
        "  \"parallel_feature\": {}\n}}",
        softhw_hypergraph::par::parallel_enabled()
    );
    std::fs::write(&path, &json).expect("write baseline file");
    println!("\nwrote {path}");
    for (name, ratio) in &speedups {
        println!("speedup {name}: {ratio:.2}x");
    }
}
