//! End-to-end latency/throughput benchmark of the decomposition
//! service: an in-process `softhw-service` server on a loopback socket,
//! hammered by concurrent client connections with per-request-class
//! traffic. Reports p50/p99 wall-clock latency per class (measured at
//! the client, so parse + route + solve + frame + TCP are all in the
//! number) and aggregate throughput.
//!
//! ```text
//! bench_service [out.json] [--clients n] [--requests n] [--store path]
//! ```
//!
//! Request classes:
//! - `shw_warm`: exact `shw` over schemas the striped cache has already
//!   served (the headline repeated-query path — index, instances, sweep
//!   state, and width decisions are all warm);
//! - `shw_leq_warm`, `hw_warm`, `best_warm`, `stats`: the other classes
//!   over the same warm schemas;
//! - `shw_cold`: exact `shw` over schemas never seen before (every
//!   request pays generation + instance build + DP).
//!
//! With `--store <path>` the server persists through the decomposition
//! store, and a second phase **restarts** it — a fresh `ServiceState`
//! over the same store file, in-memory caches cold — and measures
//! `shw_store_warm`: the repeated-query path served from warm-started
//! persisted results instead of anything computed this process
//! lifetime. That is the number a `softhw-serve` restart ships with.

use softhw_hypergraph::random::{random_hypergraph, RandomConfig};
use softhw_hypergraph::{named, render_hypergraph};
use softhw_service::{
    roundtrip, EvalKind, Request, RequestClass, Response, ServeOptions, Server, ServiceConfig,
    ServiceState,
};
use std::fmt::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct Args {
    out: Option<String>,
    clients: usize,
    requests: usize,
    store: Option<String>,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut clients = 8;
    let mut requests = 200;
    let mut store = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients n");
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests n");
            }
            "--store" => {
                store = Some(args.next().expect("--store path"));
            }
            other => out = Some(other.to_string()),
        }
    }
    Args {
        out,
        clients,
        requests,
        store,
    }
}

/// (class label, request) pairs the clients rotate through.
fn traffic() -> Vec<(&'static str, Request)> {
    let warm: Vec<String> = [
        named::h2(),
        named::cycle(6),
        named::cycle(8),
        named::grid(3, 3),
        named::triangle_star(3),
    ]
    .iter()
    .map(render_hypergraph)
    .collect();
    let mut out = Vec::new();
    for schema in &warm {
        out.push(("shw_warm", Request::new(RequestClass::Shw, schema.clone())));
        out.push((
            "shw_leq_warm",
            Request::new(RequestClass::ShwLeq(2), schema.clone()),
        ));
        out.push(("hw_warm", Request::new(RequestClass::Hw, schema.clone())));
        out.push((
            "best_warm",
            Request::new(RequestClass::Best(EvalKind::Trivial, 2), schema.clone()),
        ));
        out.push(("stats", Request::new(RequestClass::Stats, schema.clone())));
    }
    out
}

/// A cold-schema request: a random hypergraph no other request shares.
fn cold_request(seed: u64) -> Request {
    let h = random_hypergraph(
        &RandomConfig {
            num_vertices: 8,
            num_edges: 8,
            min_arity: 2,
            max_arity: 3,
            connect: true,
        },
        seed,
    );
    Request::new(RequestClass::Shw, render_hypergraph(&h))
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() {
    let args = parse_args();
    let state = match &args.store {
        Some(path) => ServiceState::open_store(ServiceConfig::default(), path).expect("open store"),
        None => ServiceState::new(ServiceConfig::default()),
    };
    let server = Server::bind(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: args.clients,
            max_conns: Some(args.clients as u64 + 1),
            ..ServeOptions::default()
        },
        state,
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server_thread = std::thread::spawn(move || server.run());

    let traffic = traffic();
    // Warm the caches once so the *_warm classes measure the warm path
    // (the first client request would otherwise fold a cold build into
    // one sample).
    {
        let mut stream = TcpStream::connect(addr).expect("warmup connect");
        for (_, req) in &traffic {
            let resp = roundtrip(&mut stream, req).expect("warmup roundtrip");
            assert!(
                !matches!(resp, Response::Error { .. }),
                "warmup failed: {resp:?}"
            );
        }
    }

    // Fire: each client thread owns one connection and pulls request
    // indices off a shared counter. Cold requests are interleaved 1:10
    // with unique seeds.
    let total = args.requests.max(args.clients);
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::with_capacity(total));
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                let mut local: Vec<(&'static str, f64)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let cold;
                    let (label, req) = if i % 10 == 9 {
                        cold = cold_request(1_000 + i as u64);
                        ("shw_cold", &cold)
                    } else {
                        let (label, req) = &traffic[i % traffic.len()];
                        (*label, req)
                    };
                    let start = Instant::now();
                    let resp = roundtrip(&mut stream, req).expect("bench roundtrip");
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    assert!(
                        !matches!(resp, Response::Error { .. }),
                        "request failed: {resp:?}"
                    );
                    local.push((label, us));
                }
                samples
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();
    // All client connections are closed; the server has accepted its
    // max_conns (warmup + clients) and drains cleanly.
    let served = server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    assert_eq!(served, args.clients as u64 + 1);

    let mut samples = samples
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    // Throughput describes phase 1 only (the restart-warm phase below
    // extends `samples` but was measured on its own wall clock).
    let phase1_requests = samples.len();
    let throughput = phase1_requests as f64 / wall_s;

    // Restart-warm phase: a fresh state over the same store file — the
    // in-memory caches are cold, everything served comes from persisted
    // results (warm-started at boot). This is the latency a
    // `softhw-serve` restart offers on its hot schemas.
    if let Some(path) = &args.store {
        let state = ServiceState::open_store(ServiceConfig::default(), path)
            .expect("reopen store for restart-warm phase");
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: args.clients,
                max_conns: Some(args.clients as u64),
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind restart server");
        let addr = server.local_addr().expect("local addr");
        let server_thread = std::thread::spawn(move || server.run());
        let shw_reqs: Vec<Request> = traffic
            .iter()
            .filter(|(label, _)| *label == "shw_warm")
            .map(|(_, req)| req.clone())
            .collect();
        let next = AtomicUsize::new(0);
        let store_samples: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..args.clients {
                scope.spawn(|| {
                    let mut stream = TcpStream::connect(addr).expect("client connect");
                    let mut local: Vec<(&'static str, f64)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let req = &shw_reqs[i % shw_reqs.len()];
                        let start = Instant::now();
                        let resp = roundtrip(&mut stream, req).expect("store-warm roundtrip");
                        let us = start.elapsed().as_secs_f64() * 1e6;
                        assert!(
                            !matches!(resp, Response::Error { .. }),
                            "request failed: {resp:?}"
                        );
                        local.push(("shw_store_warm", us));
                    }
                    store_samples
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        server_thread
            .join()
            .expect("restart server thread")
            .expect("restart server run");
        samples.extend(
            store_samples
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .copied(),
        );
    }
    let mut by_class: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for (label, us) in &samples {
        match by_class.iter_mut().find(|(l2, _)| l2 == label) {
            Some((_, v)) => v.push(*us),
            None => by_class.push((label, vec![*us])),
        }
    }
    by_class.sort_by_key(|(l2, _)| *l2);

    let mut rows = Vec::new();
    for (label, mut v) in by_class {
        v.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&v, 0.50);
        let p99 = percentile(&v, 0.99);
        println!(
            "service/{label:<14} n={:<5} p50={p50:>10.1}us p99={p99:>10.1}us",
            v.len()
        );
        rows.push((format!("service/{label}_p50_us"), p50));
        rows.push((format!("service/{label}_p99_us"), p99));
    }
    println!(
        "service/throughput    {throughput:.0} req/s over {} requests, {} clients",
        phase1_requests, args.clients
    );
    rows.push(("service/throughput_rps".to_string(), throughput));
    if let Some(out) = args.out {
        let json = match std::fs::read_to_string(&out) {
            // An existing bench_baseline emission: merge the service
            // rows into its "benchmarks" object, so one BENCH_pr*.json
            // carries solver gates and service latencies together.
            Ok(existing) => merge_rows(&existing, &rows)
                .unwrap_or_else(|| panic!("{out} exists but has no benchmarks object")),
            Err(_) => standalone_json(&rows),
        };
        std::fs::write(&out, &json).expect("write json");
        println!("wrote {out}");
    }
}

/// A self-contained `{"benchmarks": {...}}` document from the rows.
fn standalone_json(rows: &[(String, f64)]) -> String {
    let mut json = String::from("{\n  \"benchmarks\": {\n");
    for (i, (name, value)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {value:.1}{sep}");
    }
    json.push_str("  }\n}\n");
    json
}

/// Splices the rows into an existing emission's `"benchmarks"` object
/// (dropping any previous `service/` rows so reruns stay idempotent).
/// Returns `None` if the document has no benchmarks object.
fn merge_rows(existing: &str, rows: &[(String, f64)]) -> Option<String> {
    let mut out: Vec<String> = Vec::new();
    let mut lines = existing.lines().peekable();
    // Copy up to and including the benchmarks opener.
    loop {
        let line = lines.next()?;
        let opened = line.trim_start().starts_with("\"benchmarks\"");
        out.push(line.to_string());
        if opened {
            break;
        }
    }
    // Copy the object's entries (minus stale service rows) until its
    // closing brace.
    let mut entries: Vec<String> = Vec::new();
    let closer = loop {
        let line = lines.next()?;
        if line.trim_start().starts_with('}') {
            break line;
        }
        if !line.trim_start().starts_with("\"service/") {
            entries.push(line.trim_end().trim_end_matches(',').to_string());
        }
    };
    for (name, value) in rows {
        entries.push(format!("    \"{name}\": {value:.1}"));
    }
    let n = entries.len();
    for (i, e) in entries.into_iter().enumerate() {
        let sep = if i + 1 == n { "" } else { "," };
        out.push(format!("{e}{sep}"));
    }
    out.push(closer.to_string());
    for line in lines {
        out.push(line.to_string());
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    Some(joined)
}
